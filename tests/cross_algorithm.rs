//! Workspace-level cross-algorithm tests: every optimizer in the comparison
//! produces correct, executable plans on materialized federations, and the
//! quality ordering invariants hold.

use qt_bench::runners::{run_algo, Algo};
use qt_catalog::NodeId;
use qt_core::QtConfig;
use qt_exec::evaluate_query;
use qt_exec::reference::approx_same_rows;
use qt_workload::{build_federation, gen_join_query_with_cut, FederationSpec, QueryShape};

fn data_federation(seed: u64) -> qt_workload::Federation {
    build_federation(&FederationSpec {
        nodes: 5,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 40,
        scale: 1,
        seed,
        with_data: true,
        speed_spread: 1.0,
        data_skew: 0.0,
    })
}

#[test]
fn every_algorithm_produces_a_correct_plan() {
    for seed in [1u64, 7, 23] {
        let fed = data_federation(seed);
        let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 3, false, 60);
        let want = evaluate_query(&q, &fed.union_store()).unwrap();
        for algo in Algo::all() {
            let out = run_algo(algo, &fed, NodeId(0), &q, &QtConfig::default());
            let plan = out
                .plan
                .unwrap_or_else(|| panic!("{} found no plan (seed {seed})", algo.label()));
            let got = plan.execute_on(&fed.catalog.dict, &fed.stores).unwrap();
            assert!(
                approx_same_rows(&got, &want, 1e-9),
                "{} computed a wrong answer (seed {seed})",
                algo.label()
            );
        }
    }
}

#[test]
fn quality_ordering_invariants() {
    for seed in [3u64, 11, 31] {
        let fed = data_federation(seed);
        let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 3, false, 30);
        let cfg = QtConfig::default();
        let cost = |algo: Algo| {
            run_algo(algo, &fed, NodeId(0), &q, &cfg)
                .plan
                .map(|p| p.est.additive_cost)
                .unwrap_or(f64::INFINITY)
        };
        let traddp = cost(Algo::TradDp);
        let tradidp = cost(Algo::TradIdp);
        let shipall = cost(Algo::ShipAll);
        let qtdp = cost(Algo::QtDp);
        // Exhaustive omniscient DP is the reference optimum of the shared
        // plan space.
        assert!(traddp <= tradidp + 1e-9, "seed {seed}");
        assert!(traddp <= shipall + 1e-9, "seed {seed}");
        assert!(traddp <= qtdp + 1e-9, "seed {seed}");
        // Truthful QT stays within 2x of the omniscient optimum on these
        // small federations (empirically it matches it; the slack guards
        // against plan-space edge cases).
        assert!(
            qtdp <= traddp * 2.0 + 1e-9,
            "seed {seed}: qt {qtdp} vs dp {traddp}"
        );
    }
}

#[test]
fn aggregate_queries_work_across_algorithms() {
    let fed = data_federation(99);
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 2, true, 70);
    let want = evaluate_query(&q, &fed.union_store()).unwrap();
    for algo in [Algo::QtDp, Algo::TradDp, Algo::ShipAll] {
        let out = run_algo(algo, &fed, NodeId(1), &q, &QtConfig::default());
        let plan = out.plan.expect("plan");
        let got = plan.execute_on(&fed.catalog.dict, &fed.stores).unwrap();
        assert!(approx_same_rows(&got, &want, 1e-9), "{}", algo.label());
    }
}

#[test]
fn star_queries_work_end_to_end() {
    let fed = data_federation(5);
    let q = {
        use qt_workload::gen_join_query;
        gen_join_query(&fed.catalog.dict, QueryShape::Star, 3, false, 5)
    };
    let want = evaluate_query(&q, &fed.union_store()).unwrap();
    let out = run_algo(Algo::QtDp, &fed, NodeId(0), &q, &QtConfig::default());
    let plan = out.plan.expect("plan");
    let got = plan.execute_on(&fed.catalog.dict, &fed.stores).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
}
