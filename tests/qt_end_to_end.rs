//! Workspace-level end-to-end property test: on random materialized
//! federations and random chain queries, the full QT trading loop produces
//! plans whose execution matches the brute-force reference answer, and the
//! simulator driver agrees with the direct driver.

use proptest::prelude::*;
use qt_bench::runners::seller_engines;
use qt_catalog::NodeId;
use qt_core::{run_qt_direct, run_qt_sim, QtConfig};
use qt_exec::evaluate_query;
use qt_exec::reference::approx_same_rows;
use qt_workload::{build_federation, gen_join_query_with_cut, FederationSpec, QueryShape};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qt_plans_compute_correct_answers(
        seed in 0u64..1_000,
        nodes in 2u32..8,
        relations in 1usize..4,
        parts in 1u16..3,
        replication in 1u32..3,
        cut in 1i64..99,
        aggregate in any::<bool>(),
        subcontracting in any::<bool>(),
        k in 1usize..3,
    ) {
        let fed = build_federation(&FederationSpec {
            nodes,
            relations,
            partitions_per_relation: parts,
            replication,
            rows_per_partition: 30,
            scale: 1,
            seed,
            with_data: true,
            speed_spread: 1.0,
            data_skew: 0.0,
        });
        let q = gen_join_query_with_cut(
            &fed.catalog.dict, QueryShape::Chain, relations, aggregate, cut);
        prop_assert!(q.validate(&fed.catalog.dict).is_ok());
        let cfg = QtConfig {
            max_partial_k: k,
            enable_subcontracting: subcontracting,
            ..QtConfig::default()
        };
        let mut sellers = seller_engines(&fed, &cfg);
        let out = run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
        let plan = out.plan.expect("every generated federation covers its data");
        let got = plan.execute_on(&fed.catalog.dict, &fed.stores).unwrap();
        let want = evaluate_query(&q, &fed.union_store()).unwrap();
        prop_assert!(
            approx_same_rows(&got, &want, 1e-9),
            "seed {seed}: got {} rows, want {} rows for {}",
            got.len(), want.len(), q.display_with(&fed.catalog.dict)
        );
        // Cost sanity.
        prop_assert!(plan.est.additive_cost.is_finite() && plan.est.additive_cost >= 0.0);
        prop_assert!(plan.est.response_time <= plan.est.additive_cost + 1e-9);
    }

    #[test]
    fn sim_driver_agrees_with_direct_driver(
        seed in 0u64..500,
        nodes in 2u32..6,
        relations in 1usize..3,
    ) {
        let fed = build_federation(&FederationSpec {
            nodes,
            relations,
            partitions_per_relation: 2,
            replication: 1,
            rows_per_partition: 1_000,
            scale: 1,
            seed,
            with_data: false,
            speed_spread: 1.0,
            data_skew: 0.0,
        });
        let q = gen_join_query_with_cut(
            &fed.catalog.dict, QueryShape::Chain, relations, false, 50);
        let cfg = QtConfig::default();
        let mut direct_sellers = seller_engines(&fed, &cfg);
        let direct =
            run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut direct_sellers, &cfg);
        let sim_sellers = seller_engines(&fed, &cfg);
        let (sim, _) = run_qt_sim(NodeId(0), fed.catalog.dict.clone(), &q, sim_sellers, &cfg);
        prop_assert_eq!(direct.messages, sim.messages);
        prop_assert_eq!(direct.iterations, sim.iterations);
        match (&direct.plan, &sim.plan) {
            (Some(a), Some(b)) => {
                prop_assert!((a.est.additive_cost - b.est.additive_cost).abs() < 1e-9);
                prop_assert_eq!(a.purchases.len(), b.purchases.len());
            }
            (None, None) => {}
            other => prop_assert!(false, "plan presence mismatch: {:?}", other.0.is_some()),
        }
    }
}
