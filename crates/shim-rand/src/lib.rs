//! Offline stand-in for the subset of the `rand` crate (0.9 API) this
//! workspace uses: `SmallRng::seed_from_u64` plus `Rng::random_range` over
//! integer and float ranges. The container building this repo has no access
//! to crates.io, so the workspace renames this crate to `rand`
//! (`rand = { path = ..., package = "qt-shim-rand" }`); callers keep the
//! upstream import paths.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic
//! across platforms and runs, which is all the workload generators and
//! tests require. It is NOT cryptographically secure and does not promise
//! the same streams as upstream `rand`.

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from one `u64` via splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_range_impls!(f64);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit as f32
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — small, fast, and plenty for simulation workloads.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f: f64 = r.random_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
            let u: u16 = r.random_range(1u16..=3);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
