//! The arena-backed DP must be **bit-identical** to the retained
//! tree-cloning reference implementation: same plan shape, same cost bits,
//! same row/width estimate bits, same effort, same Pareto-set outcome —
//! for both enumerators and every `max_k`. Golden cases pin the workload
//! federations the benchmarks use; the property test sweeps random SPJ
//! queries over data-derived statistics.

use proptest::prelude::*;
use qt_catalog::{
    AttrType, Catalog, CatalogBuilder, NodeId, PartId, Partitioning, RelationSchema, Value,
};
use qt_cost::StatsSource;
use qt_exec::DataStore;
use qt_optimizer::{JoinEnumerator, LocalOptimizer, ReferenceOptimizer};
use qt_query::{Col, CompOp, Predicate, Query, SelectItem};
use qt_workload::{build_federation, gen_join_query, FederationSpec, QueryShape};

/// Assert `optimize` agrees bit-for-bit between the two implementations.
fn assert_optimize_equivalent<S: StatsSource>(src: &S, q: &Query, e: JoinEnumerator) {
    let new = LocalOptimizer::new(src).with_enumerator(e).optimize(q);
    let old = ReferenceOptimizer::new(src).with_enumerator(e).optimize(q);
    assert_eq!(new.plan, old.plan, "plan shape diverged ({})", e.label());
    assert_eq!(
        new.cost.to_bits(),
        old.cost.to_bits(),
        "cost bits ({})",
        e.label()
    );
    assert_eq!(
        new.rows.to_bits(),
        old.rows.to_bits(),
        "rows bits ({})",
        e.label()
    );
    assert_eq!(
        new.width.to_bits(),
        old.width.to_bits(),
        "width bits ({})",
        e.label()
    );
    assert_eq!(new.effort, old.effort, "effort ({})", e.label());
}

/// Assert `partial_results` agrees bit-for-bit, element by element.
fn assert_partials_equivalent<S: StatsSource>(src: &S, q: &Query, e: JoinEnumerator, max_k: usize) {
    let (new, new_effort) = LocalOptimizer::new(src)
        .with_enumerator(e)
        .partial_results(q, max_k);
    let (old, old_effort) = ReferenceOptimizer::new(src)
        .with_enumerator(e)
        .partial_results(q, max_k);
    assert_eq!(new_effort, old_effort, "effort ({}, k={max_k})", e.label());
    assert_eq!(
        new.len(),
        old.len(),
        "partial count ({}, k={max_k})",
        e.label()
    );
    for (n, o) in new.iter().zip(&old) {
        assert_eq!(
            n.query,
            o.query,
            "sub-query order ({}, k={max_k})",
            e.label()
        );
        assert_eq!(n.plan, o.plan, "partial plan ({}, k={max_k})", e.label());
        assert_eq!(n.cost.to_bits(), o.cost.to_bits(), "partial cost bits");
        assert_eq!(n.rows.to_bits(), o.rows.to_bits(), "partial rows bits");
        assert_eq!(n.width.to_bits(), o.width.to_bits(), "partial width bits");
    }
}

fn check_everything<S: StatsSource>(src: &S, q: &Query) {
    let n = q.num_relations();
    for e in [JoinEnumerator::Exhaustive, JoinEnumerator::idp_2_5()] {
        assert_optimize_equivalent(src, q, e);
        let spj = q.strip_aggregation();
        for max_k in [2, 3, n.max(1)] {
            assert_partials_equivalent(src, &spj, e, max_k);
        }
    }
}

/// Golden: the synthetic federations the benchmarks run on — every shape,
/// several sizes, aggregate and plain, with and without ORDER BY.
#[test]
fn golden_workload_queries_are_bit_identical() {
    for (relations, seed) in [(2usize, 11u64), (5, 5), (7, 7)] {
        let fed = build_federation(&FederationSpec {
            nodes: 4,
            relations,
            partitions_per_relation: 2,
            replication: 1,
            rows_per_partition: 100_000,
            scale: 1,
            seed,
            with_data: false,
            speed_spread: 1.0,
            data_skew: 0.0,
        });
        let cat = &fed.catalog;
        for shape in [QueryShape::Chain, QueryShape::Star, QueryShape::Cycle] {
            for aggregate in [false, true] {
                let q = gen_join_query(&cat.dict, shape, relations, aggregate, seed);
                check_everything(cat, &q);
                if !aggregate {
                    // ORDER BY the join key: exercises order-aware Pareto
                    // entries and the finished-cost tie-break.
                    let ordered = q
                        .clone()
                        .with_order_by(vec![Col::new(qt_catalog::RelId(0), 0)]);
                    check_everything(cat, &ordered);
                }
            }
        }
    }
}

/// Golden: a node's *private* holdings view (unknown partitions fall back
/// to the synthetic default profile) goes through the same memoized paths.
#[test]
fn golden_node_holdings_view_is_bit_identical() {
    let fed = build_federation(&FederationSpec {
        nodes: 4,
        relations: 5,
        partitions_per_relation: 2,
        replication: 1,
        rows_per_partition: 50_000,
        scale: 1,
        seed: 3,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let holdings = fed.catalog.holdings_of(NodeId(1));
    for shape in [QueryShape::Chain, QueryShape::Star] {
        let q = gen_join_query(&fed.catalog.dict, shape, 5, false, 17);
        check_everything(&holdings, &q);
    }
}

/// Build a 3-relation catalog whose statistics come from real generated
/// rows, as the correctness proptest does.
fn setup(r_rows: &[(i64, i64)], s_rows: &[(i64, i64)], t_rows: &[(i64, i64)]) -> Catalog {
    let schema = |n: &str| RelationSchema::new(n, vec![("k", AttrType::Int), ("v", AttrType::Int)]);
    let probe = {
        let mut pb = CatalogBuilder::new();
        pb.add_relation(schema("r"), Partitioning::Hash { attr: 0, parts: 2 });
        pb.add_relation(schema("s"), Partitioning::Single);
        pb.add_relation(schema("t"), Partitioning::Single);
        for (rel, parts) in [(0u32, 2u16), (1, 1), (2, 1)] {
            for p in 0..parts {
                pb.set_stats(
                    PartId::new(qt_catalog::RelId(rel), p),
                    qt_catalog::PartitionStats::synthetic(1, &[1, 1]),
                );
                pb.place(PartId::new(qt_catalog::RelId(rel), p), NodeId(0));
            }
        }
        pb.build().dict
    };
    let mut store = DataStore::new();
    let to_rows = |rows: &[(i64, i64)]| -> Vec<Vec<Value>> {
        rows.iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect()
    };
    store.load_relation(&probe, qt_catalog::RelId(0), to_rows(r_rows));
    store.load_relation(&probe, qt_catalog::RelId(1), to_rows(s_rows));
    store.load_relation(&probe, qt_catalog::RelId(2), to_rows(t_rows));

    let mut b = CatalogBuilder::new();
    b.add_relation(schema("r"), Partitioning::Hash { attr: 0, parts: 2 });
    b.add_relation(schema("s"), Partitioning::Single);
    b.add_relation(schema("t"), Partitioning::Single);
    for (rel, parts) in [(0u32, 2u16), (1, 1), (2, 1)] {
        for p in 0..parts {
            let part = PartId::new(qt_catalog::RelId(rel), p);
            b.set_stats(part, store.stats_of(&probe, part).expect("loaded"));
            b.place(part, NodeId(0));
        }
    }
    b.build()
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, -10i64..10), 0..12)
}

fn join_op() -> impl Strategy<Value = CompOp> {
    // Eq joins take the hash/merge path; the rest take nested loops.
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Eq),
        Just(CompOp::Lt),
        Just(CompOp::Ne)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random SPJ queries (equi and theta joins, selections, optional
    /// ORDER BY), both enumerators, `max_k` ∈ {2, 3, n}: the arena DP and
    /// the reference DP never diverge by a single bit.
    #[test]
    fn random_spj_queries_are_bit_identical(
        r_rows in rows_strategy(),
        s_rows in rows_strategy(),
        t_rows in rows_strategy(),
        num_rels in 1usize..=3,
        join_ops in prop::collection::vec(join_op(), 2),
        sel_op in prop_oneof![Just(CompOp::Lt), Just(CompOp::Eq), Just(CompOp::Ge)],
        sel_val in -10i64..10,
        order_by in any::<bool>(),
    ) {
        let cat = setup(&r_rows, &s_rows, &t_rows);
        let rels: Vec<qt_catalog::RelId> =
            (0..num_rels as u32).map(qt_catalog::RelId).collect();
        let mut preds = vec![Predicate::with_const(Col::new(rels[0], 1), sel_op, sel_val)];
        for (i, w) in rels.windows(2).enumerate() {
            preds.push(Predicate {
                left: Col::new(w[0], 0),
                op: join_ops[i],
                right: qt_query::Operand::Col(Col::new(w[1], 0)),
            });
        }
        let last = *rels.last().unwrap();
        let mut q = Query::over_full(&cat.dict, rels.iter().copied())
            .with_predicates(preds)
            .with_select(vec![
                SelectItem::Col(Col::new(rels[0], 1)),
                SelectItem::Col(Col::new(last, 0)),
            ]);
        if order_by {
            q = q.with_order_by(vec![Col::new(rels[0], 0)]);
        }
        prop_assert!(q.validate(&cat.dict).is_ok());
        check_everything(&cat, &q);
    }
}
