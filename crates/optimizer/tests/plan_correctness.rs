//! Property-based correctness of the local optimizer: for random small
//! datasets and random SPJ(+aggregate) queries, the optimized physical plan
//! computes exactly what the reference evaluator computes — under both
//! enumerators.

use proptest::prelude::*;
use qt_catalog::{
    AttrType, Catalog, CatalogBuilder, NodeId, PartId, Partitioning, RelationSchema, Value,
};
use qt_exec::reference::same_rows;
use qt_exec::{evaluate_query, execute, DataStore};
use qt_optimizer::{JoinEnumerator, LocalOptimizer};
use qt_query::{AggFunc, Col, CompOp, Predicate, Query, SelectItem};

/// Build a 3-relation catalog + data from proptest-generated rows.
fn setup(
    r_rows: &[(i64, i64)],
    s_rows: &[(i64, i64)],
    t_rows: &[(i64, i64)],
) -> (Catalog, DataStore) {
    let schema = |n: &str| RelationSchema::new(n, vec![("k", AttrType::Int), ("v", AttrType::Int)]);
    let probe = {
        let mut pb = CatalogBuilder::new();
        pb.add_relation(schema("r"), Partitioning::Hash { attr: 0, parts: 2 });
        pb.add_relation(schema("s"), Partitioning::Single);
        pb.add_relation(schema("t"), Partitioning::Single);
        for (rel, parts) in [(0u32, 2u16), (1, 1), (2, 1)] {
            for p in 0..parts {
                pb.set_stats(
                    PartId::new(qt_catalog::RelId(rel), p),
                    qt_catalog::PartitionStats::synthetic(1, &[1, 1]),
                );
                pb.place(PartId::new(qt_catalog::RelId(rel), p), NodeId(0));
            }
        }
        pb.build().dict
    };
    let mut store = DataStore::new();
    let to_rows = |rows: &[(i64, i64)]| -> Vec<Vec<Value>> {
        rows.iter()
            .map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)])
            .collect()
    };
    store.load_relation(&probe, qt_catalog::RelId(0), to_rows(r_rows));
    store.load_relation(&probe, qt_catalog::RelId(1), to_rows(s_rows));
    store.load_relation(&probe, qt_catalog::RelId(2), to_rows(t_rows));

    let mut b = CatalogBuilder::new();
    b.add_relation(schema("r"), Partitioning::Hash { attr: 0, parts: 2 });
    b.add_relation(schema("s"), Partitioning::Single);
    b.add_relation(schema("t"), Partitioning::Single);
    for (rel, parts) in [(0u32, 2u16), (1, 1), (2, 1)] {
        for p in 0..parts {
            let part = PartId::new(qt_catalog::RelId(rel), p);
            b.set_stats(part, store.stats_of(&probe, part).expect("loaded"));
            b.place(part, NodeId(0));
        }
    }
    (b.build(), store)
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, -10i64..10), 0..12)
}

fn comp_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Ne),
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Gt),
        Just(CompOp::Ge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_plans_match_reference(
        r_rows in rows_strategy(),
        s_rows in rows_strategy(),
        t_rows in rows_strategy(),
        num_rels in 1usize..=3,
        sel_op in comp_op(),
        sel_val in -10i64..10,
        aggregate in any::<bool>(),
        idp in any::<bool>(),
    ) {
        let (cat, store) = setup(&r_rows, &s_rows, &t_rows);
        let rels: Vec<qt_catalog::RelId> =
            (0..num_rels as u32).map(qt_catalog::RelId).collect();
        let mut preds = vec![Predicate::with_const(Col::new(rels[0], 1), sel_op, sel_val)];
        for w in rels.windows(2) {
            preds.push(Predicate::eq_cols(Col::new(w[0], 0), Col::new(w[1], 0)));
        }
        let last = *rels.last().unwrap();
        let q = Query::over_full(&cat.dict, rels.iter().copied()).with_predicates(preds);
        let q = if aggregate {
            q.with_select(vec![
                SelectItem::Col(Col::new(rels[0], 1)),
                SelectItem::Agg { func: AggFunc::Sum, arg: Some(Col::new(last, 1)) },
                SelectItem::Agg { func: AggFunc::Count, arg: None },
            ])
            .with_group_by(vec![Col::new(rels[0], 1)])
        } else {
            q.with_select(vec![
                SelectItem::Col(Col::new(rels[0], 1)),
                SelectItem::Col(Col::new(last, 0)),
            ])
        };
        prop_assert!(q.validate(&cat.dict).is_ok());

        let enumerator = if idp { JoinEnumerator::idp_2_5() } else { JoinEnumerator::Exhaustive };
        let opt = LocalOptimizer::new(&cat).with_enumerator(enumerator);
        let optimized = opt.optimize(&q);
        let got = execute(&optimized.plan, &store, &[]).unwrap();
        let want = evaluate_query(&q, &store).unwrap();
        prop_assert!(
            same_rows(&got, &want),
            "query {} got {:?} want {:?}",
            q.display_with(&cat.dict), got, want
        );
        prop_assert!(optimized.cost >= 0.0);
    }

    /// Every partial result of the modified DP computes its sub-query.
    #[test]
    fn partial_results_match_reference(
        r_rows in rows_strategy(),
        s_rows in rows_strategy(),
        t_rows in rows_strategy(),
        max_k in 1usize..=3,
    ) {
        let (cat, store) = setup(&r_rows, &s_rows, &t_rows);
        let rels: Vec<qt_catalog::RelId> = (0..3u32).map(qt_catalog::RelId).collect();
        let mut preds = vec![];
        for w in rels.windows(2) {
            preds.push(Predicate::eq_cols(Col::new(w[0], 0), Col::new(w[1], 0)));
        }
        let q = Query::over_full(&cat.dict, rels.iter().copied())
            .with_predicates(preds)
            .with_select(vec![SelectItem::Col(Col::new(rels[2], 1))]);
        let opt = LocalOptimizer::new(&cat);
        let (partials, _) = opt.partial_results(&q, max_k);
        for p in &partials {
            let got = execute(&p.plan, &store, &[]).unwrap();
            let want = evaluate_query(&p.query, &store).unwrap();
            prop_assert!(
                same_rows(&got, &want),
                "partial {} got {} want {} rows",
                p.query.display_with(&cat.dict), got.len(), want.len()
            );
        }
    }
}
