//! Per-node local query optimizer.
//!
//! Every node in the federation runs one of these privately. It serves three
//! callers:
//!
//! * a seller estimating the cost of a (rewritten) query it was asked to bid
//!   on — [`LocalOptimizer::optimize`];
//! * a seller generating the *partial* k-way join results the paper's
//!   modified dynamic-programming algorithm includes in offers (§3.4) —
//!   [`LocalOptimizer::partial_results`];
//! * the baselines, which run the same enumerators with global knowledge.
//!
//! Two enumeration strategies are provided: exhaustive System-R style
//! dynamic programming over subsets ([`JoinEnumerator::Exhaustive`]) and
//! Iterative Dynamic Programming **IDP-M(k,m)** after Kossmann & Stocker
//! ([`JoinEnumerator::IdpM`]), the paper's scalable alternative: evaluate all
//! k-way sub-plans, keep the best m, continue like DP.
//!
//! The enumerators report their *effort* (sub-plans considered); the
//! simulation charges optimization compute time proportionally, which is how
//! the optimization-time experiments see DP's exponential blow-up without
//! depending on host CPU speed.
//!
//! The production DP is arena-backed (candidates are [`qt_exec::PlanArena`]
//! pushes, cardinalities come from a per-enumeration
//! [`qt_cost::SubsetCardMemo`]); [`reference::ReferenceOptimizer`] keeps the
//! original tree-cloning implementation as an executable specification, and
//! the `arena_equivalence` test suite asserts both produce bit-identical
//! plans, costs, and estimates.

pub mod dp;
pub mod local;
pub mod lowering;
pub mod reference;

pub use dp::{ColCanon, JoinEnumerator};
pub use local::{LocalOptimizer, Optimized, PartialResult};
pub use lowering::sink_predicates;
pub use reference::ReferenceOptimizer;
