//! The per-node optimizer proper.
//!
//! The DP enumeration is arena-backed: every candidate sub-plan is a single
//! [`ArenaPlan`] push into a per-enumeration [`PlanArena`] (children are
//! [`PlanId`] indices into the same arena), so considering a join candidate
//! never deep-clones a plan tree. Cardinalities come from a
//! [`SubsetCardMemo`] that computes each relation profile and each subset's
//! join rows exactly once. Boxed [`PhysPlan`] trees are materialized only at
//! the output boundary, for the plans that actually survive. The retained
//! tree-cloning implementation ([`crate::ReferenceOptimizer`]) produces
//! bit-identical results and exists to prove it.

use crate::dp::{order_covers, ColCanon, DpEntry, DpTable, JoinEnumerator};
use qt_catalog::{PartId, PartitionStats, RelId};
use qt_cost::{CardinalityEstimator, CostParams, NodeResources, StatsSource, SubsetCardMemo};
use qt_exec::{AggSpec, ArenaPlan, PhysPlan, PlanArena, PlanId};
use qt_query::{Col, CompOp, Operand, Predicate, Query, SelectItem};
use std::collections::BTreeSet;

/// A fully optimized local plan.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The physical plan, producing columns in the query's `SELECT` order.
    pub plan: PhysPlan,
    /// Estimated cost in node-seconds (resource-scaled).
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width in bytes.
    pub width: f64,
    /// Sub-plans considered during enumeration (optimization effort).
    pub effort: u64,
}

/// One partial result emitted by the modified DP (§3.4): the optimal local
/// sub-plan for a subset of the query's relations, offered to the buyer as
/// an independently purchasable piece.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// The sub-query this partial answers (restricted SPJ core).
    pub query: Query,
    /// Its local physical plan (output in `query.select` order).
    pub plan: PhysPlan,
    /// Local cost in node-seconds.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width in bytes.
    pub width: f64,
}

/// Everything one enumeration run produces: the Pareto table (over arena
/// ids), the arena the ids point into, and the memoized estimation state,
/// so `optimize` and `partial_results` can finish plans without re-deriving
/// any of it.
struct Enumeration<'q, 'a, S: StatsSource> {
    table: DpTable<PlanId>,
    arena: PlanArena,
    rels: Vec<RelId>,
    canon: ColCanon,
    memo: SubsetCardMemo<'q, 'a, S>,
    effort: u64,
}

/// The node-local optimizer. `S` is the node's private statistics view.
///
/// ```
/// use qt_catalog::{AttrType, CatalogBuilder, NodeId, PartId, Partitioning,
///                  PartitionStats, RelationSchema};
/// use qt_optimizer::LocalOptimizer;
/// use qt_query::parse_query;
///
/// let mut b = CatalogBuilder::new();
/// for name in ["r", "s"] {
///     let rel = b.add_relation(
///         RelationSchema::new(name, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
///         Partitioning::Single,
///     );
///     b.set_stats(PartId::new(rel, 0), PartitionStats::synthetic(10_000, &[5_000, 100]));
///     b.place(PartId::new(rel, 0), NodeId(0));
/// }
/// let catalog = b.build();
/// let q = parse_query(&catalog.dict, "SELECT r.v, s.v FROM r, s WHERE r.k = s.k").unwrap();
///
/// let optimizer = LocalOptimizer::new(&catalog);
/// let optimized = optimizer.optimize(&q);
/// assert!(optimized.cost > 0.0);
/// assert!(optimized.effort >= 3, "two leaves and at least one join pair");
///
/// // The modified DP (§3.4) also emits every k-way partial as an offer.
/// let (partials, _) = optimizer.partial_results(&q, 2);
/// assert_eq!(partials.len(), 3, "two singletons plus the full join");
/// ```
pub struct LocalOptimizer<'a, S: StatsSource> {
    source: &'a S,
    /// Shared operator cost constants.
    pub params: CostParams,
    /// This node's resources (scales all costs).
    pub resources: NodeResources,
    /// Join-enumeration strategy.
    pub enumerator: JoinEnumerator,
}

impl<'a, S: StatsSource> LocalOptimizer<'a, S> {
    /// Optimizer with reference parameters and exhaustive enumeration.
    pub fn new(source: &'a S) -> Self {
        LocalOptimizer {
            source,
            params: CostParams::reference(),
            resources: NodeResources::reference(),
            enumerator: JoinEnumerator::Exhaustive,
        }
    }

    /// Builder-style enumerator override.
    pub fn with_enumerator(mut self, e: JoinEnumerator) -> Self {
        self.enumerator = e;
        self
    }

    /// Builder-style resources override.
    pub fn with_resources(mut self, r: NodeResources) -> Self {
        self.resources = r;
        self
    }

    fn estimator(&self) -> CardinalityEstimator<'a, S> {
        CardinalityEstimator::new(self.source)
    }

    /// Access path for one relation: union of partition scans plus its
    /// selection predicates. Partition statistics are read once per
    /// partition; the union profile is their incremental merge (the exact
    /// fold `CardinalityEstimator::base_profile` performs).
    fn leaf(
        &self,
        q: &Query,
        rel: RelId,
        memo: &SubsetCardMemo<'_, 'a, S>,
        arena: &mut PlanArena,
    ) -> DpEntry<PlanId> {
        let est = memo.estimator();
        let parts = q.relations[&rel];
        let arity = self.source.dict().rel(rel).schema.arity();
        let mut scans: Vec<PlanId> = Vec::new();
        let mut scan_cost = 0.0;
        let mut acc: Option<PartitionStats> = None;
        for idx in parts.iter() {
            let pid = PartId::new(rel, idx);
            let stats = est.part_stats_of(pid, arity);
            scan_cost += self
                .params
                .scan(stats.rows as f64, stats.row_width() as f64)
                * self.resources.io_factor();
            scans.push(arena.push(ArenaPlan::Scan { part: pid, arity }));
            acc = Some(match acc {
                None => stats,
                Some(a) => a.merge(&stats),
            });
        }
        let base = acc.unwrap_or_else(|| PartitionStats::empty(arity));
        let base_rows = base.rows as f64;
        let base_width = base.row_width() as f64;
        let mut plan = if scans.len() == 1 {
            scans[0]
        } else {
            arena.push(ArenaPlan::Union { inputs: scans })
        };
        let mut cost = scan_cost + self.params.union(base_rows) * self.resources.cpu_factor();
        let selections: Vec<Predicate> = q.selections_of(rel).cloned().collect();
        if !selections.is_empty() {
            cost += self.params.filter(base_rows) * self.resources.cpu_factor();
            plan = arena.push(ArenaPlan::Filter {
                input: plan,
                predicates: selections,
            });
        }
        DpEntry {
            plan,
            cost,
            rows: memo.profile(rel).rows,
            width: base_width,
            order: vec![],
        }
    }

    /// Join two memoized sub-plans, producing *all* physical candidates:
    /// a hash join (unordered) and a sort-merge join (key-ordered) for
    /// equi-predicates, or a nested-loop join otherwise. The DP table's
    /// Pareto pruning decides which survive. Each candidate is one arena
    /// push — the children are referenced by id, never cloned.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        q: &Query,
        rels: &[RelId],
        canon: &ColCanon,
        arena: &mut PlanArena,
        left_mask: u64,
        right_mask: u64,
        left: &DpEntry<PlanId>,
        right: &DpEntry<PlanId>,
        out_rows: f64,
    ) -> Vec<DpEntry<PlanId>> {
        let in_left = |r: RelId| {
            rels.iter()
                .position(|&x| x == r)
                .is_some_and(|i| left_mask >> i & 1 == 1)
        };
        let in_right = |r: RelId| {
            rels.iter()
                .position(|&x| x == r)
                .is_some_and(|i| right_mask >> i & 1 == 1)
        };
        // Predicates connecting the two sides.
        let mut eq_keys: Vec<(Col, Col)> = Vec::new();
        let mut residual: Vec<Predicate> = Vec::new();
        for p in q.join_predicates() {
            let Operand::Col(rc) = &p.right else { continue };
            let (l, r) = (p.left, *rc);
            let (lk, rk) = if in_left(l.rel) && in_right(r.rel) {
                (l, r)
            } else if in_left(r.rel) && in_right(l.rel) {
                (r, l)
            } else {
                continue;
            };
            if p.op == CompOp::Eq {
                eq_keys.push((lk, rk));
            } else {
                residual.push(p.clone());
            }
        }
        let cpu = self.resources.cpu_factor();
        let width = left.width + right.width;
        let base_cost = left.cost + right.cost;
        // Residual (non-equi connecting) predicates go into a Filter on top
        // of equi-joins; filters preserve order.
        let finish = |arena: &mut PlanArena,
                      mut plan: PlanId,
                      mut cost: f64,
                      order: Vec<Col>|
         -> DpEntry<PlanId> {
            if !residual.is_empty() {
                plan = arena.push(ArenaPlan::Filter {
                    input: plan,
                    predicates: residual.clone(),
                });
                cost += self.params.filter(out_rows) * cpu;
            }
            DpEntry {
                plan,
                cost: base_cost + cost,
                rows: out_rows,
                width,
                order,
            }
        };

        if eq_keys.is_empty() {
            let plan = arena.push(ArenaPlan::NlJoin {
                left: left.plan,
                right: right.plan,
                predicates: residual.clone(),
            });
            let cost = self.params.nl_join(left.rows, right.rows, out_rows) * cpu;
            return vec![DpEntry {
                plan,
                cost: base_cost + cost,
                rows: out_rows,
                width,
                order: vec![],
            }];
        }

        // Candidate 1: hash join, build on the smaller side; unordered.
        let (build, probe) = if left.rows <= right.rows {
            (left, right)
        } else {
            (right, left)
        };
        let swapped = left.rows > right.rows;
        let build_keys: Vec<(Col, Col)> = if swapped {
            eq_keys.iter().map(|&(l, r)| (r, l)).collect()
        } else {
            eq_keys.clone()
        };
        let hash_plan = arena.push(ArenaPlan::HashJoin {
            left: build.plan,
            right: probe.plan,
            left_keys: build_keys.iter().map(|k| k.0).collect(),
            right_keys: build_keys.iter().map(|k| k.1).collect(),
        });
        let hash = finish(
            arena,
            hash_plan,
            self.params.hash_join(build.rows, probe.rows, out_rows) * cpu,
            vec![],
        );

        // Candidate 2: sort-merge join; reuses input key order (modulo the
        // query's column equivalence classes), produces key-ordered output.
        let lkeys: Vec<Col> = eq_keys.iter().map(|k| k.0).collect();
        let rkeys: Vec<Col> = eq_keys.iter().map(|k| k.1).collect();
        let lkeys_c = canon.canon_all(&lkeys);
        let rkeys_c = canon.canon_all(&rkeys);
        let l_sorted = order_covers(&left.order, &lkeys_c);
        let r_sorted = order_covers(&right.order, &rkeys_c);
        let mut merge_cost = self.params.merge_join(left.rows, right.rows, out_rows) * cpu;
        if !l_sorted {
            merge_cost += self.params.sort(left.rows) * cpu;
        }
        if !r_sorted {
            merge_cost += self.params.sort(right.rows) * cpu;
        }
        let enforce =
            |arena: &mut PlanArena, side: &DpEntry<PlanId>, keys: &[Col], sorted: bool| -> PlanId {
                if sorted {
                    side.plan
                } else {
                    arena.push(ArenaPlan::Sort {
                        input: side.plan,
                        keys: keys.to_vec(),
                    })
                }
            };
        let l_input = enforce(arena, left, &lkeys, l_sorted);
        let r_input = enforce(arena, right, &rkeys, r_sorted);
        let merge_plan = arena.push(ArenaPlan::MergeJoin {
            left: l_input,
            right: r_input,
            left_keys: lkeys,
            right_keys: rkeys,
        });
        let merge = finish(arena, merge_plan, merge_cost, lkeys_c);
        vec![hash, merge]
    }

    /// Run the configured enumerator over the query's join graph. Returns
    /// the full enumeration state: table, arena, and estimation memo.
    fn enumerate<'q>(&self, q: &'q Query) -> Enumeration<'q, 'a, S> {
        let mut memo = SubsetCardMemo::new(self.estimator(), q);
        let canon = ColCanon::from_query(q);
        let rels: Vec<RelId> = memo.rels().to_vec();
        let n = rels.len();
        assert!(n <= 63, "too many relations");
        let mut arena = PlanArena::with_capacity(4 * n.max(1));
        let mut table = DpTable::new(n);
        let mut effort = 0u64;
        for (i, &rel) in rels.iter().enumerate() {
            let entry = self.leaf(q, rel, &memo, &mut arena);
            table.insert(1u64 << i, entry);
            effort += 1;
        }
        for size in 2..=n {
            for s1 in 1..=size / 2 {
                let s2 = size - s1;
                let left_masks: Vec<u64> = table.masks_of_size(s1).to_vec();
                let right_masks: Vec<u64> = table.masks_of_size(s2).to_vec();
                for &m1 in &left_masks {
                    for &m2 in &right_masks {
                        if m1 & m2 != 0 || (s1 == s2 && m1 >= m2) {
                            continue;
                        }
                        let combined = m1 | m2;
                        let out_rows = memo.join_rows(combined);
                        // Pareto sets: every (ordered/unordered) pairing is a
                        // distinct sub-plan to consider.
                        let lefts: Vec<DpEntry<PlanId>> = table.entries(m1).to_vec();
                        let rights: Vec<DpEntry<PlanId>> = table.entries(m2).to_vec();
                        for l in &lefts {
                            for r in &rights {
                                for entry in
                                    self.join(q, &rels, &canon, &mut arena, m1, m2, l, r, out_rows)
                                {
                                    effort += 1;
                                    table.insert(combined, entry);
                                }
                            }
                        }
                    }
                }
            }
            if let JoinEnumerator::IdpM { k, m } = self.enumerator {
                if size == k {
                    table.prune_size(k, m);
                }
            }
        }
        Enumeration {
            table,
            arena,
            rels,
            canon,
            memo,
            effort,
        }
    }

    /// Optimize the full query: enumerate joins, then layer aggregation,
    /// sorting, and the final projection. The produced plan's output columns
    /// are exactly `q.select`, in order.
    pub fn optimize(&self, q: &Query) -> Optimized {
        let Enumeration {
            table,
            arena,
            rels,
            canon,
            memo,
            effort,
        } = self.enumerate(q);
        let n = rels.len();
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let cpu = self.resources.cpu_factor();
        let order_by_c: Vec<Col> = q.order_by.iter().map(|&c| canon.canon(c)).collect();
        // Pick the Pareto entry whose *finished* cost (including any final
        // sort the query's ORDER BY needs) is lowest.
        let entry = table
            .entries(full)
            .iter()
            .min_by(|a, b| {
                let fin = |e: &DpEntry<PlanId>| {
                    let needs_sort = !q.is_aggregate()
                        && !q.order_by.is_empty()
                        && !order_covers(&e.order, &order_by_c);
                    e.cost
                        + if needs_sort {
                            self.params.sort(e.rows) * cpu
                        } else {
                            0.0
                        }
                };
                fin(a).total_cmp(&fin(b))
            })
            .expect("DP always reaches the full set");
        let final_est = memo.estimator().estimate(q);
        // The winner (and only the winner) leaves the arena as a boxed tree.
        let mut plan = arena.materialize(entry.plan);
        let mut cost = entry.cost;

        if q.is_aggregate() {
            let aggs: Vec<AggSpec> = q
                .select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Agg { func, arg } => Some(AggSpec {
                        func: *func,
                        arg: *arg,
                    }),
                    SelectItem::Col(_) => None,
                })
                .collect();
            plan = PhysPlan::HashAggregate {
                input: Box::new(plan),
                group_by: q.group_by.clone(),
                aggs,
            };
            cost += self.params.aggregate(entry.rows, final_est.rows) * cpu;
            // Project the aggregate output (keys ++ agg markers) into SELECT
            // order.
            let agg_schema = plan.schema();
            let mut agg_idx = q.group_by.len();
            let cols: Vec<Col> = q
                .select
                .iter()
                .map(|s| match s {
                    SelectItem::Col(c) => *c,
                    SelectItem::Agg { .. } => {
                        let c = agg_schema[agg_idx];
                        agg_idx += 1;
                        c
                    }
                })
                .collect();
            plan = PhysPlan::Project {
                input: Box::new(plan),
                cols,
            };
        } else {
            // Reuse a merge join's key order when it already satisfies the
            // requested ordering (ORDER BY is a prefix of the plan order,
            // modulo join-key equivalence).
            let pre_sorted = order_covers(&entry.order, &order_by_c);
            if !q.order_by.is_empty() && !pre_sorted {
                plan = PhysPlan::Sort {
                    input: Box::new(plan),
                    keys: q.order_by.clone(),
                };
                cost += self.params.sort(entry.rows) * cpu;
            }
            let cols: Vec<Col> = q
                .select
                .iter()
                .map(|s| match s {
                    SelectItem::Col(c) => *c,
                    SelectItem::Agg { .. } => unreachable!("non-aggregate query"),
                })
                .collect();
            plan = PhysPlan::Project {
                input: Box::new(plan),
                cols,
            };
        }
        cost += self.params.filter(final_est.rows) * cpu; // projection pass

        Optimized {
            plan,
            cost,
            rows: final_est.rows,
            width: final_est.width,
            effort,
        }
    }

    /// The modified DP of §3.4: optimize the query and *also* return the
    /// optimal sub-plan for every relation subset of size ≤ `max_k` (and the
    /// full set), each as an independently offerable [`PartialResult`] whose
    /// plan outputs the restricted sub-query's columns.
    ///
    /// `q` must already be seller-rewritten (its partition sets are what the
    /// node holds); aggregation should be stripped by the rewrite.
    pub fn partial_results(&self, q: &Query, max_k: usize) -> (Vec<PartialResult>, u64) {
        let Enumeration {
            table,
            arena,
            rels,
            memo,
            effort,
            ..
        } = self.enumerate(q);
        let n = rels.len();
        let cpu = self.resources.cpu_factor();
        let mut out = Vec::new();
        for (mask, entry) in table.iter() {
            let size = mask.count_ones() as usize;
            if size > max_k && size != n {
                continue;
            }
            let subset: BTreeSet<RelId> = rels
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &r)| r)
                .collect();
            let sub_query = q.restrict_to_rels(&subset);
            let cols: Vec<Col> = sub_query
                .select
                .iter()
                .map(|s| s.col().expect("SPJ core has only plain columns"))
                .collect();
            let width = memo.subset_width(&sub_query);
            let plan = PhysPlan::Project {
                input: Box::new(arena.materialize(entry.plan)),
                cols,
            };
            let cost = entry.cost + self.params.filter(entry.rows) * cpu;
            out.push(PartialResult {
                query: sub_query,
                plan,
                cost,
                rows: entry.rows,
                width,
            });
        }
        // Deterministic order: by subset size then query.
        out.sort_by(|a, b| {
            a.query
                .num_relations()
                .cmp(&b.query.num_relations())
                .then_with(|| a.query.cmp(&b.query))
        });
        (out, effort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_exec::{evaluate_query, execute, reference::same_rows, DataStore};
    use qt_query::parse_query;

    /// Three relations r(a,b), s(a,c), t(c,d) with data small enough to
    /// cross-check plans against the reference evaluator.
    fn setup() -> (Catalog, DataStore) {
        use qt_catalog::Value;
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
            Partitioning::Hash { attr: 0, parts: 2 },
        );
        let s = b.add_relation(
            RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
            Partitioning::Single,
        );
        let t = b.add_relation(
            RelationSchema::new("t", vec![("c", AttrType::Int), ("d", AttrType::Int)]),
            Partitioning::Single,
        );
        let mut store = DataStore::new();
        let mut r_rows = Vec::new();
        for i in 0..40i64 {
            r_rows.push(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        let mut s_rows = Vec::new();
        for i in 0..10i64 {
            s_rows.push(vec![Value::Int(i), Value::Int(i % 3)]);
        }
        let t_rows = vec![
            vec![Value::Int(0), Value::Int(100)],
            vec![Value::Int(1), Value::Int(200)],
            vec![Value::Int(2), Value::Int(300)],
        ];
        // Build dict first (builder consumed at build()).
        let dict_probe = {
            let mut pb = CatalogBuilder::new();
            pb.add_relation(
                RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
                Partitioning::Hash { attr: 0, parts: 2 },
            );
            pb.add_relation(
                RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
                Partitioning::Single,
            );
            pb.add_relation(
                RelationSchema::new("t", vec![("c", AttrType::Int), ("d", AttrType::Int)]),
                Partitioning::Single,
            );
            pb.set_stats(PartId::new(r, 0), PartitionStats::synthetic(1, &[1, 1]));
            pb.set_stats(PartId::new(r, 1), PartitionStats::synthetic(1, &[1, 1]));
            pb.set_stats(PartId::new(s, 0), PartitionStats::synthetic(1, &[1, 1]));
            pb.set_stats(PartId::new(t, 0), PartitionStats::synthetic(1, &[1, 1]));
            pb.place(PartId::new(r, 0), NodeId(0));
            pb.place(PartId::new(r, 1), NodeId(0));
            pb.place(PartId::new(s, 0), NodeId(0));
            pb.place(PartId::new(t, 0), NodeId(0));
            pb.build().dict
        };
        store.load_relation(&dict_probe, r, r_rows);
        store.load_relation(&dict_probe, s, s_rows);
        store.load_relation(&dict_probe, t, t_rows);
        // Real stats from the data.
        for part in [
            PartId::new(r, 0),
            PartId::new(r, 1),
            PartId::new(s, 0),
            PartId::new(t, 0),
        ] {
            b.set_stats(part, store.stats_of(&dict_probe, part).unwrap());
            b.place(part, NodeId(0));
        }
        (b.build(), store)
    }

    #[test]
    fn single_relation_plan_matches_reference() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT b FROM r WHERE a = 3").unwrap();
        let opt = LocalOptimizer::new(&cat);
        let o = opt.optimize(&q);
        let plan_out = execute(&o.plan, &store, &[]).unwrap();
        let ref_out = evaluate_query(&q, &store).unwrap();
        assert!(same_rows(&plan_out, &ref_out));
        assert!(o.cost > 0.0);
        assert_eq!(o.effort, 1);
    }

    #[test]
    fn two_way_join_plan_matches_reference() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT b, s.c FROM r, s WHERE r.a = s.a").unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let plan_out = execute(&o.plan, &store, &[]).unwrap();
        let ref_out = evaluate_query(&q, &store).unwrap();
        assert!(same_rows(&plan_out, &ref_out));
    }

    #[test]
    fn three_way_join_plan_matches_reference() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT b, d FROM r, s, t WHERE r.a = s.a AND s.c = t.c",
        )
        .unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let plan_out = execute(&o.plan, &store, &[]).unwrap();
        let ref_out = evaluate_query(&q, &store).unwrap();
        assert!(same_rows(&plan_out, &ref_out));
    }

    #[test]
    fn aggregate_plan_matches_reference() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT s.c, SUM(b) FROM r, s WHERE r.a = s.a GROUP BY s.c",
        )
        .unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let plan_out = execute(&o.plan, &store, &[]).unwrap();
        let ref_out = evaluate_query(&q, &store).unwrap();
        assert!(same_rows(&plan_out, &ref_out));
    }

    #[test]
    fn order_by_plan_is_sorted() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT b FROM r WHERE a = 1 ORDER BY b").unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let out = execute(&o.plan, &store, &[]).unwrap();
        let vals: Vec<i64> = out.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(vals, sorted);
        assert!(!vals.is_empty());
    }

    #[test]
    fn theta_join_falls_back_to_nl() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT b, s.c FROM r, s WHERE r.a < s.a").unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let plan_out = execute(&o.plan, &store, &[]).unwrap();
        let ref_out = evaluate_query(&q, &store).unwrap();
        assert!(same_rows(&plan_out, &ref_out));
    }

    #[test]
    fn idp_matches_dp_on_small_queries_and_costs_less_effort() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT b, d FROM r, s, t WHERE r.a = s.a AND s.c = t.c",
        )
        .unwrap();
        let dp = LocalOptimizer::new(&cat).optimize(&q);
        let idp = LocalOptimizer::new(&cat)
            .with_enumerator(JoinEnumerator::idp_2_5())
            .optimize(&q);
        // Both must be correct.
        let a = execute(&dp.plan, &store, &[]).unwrap();
        let b = execute(&idp.plan, &store, &[]).unwrap();
        assert!(same_rows(&a, &b));
        // IDP(2,5) keeps all 3 two-way subsets here (3 <= 5), so same cost.
        assert!((dp.cost - idp.cost).abs() < 1e-9);
    }

    #[test]
    fn effort_grows_with_join_count() {
        let (cat, _) = setup();
        let q2 = parse_query(&cat.dict, "SELECT b, s.c FROM r, s WHERE r.a = s.a").unwrap();
        let q3 = parse_query(
            &cat.dict,
            "SELECT b, d FROM r, s, t WHERE r.a = s.a AND s.c = t.c",
        )
        .unwrap();
        let opt = LocalOptimizer::new(&cat);
        assert!(opt.optimize(&q3).effort > opt.optimize(&q2).effort);
    }

    #[test]
    fn partial_results_cover_all_small_subsets() {
        let (cat, store) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT b, d FROM r, s, t WHERE r.a = s.a AND s.c = t.c",
        )
        .unwrap();
        let opt = LocalOptimizer::new(&cat);
        let (partials, _) = opt.partial_results(&q.strip_aggregation(), 2);
        // 3 singletons + 3 pairs + the full 3-way = 7.
        assert_eq!(partials.len(), 7);
        // Every partial's plan computes its sub-query.
        for p in &partials {
            let plan_out = execute(&p.plan, &store, &[]).unwrap();
            let ref_out = evaluate_query(&p.query, &store).unwrap();
            assert!(
                same_rows(&plan_out, &ref_out),
                "{}",
                p.query.display_with(&cat.dict)
            );
        }
    }

    #[test]
    fn partial_results_respect_max_k() {
        let (cat, _) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT b, d FROM r, s, t WHERE r.a = s.a AND s.c = t.c",
        )
        .unwrap();
        let opt = LocalOptimizer::new(&cat);
        let (partials, _) = opt.partial_results(&q, 1);
        // 3 singletons + full set.
        assert_eq!(partials.len(), 4);
    }

    #[test]
    fn slower_node_estimates_higher_cost() {
        let (cat, _) = setup();
        let q = parse_query(&cat.dict, "SELECT b, s.c FROM r, s WHERE r.a = s.a").unwrap();
        let fast = LocalOptimizer::new(&cat)
            .with_resources(NodeResources::uniform(2.0))
            .optimize(&q);
        let slow = LocalOptimizer::new(&cat)
            .with_resources(NodeResources::uniform(0.5))
            .optimize(&q);
        assert!(slow.cost > fast.cost);
    }

    #[test]
    fn count_star_plan_matches_reference() {
        let (cat, store) = setup();
        let q = parse_query(&cat.dict, "SELECT COUNT(*) FROM r, s WHERE r.a = s.a").unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let plan_out = execute(&o.plan, &store, &[]).unwrap();
        let ref_out = evaluate_query(&q, &store).unwrap();
        assert_eq!(plan_out, ref_out);
    }
}

#[cfg(test)]
mod merge_join_tests {
    use super::*;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_query::parse_query;

    /// Three relations joined on a duplicate-heavy key (rows ≫ NDV): the
    /// join output dwarfs the inputs, so a final ORDER BY sort on the hash
    /// path costs far more than pre-sorting the small inputs for merge
    /// joins whose key order the ORDER BY then reuses.
    fn big_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        for name in ["r", "s", "t"] {
            let rel = b.add_relation(
                RelationSchema::new(name, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
                Partitioning::Single,
            );
            b.set_stats(
                PartId::new(rel, 0),
                PartitionStats::synthetic(100_000, &[1_000, 100]),
            );
            b.place(PartId::new(rel, 0), NodeId(0));
        }
        b.build()
    }

    fn count_ops(plan: &PhysPlan) -> (usize, usize, usize) {
        // (merge joins, hash joins, sorts)
        fn walk(p: &PhysPlan, c: &mut (usize, usize, usize)) {
            match p {
                PhysPlan::MergeJoin { left, right, .. } => {
                    c.0 += 1;
                    walk(left, c);
                    walk(right, c);
                }
                PhysPlan::HashJoin { left, right, .. } => {
                    c.1 += 1;
                    walk(left, c);
                    walk(right, c);
                }
                PhysPlan::NlJoin { left, right, .. } => {
                    walk(left, c);
                    walk(right, c);
                }
                PhysPlan::Sort { input, .. } => {
                    c.2 += 1;
                    walk(input, c);
                }
                PhysPlan::Filter { input, .. }
                | PhysPlan::Project { input, .. }
                | PhysPlan::HashAggregate { input, .. } => walk(input, c),
                PhysPlan::Union { inputs } => {
                    for i in inputs {
                        walk(i, c);
                    }
                }
                PhysPlan::Scan { .. } | PhysPlan::Input { .. } => {}
            }
        }
        let mut c = (0, 0, 0);
        walk(plan, &mut c);
        c
    }

    #[test]
    fn chained_same_key_joins_reuse_merge_order() {
        let cat = big_catalog();
        // ORDER BY the join key: the ordered (merge) Pareto entries win once
        // the final sort of the huge hash-join output is priced in.
        let q = parse_query(
            &cat.dict,
            "SELECT r.k, t.v FROM r, s, t WHERE r.k = s.k AND s.k = t.k ORDER BY r.k",
        )
        .unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let (merges, _hashes, sorts) = count_ops(&o.plan);
        assert_eq!(merges, 2, "both joins should merge:\n{}", o.plan.pretty());
        // Order reuse: only the three base inputs ever need sorting, and the
        // second merge reuses the first's key order (≤ 3 enforcers, no
        // final sort over the billion-row output).
        assert!(sorts <= 3, "{}", o.plan.pretty());
        assert!(
            !matches!(&o.plan, PhysPlan::Project { input, .. } if matches!(**input, PhysPlan::Sort { .. })),
            "no top-level sort expected:\n{}",
            o.plan.pretty()
        );
    }

    #[test]
    fn hash_joins_win_without_an_ordering_requirement() {
        let cat = big_catalog();
        let q = parse_query(
            &cat.dict,
            "SELECT r.v, t.v FROM r, s, t WHERE r.k = s.k AND s.k = t.k",
        )
        .unwrap();
        let o = LocalOptimizer::new(&cat).optimize(&q);
        let (merges, hashes, _) = count_ops(&o.plan);
        assert_eq!(merges, 0, "{}", o.plan.pretty());
        assert_eq!(hashes, 2);
    }

    #[test]
    fn ordered_plan_is_cheaper_than_forcing_hash_plus_sort() {
        // The finished cost of the chosen ordered plan must beat the
        // unordered plan plus an explicit output sort.
        let cat = big_catalog();
        let ordered = parse_query(
            &cat.dict,
            "SELECT r.k, t.v FROM r, s, t WHERE r.k = s.k AND s.k = t.k ORDER BY r.k",
        )
        .unwrap();
        let plain = parse_query(
            &cat.dict,
            "SELECT r.k, t.v FROM r, s, t WHERE r.k = s.k AND s.k = t.k",
        )
        .unwrap();
        let opt = LocalOptimizer::new(&cat);
        let with_order = opt.optimize(&ordered);
        let without = opt.optimize(&plain);
        // The ordering requirement costs *something*...
        assert!(with_order.cost >= without.cost);
        // ...but far less than sorting the output would
        // (sort(out_rows) would dominate the whole plan).
        let naive_sort = opt.params.sort(with_order.rows);
        assert!(
            with_order.cost - without.cost < naive_sort * 0.5,
            "order reuse must be much cheaper than a final sort: delta {} vs sort {}",
            with_order.cost - without.cost,
            naive_sort
        );
    }

    #[test]
    fn merge_plan_still_matches_reference_on_data() {
        use qt_catalog::Value;
        use qt_exec::reference::same_rows;
        use qt_exec::{evaluate_query, execute, DataStore};
        // Small data, but force the merge path by zeroing hash-join costs'
        // advantage: make sort nearly free.
        let mut b = CatalogBuilder::new();
        let probe = {
            let mut pb = CatalogBuilder::new();
            for name in ["r", "s", "t"] {
                let rel = pb.add_relation(
                    RelationSchema::new(name, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
                    Partitioning::Single,
                );
                pb.set_stats(PartId::new(rel, 0), PartitionStats::synthetic(1, &[1, 1]));
                pb.place(PartId::new(rel, 0), NodeId(0));
            }
            pb.build().dict
        };
        let mut store = DataStore::new();
        for (i, _) in ["r", "s", "t"].iter().enumerate() {
            let rel = b.add_relation(
                RelationSchema::new(
                    ["r", "s", "t"][i],
                    vec![("k", AttrType::Int), ("v", AttrType::Int)],
                ),
                Partitioning::Single,
            );
            let rows: Vec<Vec<Value>> = (0..30)
                .map(|j| vec![Value::Int((j * (i as i64 + 3)) % 7), Value::Int(j)])
                .collect();
            store.load_relation(&probe, rel, rows);
            let part = PartId::new(rel, 0);
            b.set_stats(part, store.stats_of(&probe, part).unwrap());
            b.place(part, NodeId(0));
        }
        let cat = b.build();
        let q = parse_query(
            &cat.dict,
            "SELECT r.v, t.v FROM r, s, t WHERE r.k = s.k AND s.k = t.k",
        )
        .unwrap();
        let mut opt = LocalOptimizer::new(&cat);
        opt.params.sort_tuple_log = 0.0; // sorting free → merge joins win
        let o = opt.optimize(&q);
        let (merges, _, _) = count_ops(&o.plan);
        assert!(merges >= 1, "{}", o.plan.pretty());
        let got = execute(&o.plan, &store, &[]).unwrap();
        let want = evaluate_query(&q, &store).unwrap();
        assert!(same_rows(&got, &want));
    }
}
