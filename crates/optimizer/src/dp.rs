//! Subset-DP machinery shared by the exhaustive and IDP enumerators.

use qt_query::{Col, CompOp, Operand, Query};
use std::collections::HashMap;

/// Which join-enumeration strategy a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinEnumerator {
    /// Classic System-R dynamic programming over all relation subsets.
    #[default]
    Exhaustive,
    /// IDP-M(k, m) (Kossmann & Stocker): evaluate all `k`-way sub-plans,
    /// keep only the best `m` of them, then continue like DP. The paper's
    /// experiments use IDP-M(2, 5).
    IdpM {
        /// Sub-plan size at which pruning happens.
        k: usize,
        /// Number of sub-plans kept at size `k`.
        m: usize,
    },
}

impl JoinEnumerator {
    /// The paper's IDP-M(2,5).
    pub fn idp_2_5() -> Self {
        JoinEnumerator::IdpM { k: 2, m: 5 }
    }

    /// Label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            JoinEnumerator::Exhaustive => "DP".into(),
            JoinEnumerator::IdpM { k, m } => format!("IDP({k},{m})"),
        }
    }
}

/// One memoized sub-plan: the best known way to compute the join over a
/// relation subset. Generic over the plan handle `P` — the production DP
/// stores arena ids ([`qt_exec::PlanId`]), so an entry is `Copy`-cheap and
/// Pareto pruning never deep-clones a tree; the retained reference path
/// stores boxed [`qt_exec::PhysPlan`] trees.
#[derive(Debug, Clone)]
pub struct DpEntry<P> {
    /// The physical sub-plan (an arena id or a boxed tree).
    pub plan: P,
    /// Local cost in node-seconds.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width in bytes (full concatenated tuples).
    pub width: f64,
    /// Columns the output is sorted on (major first); empty = unordered.
    /// Merge joins produce key-ordered output that later merge joins and
    /// `ORDER BY` can reuse.
    pub order: Vec<Col>,
}

/// Does order `a` cover order `b` — i.e. is a stream sorted on `a` also
/// sorted on `b`? True iff `b` is a prefix of `a`.
pub fn order_covers(a: &[Col], b: &[Col]) -> bool {
    b.len() <= a.len() && a[..b.len()] == *b
}

/// DP table keyed by relation-subset bitmask, organized by subset size.
///
/// Each subset keeps a *Pareto set* of entries over (cost, interesting
/// order) — System R's classic treatment: a plan survives unless another
/// plan is at most as expensive **and** at least as ordered.
#[derive(Debug)]
pub struct DpTable<P> {
    entries: HashMap<u64, Vec<DpEntry<P>>>,
    by_size: Vec<Vec<u64>>,
}

impl<P> DpTable<P> {
    /// Table for a query over `n` relations.
    pub fn new(n: usize) -> Self {
        DpTable {
            entries: HashMap::new(),
            by_size: vec![Vec::new(); n + 1],
        }
    }

    /// Insert `entry` for `mask`, maintaining the Pareto set.
    pub fn insert(&mut self, mask: u64, entry: DpEntry<P>) {
        let slot = match self.entries.get_mut(&mask) {
            Some(v) => v,
            None => {
                self.by_size[mask.count_ones() as usize].push(mask);
                self.entries.entry(mask).or_default()
            }
        };
        // Dominated by an existing entry?
        if slot
            .iter()
            .any(|e| e.cost <= entry.cost && order_covers(&e.order, &entry.order))
        {
            return;
        }
        // Remove entries the newcomer dominates.
        slot.retain(|e| !(entry.cost <= e.cost && order_covers(&entry.order, &e.order)));
        slot.push(entry);
    }

    /// The cheapest entry for `mask`, if any.
    pub fn get(&self, mask: u64) -> Option<&DpEntry<P>> {
        self.entries
            .get(&mask)?
            .iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }

    /// All Pareto entries for `mask`.
    pub fn entries(&self, mask: u64) -> &[DpEntry<P>] {
        self.entries.get(&mask).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Masks of a given subset size (insertion order).
    pub fn masks_of_size(&self, size: usize) -> &[u64] {
        self.by_size.get(size).map(Vec::as_slice).unwrap_or(&[])
    }

    /// IDP pruning: keep only the `m` masks of `size` with the cheapest
    /// best entries.
    pub fn prune_size(&mut self, size: usize, m: usize) {
        let masks = &mut self.by_size[size];
        if masks.len() <= m {
            return;
        }
        let best = |entries: &HashMap<u64, Vec<DpEntry<P>>>, mask: &u64| -> f64 {
            entries[mask]
                .iter()
                .map(|e| e.cost)
                .fold(f64::INFINITY, f64::min)
        };
        masks.sort_by(|a, b| {
            best(&self.entries, a)
                .total_cmp(&best(&self.entries, b))
                .then(a.cmp(b))
        });
        for dropped in masks.split_off(m) {
            self.entries.remove(&dropped);
        }
    }

    /// All `(mask, best entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &DpEntry<P>)> {
        self.entries.iter().filter_map(|(m, v)| {
            v.iter()
                .min_by(|a, b| a.cost.total_cmp(&b.cost))
                .map(|e| (*m, e))
        })
    }
}

/// Column equivalence classes induced by a query's equi-join predicates
/// (`r.k = s.k = t.k` → one class), as a flat interned-column union-find:
/// the columns appearing in equi-join predicates are collected and sorted
/// once, unions run over `u32` indices, and lookups are a binary search —
/// no per-find `BTreeMap` traffic on the join hot path.
///
/// The canonical representative of a class is its minimum column, so orders
/// tracked in canonical form compare equal across plans that sort on
/// different members of the same class — every DP entry has all predicates
/// inside its subset applied, so the equivalence is always valid within an
/// entry.
#[derive(Debug, Clone)]
pub struct ColCanon {
    /// Interned columns, sorted ascending (index order == column order).
    cols: Vec<Col>,
    /// Fully-flattened root index per interned column.
    root: Vec<u32>,
}

impl ColCanon {
    /// Build the equivalence classes from `q`'s equi-join predicates.
    pub fn from_query(q: &Query) -> Self {
        let mut cols: Vec<Col> = Vec::new();
        for p in q.join_predicates() {
            if p.op != CompOp::Eq {
                continue;
            }
            if let Operand::Col(rc) = &p.right {
                cols.push(p.left);
                cols.push(*rc);
            }
        }
        cols.sort_unstable();
        cols.dedup();
        let mut root: Vec<u32> = (0..cols.len() as u32).collect();
        fn find(root: &mut [u32], mut i: u32) -> u32 {
            while root[i as usize] != i {
                let grandparent = root[root[i as usize] as usize];
                root[i as usize] = grandparent; // path halving
                i = grandparent;
            }
            i
        }
        for p in q.join_predicates() {
            if p.op != CompOp::Eq {
                continue;
            }
            if let Operand::Col(rc) = &p.right {
                let a = find(
                    &mut root,
                    cols.binary_search(&p.left).expect("interned") as u32,
                );
                let b = find(&mut root, cols.binary_search(rc).expect("interned") as u32);
                // Min root wins, so the representative is the class minimum.
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                root[hi as usize] = lo;
            }
        }
        for i in 0..root.len() as u32 {
            let r = find(&mut root, i);
            root[i as usize] = r;
        }
        ColCanon { cols, root }
    }

    /// The canonical (class-minimum) form of `c`; columns outside every
    /// equi-join predicate map to themselves.
    pub fn canon(&self, c: Col) -> Col {
        match self.cols.binary_search(&c) {
            Ok(i) => self.cols[self.root[i] as usize],
            Err(_) => c,
        }
    }

    /// Canonicalize a column list.
    pub fn canon_all(&self, cols: &[Col]) -> Vec<Col> {
        cols.iter().map(|&c| self.canon(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::RelId;
    use qt_query::Predicate;

    fn entry(cost: f64) -> DpEntry<()> {
        DpEntry {
            plan: (),
            cost,
            rows: 1.0,
            width: 8.0,
            order: vec![],
        }
    }

    #[test]
    fn insert_keeps_cheaper() {
        let mut t = DpTable::new(3);
        t.insert(0b11, entry(5.0));
        t.insert(0b11, entry(9.0));
        assert_eq!(t.get(0b11).unwrap().cost, 5.0);
        t.insert(0b11, entry(2.0));
        assert_eq!(t.get(0b11).unwrap().cost, 2.0);
        assert_eq!(t.masks_of_size(2), &[0b11]);
    }

    #[test]
    fn prune_keeps_best_m() {
        let mut t = DpTable::new(4);
        t.insert(0b0011, entry(5.0));
        t.insert(0b0101, entry(1.0));
        t.insert(0b1001, entry(3.0));
        t.prune_size(2, 2);
        assert!(t.get(0b0101).is_some());
        assert!(t.get(0b1001).is_some());
        assert!(t.get(0b0011).is_none());
        assert_eq!(t.masks_of_size(2).len(), 2);
    }

    #[test]
    fn prune_noop_when_small() {
        let mut t = DpTable::new(4);
        t.insert(0b0011, entry(5.0));
        t.prune_size(2, 5);
        assert!(t.get(0b0011).is_some());
    }

    #[test]
    fn enumerator_labels() {
        assert_eq!(JoinEnumerator::Exhaustive.label(), "DP");
        assert_eq!(JoinEnumerator::idp_2_5().label(), "IDP(2,5)");
    }

    #[test]
    fn col_canon_chains_classes_to_the_minimum() {
        // r.k = s.k, s.k = t.k → all three canonicalize to r.k.
        let rels: Vec<RelId> = (0..3u32).map(RelId).collect();
        let cols: Vec<Col> = rels.iter().map(|&r| Col::new(r, 0)).collect();
        let dict = {
            let mut b = qt_catalog::CatalogBuilder::new();
            for n in ["r", "s", "t"] {
                let rel = b.add_relation(
                    qt_catalog::RelationSchema::new(
                        n,
                        vec![
                            ("k", qt_catalog::AttrType::Int),
                            ("v", qt_catalog::AttrType::Int),
                        ],
                    ),
                    qt_catalog::Partitioning::Single,
                );
                b.set_stats(
                    qt_catalog::PartId::new(rel, 0),
                    qt_catalog::PartitionStats::synthetic(100, &[100, 10]),
                );
                b.place(qt_catalog::PartId::new(rel, 0), qt_catalog::NodeId(0));
            }
            b.build().dict
        };
        let q = Query::over_full(&dict, rels.iter().copied())
            .with_predicates(vec![
                Predicate::eq_cols(cols[0], cols[1]),
                Predicate::eq_cols(cols[1], cols[2]),
            ])
            .with_select(vec![qt_query::SelectItem::Col(Col::new(rels[0], 1))]);
        let canon = ColCanon::from_query(&q);
        for &c in &cols {
            assert_eq!(canon.canon(c), cols[0]);
        }
        // Columns outside the classes map to themselves.
        let other = Col::new(rels[2], 1);
        assert_eq!(canon.canon(other), other);
        assert_eq!(canon.canon_all(&[cols[2], other]), vec![cols[0], other]);
    }
}
