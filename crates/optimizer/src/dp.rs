//! Subset-DP machinery shared by the exhaustive and IDP enumerators.

use qt_exec::PhysPlan;
use std::collections::HashMap;

/// Which join-enumeration strategy a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum JoinEnumerator {
    /// Classic System-R dynamic programming over all relation subsets.
    #[default]
    Exhaustive,
    /// IDP-M(k, m) (Kossmann & Stocker): evaluate all `k`-way sub-plans,
    /// keep only the best `m` of them, then continue like DP. The paper's
    /// experiments use IDP-M(2, 5).
    IdpM {
        /// Sub-plan size at which pruning happens.
        k: usize,
        /// Number of sub-plans kept at size `k`.
        m: usize,
    },
}

impl JoinEnumerator {
    /// The paper's IDP-M(2,5).
    pub fn idp_2_5() -> Self {
        JoinEnumerator::IdpM { k: 2, m: 5 }
    }

    /// Label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            JoinEnumerator::Exhaustive => "DP".into(),
            JoinEnumerator::IdpM { k, m } => format!("IDP({k},{m})"),
        }
    }
}


/// One memoized sub-plan: the best known way to compute the join over a
/// relation subset.
#[derive(Debug, Clone)]
pub struct DpEntry {
    /// The physical sub-plan.
    pub plan: PhysPlan,
    /// Local cost in node-seconds.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output row width in bytes (full concatenated tuples).
    pub width: f64,
    /// Columns the output is sorted on (major first); empty = unordered.
    /// Merge joins produce key-ordered output that later merge joins and
    /// `ORDER BY` can reuse.
    pub order: Vec<qt_query::Col>,
}

/// Does order `a` cover order `b` — i.e. is a stream sorted on `a` also
/// sorted on `b`? True iff `b` is a prefix of `a`.
pub fn order_covers(a: &[qt_query::Col], b: &[qt_query::Col]) -> bool {
    b.len() <= a.len() && a[..b.len()] == *b
}

/// DP table keyed by relation-subset bitmask, organized by subset size.
///
/// Each subset keeps a *Pareto set* of entries over (cost, interesting
/// order) — System R's classic treatment: a plan survives unless another
/// plan is at most as expensive **and** at least as ordered.
#[derive(Debug, Default)]
pub struct DpTable {
    entries: HashMap<u64, Vec<DpEntry>>,
    by_size: Vec<Vec<u64>>,
}

impl DpTable {
    /// Table for a query over `n` relations.
    pub fn new(n: usize) -> Self {
        DpTable { entries: HashMap::new(), by_size: vec![Vec::new(); n + 1] }
    }

    /// Insert `entry` for `mask`, maintaining the Pareto set.
    pub fn insert(&mut self, mask: u64, entry: DpEntry) {
        let slot = match self.entries.get_mut(&mask) {
            Some(v) => v,
            None => {
                self.by_size[mask.count_ones() as usize].push(mask);
                self.entries.entry(mask).or_default()
            }
        };
        // Dominated by an existing entry?
        if slot
            .iter()
            .any(|e| e.cost <= entry.cost && order_covers(&e.order, &entry.order))
        {
            return;
        }
        // Remove entries the newcomer dominates.
        slot.retain(|e| !(entry.cost <= e.cost && order_covers(&entry.order, &e.order)));
        slot.push(entry);
    }

    /// The cheapest entry for `mask`, if any.
    pub fn get(&self, mask: u64) -> Option<&DpEntry> {
        self.entries
            .get(&mask)?
            .iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }

    /// All Pareto entries for `mask`.
    pub fn entries(&self, mask: u64) -> &[DpEntry] {
        self.entries.get(&mask).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Masks of a given subset size (insertion order).
    pub fn masks_of_size(&self, size: usize) -> &[u64] {
        self.by_size.get(size).map(Vec::as_slice).unwrap_or(&[])
    }

    /// IDP pruning: keep only the `m` masks of `size` with the cheapest
    /// best entries.
    pub fn prune_size(&mut self, size: usize, m: usize) {
        let masks = &mut self.by_size[size];
        if masks.len() <= m {
            return;
        }
        let best = |entries: &HashMap<u64, Vec<DpEntry>>, mask: &u64| -> f64 {
            entries[mask]
                .iter()
                .map(|e| e.cost)
                .fold(f64::INFINITY, f64::min)
        };
        masks.sort_by(|a, b| {
            best(&self.entries, a)
                .total_cmp(&best(&self.entries, b))
                .then(a.cmp(b))
        });
        for dropped in masks.split_off(m) {
            self.entries.remove(&dropped);
        }
    }

    /// All `(mask, best entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &DpEntry)> {
        self.entries.iter().filter_map(|(m, v)| {
            v.iter().min_by(|a, b| a.cost.total_cmp(&b.cost)).map(|e| (*m, e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{PartId, RelId};

    fn entry(cost: f64) -> DpEntry {
        DpEntry {
            plan: PhysPlan::Scan { part: PartId::new(RelId(0), 0), arity: 1 },
            cost,
            rows: 1.0,
            width: 8.0,
            order: vec![],
        }
    }

    #[test]
    fn insert_keeps_cheaper() {
        let mut t = DpTable::new(3);
        t.insert(0b11, entry(5.0));
        t.insert(0b11, entry(9.0));
        assert_eq!(t.get(0b11).unwrap().cost, 5.0);
        t.insert(0b11, entry(2.0));
        assert_eq!(t.get(0b11).unwrap().cost, 2.0);
        assert_eq!(t.masks_of_size(2), &[0b11]);
    }

    #[test]
    fn prune_keeps_best_m() {
        let mut t = DpTable::new(4);
        t.insert(0b0011, entry(5.0));
        t.insert(0b0101, entry(1.0));
        t.insert(0b1001, entry(3.0));
        t.prune_size(2, 2);
        assert!(t.get(0b0101).is_some());
        assert!(t.get(0b1001).is_some());
        assert!(t.get(0b0011).is_none());
        assert_eq!(t.masks_of_size(2).len(), 2);
    }

    #[test]
    fn prune_noop_when_small() {
        let mut t = DpTable::new(4);
        t.insert(0b0011, entry(5.0));
        t.prune_size(2, 5);
        assert!(t.get(0b0011).is_some());
    }

    #[test]
    fn enumerator_labels() {
        assert_eq!(JoinEnumerator::Exhaustive.label(), "DP");
        assert_eq!(JoinEnumerator::idp_2_5().label(), "IDP(2,5)");
    }
}
