//! The retained tree-cloning DP — the pre-arena implementation, kept
//! verbatim as the executable specification of the enumerators.
//!
//! [`ReferenceOptimizer`] builds every join candidate as a boxed
//! [`PhysPlan`] tree (deep-cloning both children per candidate) and
//! re-estimates cardinalities per candidate pair, exactly as the optimizer
//! did before the arena refactor. It exists so the equivalence suite can
//! assert the production [`crate::LocalOptimizer`] is **bit-identical** to
//! it — same plan shape, same cost bits, same rows/width bits, same effort,
//! same Pareto-set order — for both enumerators and any `max_k`. It is not
//! used on any production path.

use crate::dp::{order_covers, DpEntry, DpTable, JoinEnumerator};
use crate::local::{Optimized, PartialResult};
use qt_catalog::{PartId, RelId};
use qt_cost::{CardinalityEstimator, CostParams, NodeResources, StatsSource};
use qt_exec::{AggSpec, PhysPlan};
use qt_query::{Col, CompOp, Operand, Predicate, Query, SelectItem};
use std::collections::BTreeSet;

/// The frozen tree-cloning optimizer. Mirrors [`crate::LocalOptimizer`]'s
/// configuration surface.
pub struct ReferenceOptimizer<'a, S: StatsSource> {
    source: &'a S,
    /// Shared operator cost constants.
    pub params: CostParams,
    /// This node's resources (scales all costs).
    pub resources: NodeResources,
    /// Join-enumeration strategy.
    pub enumerator: JoinEnumerator,
}

impl<'a, S: StatsSource> ReferenceOptimizer<'a, S> {
    /// Optimizer with reference parameters and exhaustive enumeration.
    pub fn new(source: &'a S) -> Self {
        ReferenceOptimizer {
            source,
            params: CostParams::reference(),
            resources: NodeResources::reference(),
            enumerator: JoinEnumerator::Exhaustive,
        }
    }

    /// Builder-style enumerator override.
    pub fn with_enumerator(mut self, e: JoinEnumerator) -> Self {
        self.enumerator = e;
        self
    }

    /// Builder-style resources override.
    pub fn with_resources(mut self, r: NodeResources) -> Self {
        self.resources = r;
        self
    }

    fn estimator(&self) -> CardinalityEstimator<'a, S> {
        CardinalityEstimator::new(self.source)
    }

    /// The original recursive `BTreeMap` union-find over join columns.
    fn col_canon(&self, q: &Query) -> std::collections::BTreeMap<Col, Col> {
        let mut canon: std::collections::BTreeMap<Col, Col> = std::collections::BTreeMap::new();
        fn find(canon: &mut std::collections::BTreeMap<Col, Col>, c: Col) -> Col {
            let parent = *canon.entry(c).or_insert(c);
            if parent == c {
                c
            } else {
                let root = find(canon, parent);
                canon.insert(c, root);
                root
            }
        }
        for p in q.join_predicates() {
            if p.op != CompOp::Eq {
                continue;
            }
            if let Operand::Col(rc) = &p.right {
                let a = find(&mut canon, p.left);
                let b = find(&mut canon, *rc);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                canon.insert(hi, lo);
            }
        }
        // Flatten.
        let keys: Vec<Col> = canon.keys().copied().collect();
        for k in keys {
            let root = find(&mut canon, k);
            canon.insert(k, root);
        }
        canon
    }

    /// The original leaf: one `base_profile` call per partition *and* one
    /// more for the full partition set.
    fn leaf(&self, q: &Query, rel: RelId) -> DpEntry<PhysPlan> {
        let est = self.estimator();
        let parts = q.relations[&rel];
        let arity = self.source.dict().rel(rel).schema.arity();
        let mut scans: Vec<PhysPlan> = Vec::new();
        let mut scan_cost = 0.0;
        for idx in parts.iter() {
            let pid = PartId::new(rel, idx);
            let profile = est.base_profile(rel, &qt_query::PartSet::single(idx));
            scan_cost += self.params.scan(profile.rows, profile.width) * self.resources.io_factor();
            scans.push(PhysPlan::Scan { part: pid, arity });
        }
        let mut plan = if scans.len() == 1 {
            scans.pop().expect("one scan")
        } else {
            PhysPlan::Union { inputs: scans }
        };
        let base = est.base_profile(rel, &parts);
        let mut cost = scan_cost + self.params.union(base.rows) * self.resources.cpu_factor();
        let selections: Vec<Predicate> = q.selections_of(rel).cloned().collect();
        if !selections.is_empty() {
            cost += self.params.filter(base.rows) * self.resources.cpu_factor();
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                predicates: selections,
            };
        }
        let profile = est.selected_profile(q, rel);
        DpEntry {
            plan,
            cost,
            rows: profile.rows,
            width: base.width,
            order: vec![],
        }
    }

    /// The original join: deep-clones `left.plan`/`right.plan` per physical
    /// candidate.
    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        q: &Query,
        rels: &[RelId],
        canon: &std::collections::BTreeMap<Col, Col>,
        left_mask: u64,
        right_mask: u64,
        left: &DpEntry<PhysPlan>,
        right: &DpEntry<PhysPlan>,
        out_rows: f64,
    ) -> Vec<DpEntry<PhysPlan>> {
        let in_left = |r: RelId| {
            rels.iter()
                .position(|&x| x == r)
                .is_some_and(|i| left_mask >> i & 1 == 1)
        };
        let in_right = |r: RelId| {
            rels.iter()
                .position(|&x| x == r)
                .is_some_and(|i| right_mask >> i & 1 == 1)
        };
        // Predicates connecting the two sides.
        let mut eq_keys: Vec<(Col, Col)> = Vec::new();
        let mut residual: Vec<Predicate> = Vec::new();
        for p in q.join_predicates() {
            let Operand::Col(rc) = &p.right else { continue };
            let (l, r) = (p.left, *rc);
            let (lk, rk) = if in_left(l.rel) && in_right(r.rel) {
                (l, r)
            } else if in_left(r.rel) && in_right(l.rel) {
                (r, l)
            } else {
                continue;
            };
            if p.op == CompOp::Eq {
                eq_keys.push((lk, rk));
            } else {
                residual.push(p.clone());
            }
        }
        let cpu = self.resources.cpu_factor();
        let width = left.width + right.width;
        let base_cost = left.cost + right.cost;
        // Residual (non-equi connecting) predicates go into a Filter on top
        // of equi-joins; filters preserve order.
        let finish = |mut plan: PhysPlan, mut cost: f64, order: Vec<Col>| -> DpEntry<PhysPlan> {
            if !residual.is_empty() {
                plan = PhysPlan::Filter {
                    input: Box::new(plan),
                    predicates: residual.clone(),
                };
                cost += self.params.filter(out_rows) * cpu;
            }
            DpEntry {
                plan,
                cost: base_cost + cost,
                rows: out_rows,
                width,
                order,
            }
        };

        if eq_keys.is_empty() {
            let plan = PhysPlan::NlJoin {
                left: Box::new(left.plan.clone()),
                right: Box::new(right.plan.clone()),
                predicates: residual.clone(),
            };
            let cost = self.params.nl_join(left.rows, right.rows, out_rows) * cpu;
            return vec![DpEntry {
                plan,
                cost: base_cost + cost,
                rows: out_rows,
                width,
                order: vec![],
            }];
        }

        // Candidate 1: hash join, build on the smaller side; unordered.
        let (build, probe, build_rows) = if left.rows <= right.rows {
            (left, right, left.rows)
        } else {
            (right, left, right.rows)
        };
        let swapped = !std::ptr::eq(build, left);
        let build_keys: Vec<(Col, Col)> = if swapped {
            eq_keys.iter().map(|&(l, r)| (r, l)).collect()
        } else {
            eq_keys.clone()
        };
        let hash = finish(
            PhysPlan::HashJoin {
                left: Box::new(build.plan.clone()),
                right: Box::new(probe.plan.clone()),
                left_keys: build_keys.iter().map(|k| k.0).collect(),
                right_keys: build_keys.iter().map(|k| k.1).collect(),
            },
            self.params.hash_join(build_rows, probe.rows, out_rows) * cpu,
            vec![],
        );

        // Candidate 2: sort-merge join; reuses input key order (modulo the
        // query's column equivalence classes), produces key-ordered output.
        let lkeys: Vec<Col> = eq_keys.iter().map(|k| k.0).collect();
        let rkeys: Vec<Col> = eq_keys.iter().map(|k| k.1).collect();
        let canon_of = |cols: &[Col]| -> Vec<Col> {
            cols.iter()
                .map(|c| canon.get(c).copied().unwrap_or(*c))
                .collect()
        };
        let lkeys_c = canon_of(&lkeys);
        let rkeys_c = canon_of(&rkeys);
        let l_sorted = order_covers(&left.order, &lkeys_c);
        let r_sorted = order_covers(&right.order, &rkeys_c);
        let mut merge_cost = self.params.merge_join(left.rows, right.rows, out_rows) * cpu;
        if !l_sorted {
            merge_cost += self.params.sort(left.rows) * cpu;
        }
        if !r_sorted {
            merge_cost += self.params.sort(right.rows) * cpu;
        }
        let enforce = |side: &DpEntry<PhysPlan>, keys: &[Col], sorted: bool| -> PhysPlan {
            if sorted {
                side.plan.clone()
            } else {
                PhysPlan::Sort {
                    input: Box::new(side.plan.clone()),
                    keys: keys.to_vec(),
                }
            }
        };
        let merge = finish(
            PhysPlan::MergeJoin {
                left: Box::new(enforce(left, &lkeys, l_sorted)),
                right: Box::new(enforce(right, &rkeys, r_sorted)),
                left_keys: lkeys,
                right_keys: rkeys,
            },
            merge_cost,
            lkeys_c,
        );
        vec![hash, merge]
    }

    /// The original enumerator: re-estimates `join_rows` per candidate pair.
    fn enumerate(&self, q: &Query) -> (DpTable<PhysPlan>, Vec<RelId>, u64) {
        let rels: Vec<RelId> = q.rel_ids().collect();
        let n = rels.len();
        assert!(n <= 63, "too many relations");
        let est = self.estimator();
        let canon = self.col_canon(q);
        let mut table = DpTable::new(n);
        let mut effort = 0u64;
        for (i, &rel) in rels.iter().enumerate() {
            table.insert(1u64 << i, self.leaf(q, rel));
            effort += 1;
        }
        let rels_of = |mask: u64| -> Vec<RelId> {
            rels.iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &r)| r)
                .collect()
        };
        for size in 2..=n {
            for s1 in 1..=size / 2 {
                let s2 = size - s1;
                let left_masks: Vec<u64> = table.masks_of_size(s1).to_vec();
                let right_masks: Vec<u64> = table.masks_of_size(s2).to_vec();
                for &m1 in &left_masks {
                    for &m2 in &right_masks {
                        if m1 & m2 != 0 || (s1 == s2 && m1 >= m2) {
                            continue;
                        }
                        let combined = m1 | m2;
                        let out_rows = est.join_rows(q, &rels_of(combined));
                        // Pareto sets: every (ordered/unordered) pairing is a
                        // distinct sub-plan to consider.
                        let lefts: Vec<DpEntry<PhysPlan>> = table.entries(m1).to_vec();
                        let rights: Vec<DpEntry<PhysPlan>> = table.entries(m2).to_vec();
                        for l in &lefts {
                            for r in &rights {
                                for entry in self.join(q, &rels, &canon, m1, m2, l, r, out_rows) {
                                    effort += 1;
                                    table.insert(combined, entry);
                                }
                            }
                        }
                    }
                }
            }
            if let JoinEnumerator::IdpM { k, m } = self.enumerator {
                if size == k {
                    table.prune_size(k, m);
                }
            }
        }
        (table, rels, effort)
    }

    /// The original `optimize`: see [`crate::LocalOptimizer::optimize`].
    pub fn optimize(&self, q: &Query) -> Optimized {
        let (table, rels, effort) = self.enumerate(q);
        let n = rels.len();
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let cpu = self.resources.cpu_factor();
        let canon = self.col_canon(q);
        let order_by_c: Vec<Col> = q
            .order_by
            .iter()
            .map(|c| canon.get(c).copied().unwrap_or(*c))
            .collect();
        // Pick the Pareto entry whose *finished* cost (including any final
        // sort the query's ORDER BY needs) is lowest.
        let entry = table
            .entries(full)
            .iter()
            .min_by(|a, b| {
                let fin = |e: &DpEntry<PhysPlan>| {
                    let needs_sort = !q.is_aggregate()
                        && !q.order_by.is_empty()
                        && !order_covers(&e.order, &order_by_c);
                    e.cost
                        + if needs_sort {
                            self.params.sort(e.rows) * cpu
                        } else {
                            0.0
                        }
                };
                fin(a).total_cmp(&fin(b))
            })
            .expect("DP always reaches the full set")
            .clone();
        let est = self.estimator();
        let final_est = est.estimate(q);
        let mut plan = entry.plan;
        let mut cost = entry.cost;

        if q.is_aggregate() {
            let aggs: Vec<AggSpec> = q
                .select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Agg { func, arg } => Some(AggSpec {
                        func: *func,
                        arg: *arg,
                    }),
                    SelectItem::Col(_) => None,
                })
                .collect();
            plan = PhysPlan::HashAggregate {
                input: Box::new(plan),
                group_by: q.group_by.clone(),
                aggs,
            };
            cost += self.params.aggregate(entry.rows, final_est.rows) * cpu;
            // Project the aggregate output (keys ++ agg markers) into SELECT
            // order.
            let agg_schema = plan.schema();
            let mut agg_idx = q.group_by.len();
            let cols: Vec<Col> = q
                .select
                .iter()
                .map(|s| match s {
                    SelectItem::Col(c) => *c,
                    SelectItem::Agg { .. } => {
                        let c = agg_schema[agg_idx];
                        agg_idx += 1;
                        c
                    }
                })
                .collect();
            plan = PhysPlan::Project {
                input: Box::new(plan),
                cols,
            };
        } else {
            // Reuse a merge join's key order when it already satisfies the
            // requested ordering (ORDER BY is a prefix of the plan order,
            // modulo join-key equivalence).
            let pre_sorted = order_covers(&entry.order, &order_by_c);
            if !q.order_by.is_empty() && !pre_sorted {
                plan = PhysPlan::Sort {
                    input: Box::new(plan),
                    keys: q.order_by.clone(),
                };
                cost += self.params.sort(entry.rows) * cpu;
            }
            let cols: Vec<Col> = q
                .select
                .iter()
                .map(|s| match s {
                    SelectItem::Col(c) => *c,
                    SelectItem::Agg { .. } => unreachable!("non-aggregate query"),
                })
                .collect();
            plan = PhysPlan::Project {
                input: Box::new(plan),
                cols,
            };
        }
        cost += self.params.filter(final_est.rows) * cpu; // projection pass

        Optimized {
            plan,
            cost,
            rows: final_est.rows,
            width: final_est.width,
            effort,
        }
    }

    /// The original `partial_results`: constructs a fresh estimator and
    /// calls `estimate()` inside the per-subset loop. See
    /// [`crate::LocalOptimizer::partial_results`].
    pub fn partial_results(&self, q: &Query, max_k: usize) -> (Vec<PartialResult>, u64) {
        let (table, rels, effort) = self.enumerate(q);
        let n = rels.len();
        let cpu = self.resources.cpu_factor();
        let mut out = Vec::new();
        for (mask, entry) in table.iter() {
            let size = mask.count_ones() as usize;
            if size > max_k && size != n {
                continue;
            }
            let subset: BTreeSet<RelId> = rels
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &r)| r)
                .collect();
            let sub_query = q.restrict_to_rels(&subset);
            let cols: Vec<Col> = sub_query
                .select
                .iter()
                .map(|s| s.col().expect("SPJ core has only plain columns"))
                .collect();
            let width: f64 = {
                let est = self.estimator();
                est.estimate(&sub_query).width
            };
            let plan = PhysPlan::Project {
                input: Box::new(entry.plan.clone()),
                cols,
            };
            let cost = entry.cost + self.params.filter(entry.rows) * cpu;
            out.push(PartialResult {
                query: sub_query,
                plan,
                cost,
                rows: entry.rows,
                width,
            });
        }
        // Deterministic order: by subset size then query.
        out.sort_by(|a, b| {
            a.query
                .num_relations()
                .cmp(&b.query.num_relations())
                .then_with(|| a.query.cmp(&b.query))
        });
        (out, effort)
    }
}
