//! Plan preparation at the plan→columnar lowering boundary.
//!
//! The executable plans that reach the executors — in particular the
//! union-of-scans / nested-loop `naive_plan` used to run purchased offers —
//! keep every selection and join predicate in one `Filter` above a chain of
//! *cross-product* `NlJoin`s. The row executor tolerates this on validation-
//! sized data, but at 100–1000x scale the intermediate cross products are
//! fatal, and the columnar executor's equi-join extraction (which turns
//! `NlJoin` + equality predicates into a vectorized hash join) never sees
//! the predicates stranded in the upper `Filter`.
//!
//! [`sink_predicates`] fixes both: it recursively sinks each predicate to
//! the deepest operator whose schema covers it — into `NlJoin` predicate
//! lists (enabling hash-join lowering), through `Union`s into every branch,
//! and onto single sides of joins. The rewrite is **order-preserving**:
//! every operator here filters without reordering survivors (`NlJoin`'s
//! pair loop, `Filter`, `Union` concatenation), so the rewritten plan
//! yields bit-identical rows to the original under both executors — the
//! repo's standing determinism invariant.

use qt_exec::PhysPlan;
use qt_query::{Col, Operand, Predicate};

fn covered(schema: &[Col], p: &Predicate) -> bool {
    schema.contains(&p.left)
        && match p.right {
            Operand::Col(c) => schema.contains(&c),
            Operand::Const(_) => true,
        }
}

/// Wrap `plan` in a `Filter` for the predicates that could not sink deeper.
fn with_filter(plan: PhysPlan, preds: Vec<Predicate>) -> PhysPlan {
    if preds.is_empty() {
        plan
    } else {
        PhysPlan::Filter {
            input: Box::new(plan),
            predicates: preds,
        }
    }
}

/// Sink every `Filter` predicate in `plan` to the deepest operator that can
/// evaluate it. Semantically a no-op: same rows, same order.
pub fn sink_predicates(plan: &PhysPlan) -> PhysPlan {
    sink(plan, Vec::new())
}

/// Rewrite `plan` with `preds` pending from above (all covered by `plan`'s
/// schema).
fn sink(plan: &PhysPlan, mut preds: Vec<Predicate>) -> PhysPlan {
    match plan {
        PhysPlan::Filter { input, predicates } => {
            // Merge this filter's own predicates with the pending ones.
            // Keeping the inner predicates first preserves evaluation order
            // (conjunction — order only matters for error surfacing).
            let mut all = predicates.clone();
            all.append(&mut preds);
            sink(input, all)
        }
        PhysPlan::NlJoin {
            left,
            right,
            predicates,
        } => {
            let ls = left.schema();
            let rs = right.schema();
            let (mut to_left, mut to_right, mut spanning) = (vec![], vec![], vec![]);
            for p in preds {
                if covered(&ls, &p) {
                    to_left.push(p);
                } else if covered(&rs, &p) {
                    to_right.push(p);
                } else {
                    spanning.push(p);
                }
            }
            // Spanning predicates join the NlJoin's own list, where the
            // columnar executor's equi-extraction can lower them to a hash
            // join; the row executor applies them in the identical pair
            // loop it already runs.
            let mut all = predicates.clone();
            all.append(&mut spanning);
            PhysPlan::NlJoin {
                left: Box::new(sink(left, to_left)),
                right: Box::new(sink(right, to_right)),
                predicates: all,
            }
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let ls = left.schema();
            let rs = right.schema();
            let (mut to_left, mut to_right, mut stay) = (vec![], vec![], vec![]);
            for p in preds {
                if covered(&ls, &p) {
                    to_left.push(p);
                } else if covered(&rs, &p) {
                    to_right.push(p);
                } else {
                    stay.push(p);
                }
            }
            with_filter(
                PhysPlan::HashJoin {
                    left: Box::new(sink(left, to_left)),
                    right: Box::new(sink(right, to_right)),
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                },
                stay,
            )
        }
        PhysPlan::MergeJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            // Merge joins consume sorted inputs; filtering a sorted stream
            // keeps it sorted, so single-side predicates may sink.
            let ls = left.schema();
            let rs = right.schema();
            let (mut to_left, mut to_right, mut stay) = (vec![], vec![], vec![]);
            for p in preds {
                if covered(&ls, &p) {
                    to_left.push(p);
                } else if covered(&rs, &p) {
                    to_right.push(p);
                } else {
                    stay.push(p);
                }
            }
            with_filter(
                PhysPlan::MergeJoin {
                    left: Box::new(sink(left, to_left)),
                    right: Box::new(sink(right, to_right)),
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                },
                stay,
            )
        }
        PhysPlan::Union { inputs } => PhysPlan::Union {
            // Every branch shares the union's schema; filter each branch.
            inputs: inputs.iter().map(|i| sink(i, preds.clone())).collect(),
        },
        // Sort and aggregation change multiplicity/order semantics if a
        // filter crosses them (and a projection changes the schema), so
        // pending predicates stop here. Their children still get their own
        // internal filters sunk.
        PhysPlan::Sort { input, keys } => with_filter(
            PhysPlan::Sort {
                input: Box::new(sink(input, Vec::new())),
                keys: keys.clone(),
            },
            preds,
        ),
        PhysPlan::Project { input, cols } => with_filter(
            PhysPlan::Project {
                input: Box::new(sink(input, Vec::new())),
                cols: cols.clone(),
            },
            preds,
        ),
        PhysPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => with_filter(
            PhysPlan::HashAggregate {
                input: Box::new(sink(input, Vec::new())),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            preds,
        ),
        PhysPlan::Scan { .. } | PhysPlan::Input { .. } => with_filter(plan.clone(), preds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{PartId, RelId, Value};
    use qt_exec::{execute, RowSource};
    use qt_query::CompOp;
    use std::collections::BTreeMap;

    struct Mem(BTreeMap<PartId, Vec<Vec<Value>>>);

    impl RowSource for Mem {
        fn rows_of(&self, part: PartId) -> Option<&[Vec<Value>]> {
            self.0.get(&part).map(|t| t.as_slice())
        }
    }

    fn store() -> Mem {
        let r: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i)])
            .collect();
        let s: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i % 7), Value::Int(i * 2)])
            .collect();
        Mem(
            [(PartId::new(RelId(0), 0), r), (PartId::new(RelId(1), 0), s)]
                .into_iter()
                .collect(),
        )
    }

    fn scan(rel: u32) -> PhysPlan {
        PhysPlan::Scan {
            part: PartId::new(RelId(rel), 0),
            arity: 2,
        }
    }

    /// The naive shape: Filter(join preds ∧ selections) over a cross join.
    fn naive_shape() -> PhysPlan {
        PhysPlan::Filter {
            input: Box::new(PhysPlan::NlJoin {
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
                predicates: vec![],
            }),
            predicates: vec![
                Predicate::eq_cols(Col::new(RelId(0), 0), Col::new(RelId(1), 0)),
                Predicate::with_const(Col::new(RelId(0), 1), CompOp::Lt, 20i64),
                Predicate::with_const(Col::new(RelId(1), 1), CompOp::Ge, 4i64),
            ],
        }
    }

    #[test]
    fn sinking_preserves_rows_and_order() {
        let plan = naive_shape();
        let sunk = sink_predicates(&plan);
        let src = store();
        assert_eq!(
            execute(&plan, &src, &[]).unwrap(),
            execute(&sunk, &src, &[]).unwrap()
        );
    }

    #[test]
    fn join_predicate_lands_in_nl_join_and_selections_on_sides() {
        let sunk = sink_predicates(&naive_shape());
        match sunk {
            PhysPlan::NlJoin {
                left,
                right,
                predicates,
            } => {
                // The cross-relation equality stays at the join, where the
                // columnar executor lowers it to a hash join.
                assert_eq!(predicates.len(), 1);
                assert!(matches!(*left, PhysPlan::Filter { .. }));
                assert!(matches!(*right, PhysPlan::Filter { .. }));
            }
            other => panic!("expected bare NlJoin at the root, got {}", other.pretty()),
        }
    }

    #[test]
    fn predicates_sink_through_unions_and_stop_at_aggregates() {
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::Union {
                inputs: vec![scan(0), scan(0)],
            }),
            predicates: vec![Predicate::with_const(
                Col::new(RelId(0), 1),
                CompOp::Lt,
                7i64,
            )],
        };
        let sunk = sink_predicates(&plan);
        match &sunk {
            PhysPlan::Union { inputs } => {
                assert!(inputs.iter().all(|i| matches!(i, PhysPlan::Filter { .. })));
            }
            other => panic!("expected Union at root, got {}", other.pretty()),
        }
        let src = store();
        assert_eq!(
            execute(&plan, &src, &[]).unwrap(),
            execute(&sunk, &src, &[]).unwrap()
        );

        // A filter above an aggregate must not cross it.
        let agg = PhysPlan::Filter {
            input: Box::new(PhysPlan::HashAggregate {
                input: Box::new(scan(0)),
                group_by: vec![Col::new(RelId(0), 0)],
                aggs: vec![],
            }),
            predicates: vec![Predicate::with_const(
                Col::new(RelId(0), 0),
                CompOp::Gt,
                1i64,
            )],
        };
        let sunk = sink_predicates(&agg);
        assert!(matches!(sunk, PhysPlan::Filter { .. }));
        assert_eq!(
            execute(&agg, &store(), &[]).unwrap(),
            execute(&sunk, &store(), &[]).unwrap()
        );
    }
}
