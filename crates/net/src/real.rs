//! Thread-per-node execution of the same protocol handlers the simulator
//! runs — real cores, real channels, optionally real sockets.
//!
//! The simulator stays the deterministic oracle (virtual time, fault
//! injection, reproducible figures); this runtime answers the question the
//! simulator cannot: what does the protocol do on actual parallel hardware?
//! Handlers are reused *unchanged* — they only ever talk to [`Ctx`], so the
//! runtime swap is invisible to protocol code. The conformance suite in
//! `qt-core` asserts both runtimes produce bit-identical plans, cost bits,
//! and offer ids from the same seeds.
//!
//! Two transports, selected by [`RealTransport`]:
//!
//! * **Threads** — one OS thread per node, bounded `std::sync::mpsc`
//!   channels between them. Sends that find a full channel block (after
//!   bumping [`Metrics::send_backpressure`]), so a slow node throttles its
//!   producers instead of ballooning memory.
//! * **Tcp** — the same thread-per-node loop, but inter-node messages are
//!   encoded with the [`qt_trade::wire`] codec and carried over loopback
//!   `std::net::TcpStream`s in length-prefixed frames. This exercises the
//!   full serialize/deserialize path and measures real frame sizes.
//!
//! Timers (`Ctx::schedule`) become deadline entries in a per-node heap,
//! fired only when the node's channel is momentarily idle — mirroring the
//! simulator's rule that a same-instant flush timer runs after the messages
//! that scheduled it. Time is wall-clock seconds since run start, so
//! `ctx.now()` is monotone per node but *not* globally synchronized; the
//! protocol only uses it for timestamps and timeouts, never for ordering.
//!
//! Shutdown is cooperative: when the root node's handler satisfies the
//! caller's `done` predicate, the runtime broadcasts a shutdown marker.
//! Channels are FIFO, so every protocol message the root sent beforehand
//! (awards, releases) is delivered before its recipient stops. All threads
//! are joined before [`RealRuntime::run`] returns — no detached workers.

use crate::metrics::Metrics;
use crate::runtime::{Ctx, Handler};
use qt_catalog::NodeId;
use qt_trade::wire::{put_f64, put_str, put_u32, put_u8, Reader, Wire, WireError};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::io::{BufWriter, Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

/// How inter-node messages travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RealTransport {
    /// Bounded in-process channels; messages move by ownership transfer.
    /// Frame sizes are still measured (encode-and-discard) so byte
    /// accounting matches the socket path.
    #[default]
    Threads,
    /// Loopback TCP sockets; messages round-trip through the wire codec.
    Tcp,
}

/// Tuning knobs for a real-transport run.
#[derive(Debug, Clone)]
pub struct RealConfig {
    /// Transport flavor.
    pub transport: RealTransport,
    /// Per-node channel capacity before senders block.
    pub channel_capacity: usize,
    /// Wall seconds per protocol second, applied to timer delays and
    /// injection times. `1.0` means a 30 s protocol timeout is a real 30 s
    /// deadline (which fault-free runs never reach — rounds close when all
    /// sellers answer).
    pub time_scale: f64,
}

impl Default for RealConfig {
    fn default() -> Self {
        RealConfig {
            transport: RealTransport::Threads,
            channel_capacity: 1024,
            time_scale: 1.0,
        }
    }
}

/// What a finished run returns: every handler back by value (the drivers
/// read plans and engine state out of them), merged metrics, and the
/// wall-clock duration.
pub struct RealOutcome<H> {
    /// Handlers in registration order, with their node ids.
    pub handlers: Vec<(NodeId, H)>,
    /// Counters merged across all node threads.
    pub metrics: Metrics,
    /// Wall-clock seconds from first injection to full join.
    pub wall_seconds: f64,
}

enum Packet<M> {
    Msg {
        from: NodeId,
        msg: M,
        bytes: f64,
        kind: &'static str,
        lease: bool,
    },
    Shutdown,
}

struct TimerEntry<M> {
    at: Instant,
    seq: u64,
    msg: M,
    kind: &'static str,
}

impl<M> PartialEq for TimerEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for TimerEntry<M> {}
impl<M> PartialOrd for TimerEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for TimerEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The message kinds the protocol uses, for interning decoded kind labels
/// back to `&'static str` (metrics keys). Unknown kinds fall back to
/// `"other"` rather than leaking.
const KNOWN_KINDS: &[&str] = &[
    "start",
    "arrive",
    "rfb",
    "rfb-retry",
    "rfb-repair",
    "offers",
    "timeout",
    "flush",
    "negotiate",
    "award",
    "award-ack",
    "award-decline",
    "award-timeout",
    "lease",
    "lease-ack",
    "lease-tick",
    "release",
    "retrade-timeout",
];

fn intern_kind(s: &str) -> &'static str {
    KNOWN_KINDS
        .iter()
        .find(|k| **k == s)
        .copied()
        .unwrap_or("other")
}

/// Encoded frame size for one message: the transport's 4-byte length prefix
/// plus the header (from, flags, kind, sim-estimate bytes) plus the payload.
fn frame_len(kind: &str, payload_len: usize) -> u64 {
    (4 + 4 + 1 + 4 + kind.len() + 8 + payload_len) as u64
}

const FLAG_LEASE: u8 = 1;
const FLAG_SHUTDOWN: u8 = 2;

fn frame_from_payload(
    from: NodeId,
    payload: &[u8],
    bytes: f64,
    kind: &str,
    lease: bool,
) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + 4 + 1 + 4 + kind.len() + 8 + payload.len());
    put_u32(
        &mut frame,
        (4 + 1 + 4 + kind.len() + 8 + payload.len()) as u32,
    );
    put_u32(&mut frame, from.0);
    put_u8(&mut frame, if lease { FLAG_LEASE } else { 0 });
    put_str(&mut frame, kind);
    put_f64(&mut frame, bytes);
    frame.extend_from_slice(payload);
    frame
}

fn shutdown_frame(from: NodeId) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    put_u32(&mut body, from.0);
    put_u8(&mut body, FLAG_SHUTDOWN);
    put_str(&mut body, "shutdown");
    put_f64(&mut body, 0.0);
    let mut frame = Vec::with_capacity(4 + body.len());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

fn decode_frame<M: Wire>(body: &[u8]) -> Result<Packet<M>, WireError> {
    let mut r = Reader::new(body);
    let from = NodeId(r.u32()?);
    let flags = r.u8()?;
    let kind = intern_kind(&r.string()?);
    let bytes = r.f64()?;
    if flags & FLAG_SHUTDOWN != 0 {
        return Ok(Packet::Shutdown);
    }
    let msg = M::get(&mut r)?;
    r.finish()?;
    Ok(Packet::Msg {
        from,
        msg,
        bytes,
        kind,
        lease: flags & FLAG_LEASE != 0,
    })
}

/// Where a node's outgoing messages go.
enum Outbound<M> {
    Channel(BTreeMap<NodeId, SyncSender<Packet<M>>>),
    Socket(BTreeMap<NodeId, BufWriter<TcpStream>>),
}

/// Thread-per-node runtime. Mirrors the [`Simulator`](crate::Simulator)
/// builder surface: `add_node`, `inject`, then `run` with a root node and a
/// completion predicate evaluated on the root's handler after every message
/// it processes.
pub struct RealRuntime<M, H> {
    config: RealConfig,
    nodes: Vec<(NodeId, H)>,
    injections: Vec<(f64, NodeId, NodeId, M, &'static str)>,
}

impl<M, H> RealRuntime<M, H>
where
    M: Wire + Send,
    H: Handler<M> + Send,
{
    /// New runtime with the given transport configuration.
    pub fn new(config: RealConfig) -> Self {
        RealRuntime {
            config,
            nodes: Vec::new(),
            injections: Vec::new(),
        }
    }

    /// Register `handler` as node `id`.
    pub fn add_node(&mut self, id: NodeId, handler: H) {
        self.nodes.push((id, handler));
    }

    /// Inject an external message to `to` at `at` seconds after run start
    /// (scaled by `time_scale`). Injections are delivered in `(at, order)`
    /// sequence and, like the simulator's, carry no payload bytes.
    pub fn inject(&mut self, at: f64, from: NodeId, to: NodeId, msg: M, kind: &'static str) {
        self.injections.push((at, from, to, msg, kind));
    }

    /// Run to completion: spawn one thread per node, deliver injections,
    /// and stop once `done(root's handler)` holds after a message on the
    /// root node. Joins every thread before returning.
    ///
    /// Panics if `root` was not registered or (Tcp mode) if loopback
    /// sockets cannot be set up — environment failures, not protocol ones.
    pub fn run<F>(self, root: NodeId, done: F) -> RealOutcome<H>
    where
        F: Fn(&H) -> bool + Sync,
    {
        assert!(
            self.nodes.iter().any(|(id, _)| *id == root),
            "root node {root:?} not registered"
        );
        let RealRuntime {
            config,
            nodes,
            mut injections,
        } = self;
        injections.sort_by(|a, b| a.0.total_cmp(&b.0));
        let ids: Vec<NodeId> = nodes.iter().map(|(id, _)| *id).collect();

        // One bounded channel per node. Every worker (and the injector)
        // holds clones of all senders; in Tcp mode the cross-node senders
        // are only used by frame-reader threads feeding the local loop.
        let mut senders: BTreeMap<NodeId, SyncSender<Packet<M>>> = BTreeMap::new();
        let mut receivers: BTreeMap<NodeId, Receiver<Packet<M>>> = BTreeMap::new();
        for id in &ids {
            let (tx, rx) = std::sync::mpsc::sync_channel(config.channel_capacity.max(1));
            senders.insert(*id, tx);
            receivers.insert(*id, rx);
        }

        // Tcp mode: bind one loopback listener per node and fully connect
        // the mesh up front (connect() succeeds against a listen backlog
        // even before the accept side runs).
        let mut listeners: BTreeMap<NodeId, TcpListener> = BTreeMap::new();
        let mut out_streams: BTreeMap<NodeId, BTreeMap<NodeId, BufWriter<TcpStream>>> =
            BTreeMap::new();
        if config.transport == RealTransport::Tcp {
            let mut addrs: BTreeMap<NodeId, SocketAddr> = BTreeMap::new();
            for id in &ids {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
                addrs.insert(*id, l.local_addr().expect("listener addr"));
                listeners.insert(*id, l);
            }
            for id in &ids {
                let mut outs = BTreeMap::new();
                for peer in &ids {
                    if peer == id {
                        continue;
                    }
                    let s = TcpStream::connect(addrs[peer]).expect("connect loopback peer");
                    s.set_nodelay(true).ok();
                    outs.insert(*peer, BufWriter::new(s));
                }
                out_streams.insert(*id, outs);
            }
        }

        let start = Instant::now();
        let time_scale = config.time_scale.max(1e-9);
        let done_ref = &done;

        let mut outcome_handlers: Vec<(NodeId, H)> = Vec::with_capacity(nodes.len());
        let mut metrics = Metrics::default();

        std::thread::scope(|scope| {
            // Frame readers (Tcp): each node accepts n-1 inbound streams;
            // every stream gets a reader thread that decodes frames into
            // the node's local channel. Readers exit on EOF (peers drop
            // their write ends at shutdown) or when the channel closes.
            if config.transport == RealTransport::Tcp {
                for (id, listener) in &listeners {
                    for _ in 0..ids.len() - 1 {
                        let (stream, _) = listener.accept().expect("accept loopback peer");
                        stream.set_nodelay(true).ok();
                        let tx = senders[id].clone();
                        scope.spawn(move || read_frames::<M>(stream, tx));
                    }
                }
            }

            // The injector thread paces external arrivals on the scaled
            // clock and then drops its sender clones.
            {
                let senders = senders.clone();
                scope.spawn(move || {
                    for (at, from, to, msg, kind) in injections {
                        let due = start + Duration::from_secs_f64(at.max(0.0) * time_scale);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        if let Some(tx) = senders.get(&to) {
                            // A closed channel here means the run finished
                            // before this arrival; nothing to deliver to.
                            let _ = tx.send(Packet::Msg {
                                from,
                                msg,
                                bytes: 0.0,
                                kind,
                                lease: false,
                            });
                        }
                    }
                });
            }

            let mut joins = Vec::with_capacity(nodes.len());
            for (id, handler) in nodes {
                let rx = receivers.remove(&id).expect("receiver for node");
                let outbound = match config.transport {
                    RealTransport::Threads => Outbound::Channel(senders.clone()),
                    // Remote sends go over the sockets; self-sends always
                    // use the local channel (`self_tx`).
                    RealTransport::Tcp => {
                        Outbound::Socket(out_streams.remove(&id).unwrap_or_default())
                    }
                };
                let self_tx = senders[&id].clone();
                let is_root = id == root;
                joins.push((
                    id,
                    scope.spawn(move || {
                        node_loop(
                            id,
                            handler,
                            rx,
                            outbound,
                            self_tx,
                            start,
                            time_scale,
                            is_root.then_some(done_ref),
                        )
                    }),
                ));
            }
            // The main thread's sender clones must die or workers waiting
            // on `recv` would never observe disconnection after shutdown.
            drop(senders);

            for (id, j) in joins {
                let (h, m) = j.join().expect("node thread panicked");
                metrics.merge(&m);
                outcome_handlers.push((id, h));
            }
        });

        RealOutcome {
            handlers: outcome_handlers,
            metrics,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// Read length-prefixed frames off one TCP stream into a node's channel.
fn read_frames<M: Wire>(mut stream: TcpStream, tx: SyncSender<Packet<M>>) {
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            return; // EOF: peer shut down.
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        match decode_frame::<M>(&body) {
            Ok(pkt) => {
                let is_shutdown = matches!(pkt, Packet::Shutdown);
                if tx.send(pkt).is_err() || is_shutdown {
                    return;
                }
            }
            // A malformed frame on loopback means a codec bug; drop the
            // connection rather than feeding the handler garbage.
            Err(_) => return,
        }
    }
}

/// One node's event loop: channel messages first, due timers when the
/// channel is momentarily idle, block until the next deadline otherwise.
#[allow(clippy::too_many_arguments)]
fn node_loop<M, H, F>(
    id: NodeId,
    mut handler: H,
    rx: Receiver<Packet<M>>,
    mut outbound: Outbound<M>,
    self_tx: SyncSender<Packet<M>>,
    start: Instant,
    time_scale: f64,
    root_done: Option<&F>,
) -> (H, Metrics)
where
    M: Wire + Send,
    H: Handler<M>,
    F: Fn(&H) -> bool,
{
    let mut metrics = Metrics::default();
    let mut timers: BinaryHeap<Reverse<TimerEntry<M>>> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let long_wait = Duration::from_secs(3600);

    loop {
        // 1. Drain immediately-available channel traffic.
        let pkt = match rx.try_recv() {
            Ok(p) => Some(p),
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => break,
        };
        let (from, msg, bytes, kind, lease, timer) = match pkt {
            Some(Packet::Shutdown) => break,
            Some(Packet::Msg {
                from,
                msg,
                bytes,
                kind,
                lease,
            }) => (from, msg, bytes, kind, lease, false),
            None => {
                // 2. Channel idle: fire a due timer, else block until the
                //    next deadline or the next message.
                let now = Instant::now();
                let due = timers.peek().is_some_and(|Reverse(t)| t.at <= now);
                if due {
                    let Reverse(t) = timers.pop().expect("peeked timer");
                    (id, t.msg, 0.0, t.kind, false, true)
                } else {
                    let wait = timers
                        .peek()
                        .map(|Reverse(t)| t.at.saturating_duration_since(now))
                        .unwrap_or(long_wait);
                    match rx.recv_timeout(wait) {
                        Ok(Packet::Shutdown) => break,
                        Ok(Packet::Msg {
                            from,
                            msg,
                            bytes,
                            kind,
                            lease,
                        }) => (from, msg, bytes, kind, lease, false),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };

        metrics.events += 1;
        if timer {
            metrics.record_timer(kind);
        } else if lease {
            metrics.record_lease(kind);
        } else {
            metrics.record_message(kind, bytes);
        }

        let now_secs = start.elapsed().as_secs_f64() / time_scale;
        let mut ctx = Ctx::new(now_secs, id);
        handler.on_message(&mut ctx, from, msg);
        metrics.compute_seconds += ctx.compute_charged();

        for out in ctx.take_outbox() {
            if out.timer {
                timer_seq += 1;
                timers.push(Reverse(TimerEntry {
                    at: Instant::now()
                        + Duration::from_secs_f64((out.extra_delay * time_scale).max(0.0)),
                    seq: timer_seq,
                    msg: out.msg,
                    kind: out.kind,
                }));
                continue;
            }
            // Byte accounting: measure the actual encoded frame on every
            // send, whichever transport carries it.
            let payload = out.msg.encode();
            metrics.wire_bytes += frame_len(out.kind, payload.len());
            if out.to == id {
                // Self-send through the local channel keeps FIFO order
                // with inbound traffic.
                send_with_backpressure(
                    &self_tx,
                    Packet::Msg {
                        from: id,
                        msg: out.msg,
                        bytes: out.bytes,
                        kind: out.kind,
                        lease: out.lease,
                    },
                    &mut metrics,
                );
                continue;
            }
            match &mut outbound {
                Outbound::Channel(senders) => match senders.get(&out.to) {
                    Some(tx) => send_with_backpressure(
                        tx,
                        Packet::Msg {
                            from: id,
                            msg: out.msg,
                            bytes: out.bytes,
                            kind: out.kind,
                            lease: out.lease,
                        },
                        &mut metrics,
                    ),
                    None => metrics.record_drop("unroutable"),
                },
                Outbound::Socket(streams) => match streams.get_mut(&out.to) {
                    Some(w) => {
                        let frame =
                            frame_from_payload(id, &payload, out.bytes, out.kind, out.lease);
                        if w.write_all(&frame).and_then(|_| w.flush()).is_err() {
                            metrics.record_drop("closed");
                        }
                    }
                    None => metrics.record_drop("unroutable"),
                },
            }
        }

        if let Some(done) = root_done {
            if done(&handler) {
                match &mut outbound {
                    Outbound::Channel(senders) => {
                        for (to, tx) in senders.iter() {
                            if *to != id {
                                let _ = tx.send(Packet::Shutdown);
                            }
                        }
                    }
                    Outbound::Socket(streams) => {
                        let frame = shutdown_frame(id);
                        for (_, w) in streams.iter_mut() {
                            let _ = w.write_all(&frame).and_then(|_| w.flush());
                        }
                    }
                }
                break;
            }
        }
    }
    (handler, metrics)
}

fn send_with_backpressure<M>(tx: &SyncSender<Packet<M>>, pkt: Packet<M>, metrics: &mut Metrics) {
    match tx.try_send(pkt) {
        Ok(()) => {}
        Err(TrySendError::Full(pkt)) => {
            metrics.send_backpressure += 1;
            if tx.send(pkt).is_err() {
                metrics.record_drop("closed");
            }
        }
        Err(TrySendError::Disconnected(_)) => metrics.record_drop("closed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    impl Wire for Msg {
        fn put(&self, out: &mut Vec<u8>) {
            match self {
                Msg::Ping(i) => {
                    put_u8(out, 0);
                    put_u32(out, *i);
                }
                Msg::Pong(i) => {
                    put_u8(out, 1);
                    put_u32(out, *i);
                }
                Msg::Tick => put_u8(out, 2),
            }
        }
        fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(match r.u8()? {
                0 => Msg::Ping(r.u32()?),
                1 => Msg::Pong(r.u32()?),
                2 => Msg::Tick,
                t => return Err(WireError::BadTag("Msg", t)),
            })
        }
    }

    fn ping_all(transport: RealTransport) {
        // Probe on node 0 fans a ping out to 4 echo nodes and completes
        // when all pongs are back.
        struct Fan {
            peers: Vec<NodeId>,
            got: Vec<u32>,
        }
        enum N {
            Fan(Fan),
            Echo,
        }
        impl Handler<Msg> for N {
            fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
                match (self, msg) {
                    (N::Fan(f), Msg::Tick) => {
                        for p in &f.peers {
                            ctx.send(*p, Msg::Ping(p.0), 32.0, "rfb");
                        }
                    }
                    (N::Fan(f), Msg::Pong(i)) => f.got.push(i),
                    (N::Echo, Msg::Ping(i)) => {
                        ctx.charge_compute(1e-6);
                        ctx.send(from, Msg::Pong(i), 64.0, "offers")
                    }
                    _ => {}
                }
            }
        }
        let mut rt: RealRuntime<Msg, N> = RealRuntime::new(RealConfig {
            transport,
            ..RealConfig::default()
        });
        let peers: Vec<NodeId> = (1..=4).map(NodeId).collect();
        rt.add_node(
            NodeId(0),
            N::Fan(Fan {
                peers: peers.clone(),
                got: vec![],
            }),
        );
        for p in &peers {
            rt.add_node(*p, N::Echo);
        }
        rt.inject(0.0, NodeId(0), NodeId(0), Msg::Tick, "start");
        let out = rt.run(NodeId(0), |n| matches!(n, N::Fan(f) if f.got.len() == 4));
        let (_, root) = out
            .handlers
            .iter()
            .find(|(id, _)| *id == NodeId(0))
            .unwrap();
        let N::Fan(f) = root else { panic!("root kept") };
        let mut got = f.got.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4]);
        // 1 start injection + 4 pings + 4 pongs.
        assert_eq!(out.metrics.messages, 9);
        assert_eq!(out.metrics.kind_count("rfb"), 4);
        assert_eq!(out.metrics.kind_count("offers"), 4);
        // Sim-estimate bytes accumulate; wire bytes were measured too.
        assert_eq!(out.metrics.bytes, 4.0 * 32.0 + 4.0 * 64.0);
        assert!(out.metrics.wire_bytes > 0);
        assert!(out.wall_seconds >= 0.0);
    }

    #[test]
    fn threads_fan_out_and_join() {
        ping_all(RealTransport::Threads);
    }

    #[test]
    fn tcp_fan_out_and_join() {
        ping_all(RealTransport::Tcp);
    }

    #[test]
    fn timers_fire_when_channel_is_idle() {
        struct T {
            fired: bool,
        }
        impl Handler<Msg> for T {
            fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: NodeId, msg: Msg) {
                match msg {
                    Msg::Ping(_) => ctx.schedule(0.0, Msg::Tick, "flush"),
                    Msg::Tick => self.fired = true,
                    _ => {}
                }
            }
        }
        let mut rt: RealRuntime<Msg, T> = RealRuntime::new(RealConfig::default());
        rt.add_node(NodeId(0), T { fired: false });
        rt.inject(0.0, NodeId(0), NodeId(0), Msg::Ping(1), "start");
        let out = rt.run(NodeId(0), |t| t.fired);
        assert!(out.handlers[0].1.fired);
        assert_eq!(out.metrics.timer_events, 1);
        assert_eq!(out.metrics.kind_count("flush"), 1);
    }

    #[test]
    fn frame_roundtrip_and_garbage() {
        let f = frame_from_payload(NodeId(3), &Msg::Ping(9).encode(), 256.0, "rfb", false);
        let body = &f[4..];
        let Ok(Packet::Msg {
            from,
            msg,
            bytes,
            kind,
            lease,
        }) = decode_frame::<Msg>(body)
        else {
            panic!("frame decodes");
        };
        assert_eq!(from, NodeId(3));
        assert_eq!(msg, Msg::Ping(9));
        assert_eq!(bytes, 256.0);
        assert_eq!(kind, "rfb");
        assert!(!lease);
        // Shutdown frames decode without a payload.
        let s = shutdown_frame(NodeId(1));
        assert!(matches!(decode_frame::<Msg>(&s[4..]), Ok(Packet::Shutdown)));
        // Truncations and garbage error, never panic.
        for cut in 0..body.len() {
            assert!(decode_frame::<Msg>(&body[..cut]).is_err());
        }
        assert!(decode_frame::<Msg>(&[0xFF; 7]).is_err());
    }

    #[test]
    fn unknown_kind_interns_to_other() {
        assert_eq!(intern_kind("rfb"), "rfb");
        assert_eq!(intern_kind("mystery"), "other");
    }
}
