//! Deterministic discrete-event simulation of a federation of autonomous
//! nodes.
//!
//! The paper evaluates QT on a simulated network; this crate is that
//! substrate. Design goals, in order:
//!
//! 1. **Determinism** — identical inputs produce identical virtual
//!    timestamps and message counts on every run and platform. Experiments
//!    plot optimization *time*; host-scheduling noise would make the figures
//!    unreproducible. (This is why the simulator is a single-threaded event
//!    loop rather than a tokio runtime; see DESIGN.md, substitution 1.)
//! 2. **Autonomy by construction** — node handlers receive only their own
//!    state and messages; there is no shared-memory backdoor.
//! 3. **Cost accounting** — every message is charged latency + size/bandwidth
//!    on its link; every handler can charge virtual compute time, which
//!    serializes on its node.
//!
//! The simulator is generic over the protocol message type `M`; the QT
//! protocol itself lives in `qt-core`.
//!
//! Next to the simulator sits [`real`]: a thread-per-node runtime (bounded
//! channels or loopback TCP) that executes the *same* [`Handler`]s on real
//! cores for honest wall-clock numbers, with the simulator kept as the
//! conformance oracle.

pub mod fault;
pub mod metrics;
pub mod real;
pub mod runtime;
pub mod sim;
pub mod topology;

pub use fault::{CrashWindow, FaultPlan, Partition};
pub use metrics::Metrics;
pub use real::{RealConfig, RealOutcome, RealRuntime, RealTransport};
pub use runtime::{Ctx, Handler};
pub use sim::Simulator;
pub use topology::Topology;
