//! Simulation metrics: the raw material of the messages/time figures.

use std::collections::BTreeMap;

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Network messages delivered. Local timers scheduled via
    /// `Ctx::schedule` are *not* messages — they count separately in
    /// `timer_events` so the paper's message figures stay honest.
    pub messages: u64,
    /// Total payload bytes transferred (delivered messages only).
    pub bytes: f64,
    /// Events per protocol kind (the `kind` label passed to `Ctx::send` /
    /// `Ctx::schedule`; timers appear here under their own kinds).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Total virtual compute seconds charged, across all nodes.
    pub compute_seconds: f64,
    /// Events processed (delivered messages, self-sends, and timers).
    pub events: u64,
    /// Timer firings (`Ctx::schedule` self-deliveries) — excluded from
    /// `messages`/`bytes`.
    pub timer_events: u64,
    /// Messages lost to fault injection or to unroutable recipients.
    pub dropped: u64,
    /// Dropped messages per cause (`"loss"`, `"crash"`, `"partition"`,
    /// `"unroutable"`).
    pub dropped_by_cause: BTreeMap<&'static str, u64>,
    /// Messages delivered twice by fault-injected duplication.
    pub duplicated: u64,
    /// RFB retransmissions the buyer sent after a response deadline expired
    /// (filled by the QT driver after the run).
    pub retries: u64,
    /// Response deadlines that fired with sellers still unheard-from
    /// (filled by the QT driver after the run).
    pub timeouts: u64,
    /// Trading rounds the buyer closed without hearing from every seller
    /// (filled by the QT driver after the run).
    pub degraded_rounds: u64,
    /// Seller offer-cache hits across all nodes (RFB items answered from the
    /// memoized reply instead of re-running the local DP).
    pub offer_cache_hits: u64,
    /// Seller offer-cache misses across all nodes.
    pub offer_cache_misses: u64,
    /// Lease heartbeats and their acknowledgments delivered
    /// (`Ctx::send_lease`) — control-plane chatter excluded from
    /// `messages`/`bytes`, mirroring the `timer_events` split.
    pub lease_events: u64,
    /// Award messages sent (initial awards, retransmissions, and re-awards;
    /// filled by the QT driver after the run).
    pub awards_sent: u64,
    /// Award retransmissions after an unanswered ack deadline (filled by the
    /// QT driver after the run).
    pub award_retries: u64,
    /// Awards whose ack never arrived within the retry budget (filled by the
    /// QT driver after the run).
    pub lost_awards: u64,
    /// Execution leases that expired after consecutive missed renewals
    /// (filled by the QT driver after the run).
    pub lease_expiries: u64,
    /// Contracts re-awarded to a runner-up offer from the bid book (filled
    /// by the QT driver after the run).
    pub reawards: u64,
    /// Actual encoded frame bytes put on the wire by the real transport
    /// (send side, including frame headers). Zero under the simulator, whose
    /// `bytes` are hand-estimated message sizes — the
    /// `wire_bytes_vs_sim_estimate` bench ratio audits the two against each
    /// other.
    pub wire_bytes: u64,
    /// Sends that found a bounded channel full and had to block (real
    /// transport backpressure; zero under the simulator).
    pub send_backpressure: u64,
}

impl Metrics {
    /// Record one delivered message.
    pub fn record_message(&mut self, kind: &'static str, bytes: f64) {
        self.messages += 1;
        self.bytes += bytes;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Record one timer firing (no link, no bytes, not a message).
    pub fn record_timer(&mut self, kind: &'static str) {
        self.timer_events += 1;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Record one delivered lease heartbeat/ack (a real network event, but
    /// control-plane: excluded from `messages`/`bytes`).
    pub fn record_lease(&mut self, kind: &'static str) {
        self.lease_events += 1;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Record one lost message and its cause.
    pub fn record_drop(&mut self, cause: &'static str) {
        self.dropped += 1;
        *self.dropped_by_cause.entry(cause).or_insert(0) += 1;
    }

    /// Messages of one kind.
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Fold another node's counters into this one (the real transport keeps
    /// per-thread metrics and merges them after join).
    pub fn merge(&mut self, other: &Metrics) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        for (k, v) in &other.by_kind {
            *self.by_kind.entry(k).or_insert(0) += v;
        }
        self.compute_seconds += other.compute_seconds;
        self.events += other.events;
        self.timer_events += other.timer_events;
        self.dropped += other.dropped;
        for (k, v) in &other.dropped_by_cause {
            *self.dropped_by_cause.entry(k).or_insert(0) += v;
        }
        self.duplicated += other.duplicated;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.degraded_rounds += other.degraded_rounds;
        self.offer_cache_hits += other.offer_cache_hits;
        self.offer_cache_misses += other.offer_cache_misses;
        self.lease_events += other.lease_events;
        self.awards_sent += other.awards_sent;
        self.award_retries += other.award_retries;
        self.lost_awards += other.lost_awards;
        self.lease_expiries += other.lease_expiries;
        self.reawards += other.reawards;
        self.wire_bytes += other.wire_bytes;
        self.send_backpressure += other.send_backpressure;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut m = Metrics::default();
        m.record_message("rfb", 100.0);
        m.record_message("rfb", 50.0);
        m.record_message("offer", 10.0);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes, 160.0);
        assert_eq!(m.kind_count("rfb"), 2);
        assert_eq!(m.kind_count("offer"), 1);
        assert_eq!(m.kind_count("nope"), 0);
    }

    #[test]
    fn timers_are_not_messages() {
        let mut m = Metrics::default();
        m.record_message("rfb", 100.0);
        m.record_timer("timeout");
        m.record_timer("timeout");
        assert_eq!(m.messages, 1, "timers must not inflate message counts");
        assert_eq!(m.bytes, 100.0);
        assert_eq!(m.timer_events, 2);
        assert_eq!(m.kind_count("timeout"), 2, "timers still visible by kind");
    }

    #[test]
    fn leases_are_not_messages() {
        let mut m = Metrics::default();
        m.record_message("award", 128.0);
        m.record_lease("lease");
        m.record_lease("lease-ack");
        assert_eq!(m.messages, 1, "leases must not inflate message counts");
        assert_eq!(m.bytes, 128.0);
        assert_eq!(m.lease_events, 2);
        assert_eq!(m.kind_count("lease"), 1, "leases still visible by kind");
    }

    #[test]
    fn merge_folds_all_counters() {
        let mut a = Metrics::default();
        a.record_message("rfb", 100.0);
        a.record_timer("timeout");
        a.wire_bytes = 180;
        let mut b = Metrics::default();
        b.record_message("offers", 50.0);
        b.record_message("rfb", 25.0);
        b.record_drop("loss");
        b.send_backpressure = 2;
        b.wire_bytes = 90;
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 175.0);
        assert_eq!(a.kind_count("rfb"), 2);
        assert_eq!(a.kind_count("offers"), 1);
        assert_eq!(a.timer_events, 1);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.wire_bytes, 270);
        assert_eq!(a.send_backpressure, 2);
    }

    #[test]
    fn drops_track_causes() {
        let mut m = Metrics::default();
        m.record_drop("loss");
        m.record_drop("loss");
        m.record_drop("crash");
        assert_eq!(m.dropped, 3);
        assert_eq!(m.dropped_by_cause["loss"], 2);
        assert_eq!(m.dropped_by_cause["crash"], 1);
        assert_eq!(m.messages, 0);
    }
}
