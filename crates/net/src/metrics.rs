//! Simulation metrics: the raw material of the messages/time figures.

use std::collections::BTreeMap;

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Total messages delivered.
    pub messages: u64,
    /// Total payload bytes transferred.
    pub bytes: f64,
    /// Messages per protocol kind (the `kind` label passed to `Ctx::send`).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Total virtual compute seconds charged, across all nodes.
    pub compute_seconds: f64,
    /// Events processed (delivered messages, including self-sends).
    pub events: u64,
    /// Seller offer-cache hits across all nodes (RFB items answered from the
    /// memoized reply instead of re-running the local DP).
    pub offer_cache_hits: u64,
    /// Seller offer-cache misses across all nodes.
    pub offer_cache_misses: u64,
}

impl Metrics {
    /// Record one delivered message.
    pub fn record_message(&mut self, kind: &'static str, bytes: f64) {
        self.messages += 1;
        self.bytes += bytes;
        *self.by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Messages of one kind.
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut m = Metrics::default();
        m.record_message("rfb", 100.0);
        m.record_message("rfb", 50.0);
        m.record_message("offer", 10.0);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes, 160.0);
        assert_eq!(m.kind_count("rfb"), 2);
        assert_eq!(m.kind_count("offer"), 1);
        assert_eq!(m.kind_count("nope"), 0);
    }
}
