//! The event loop.

use crate::fault::FaultPlan;
use crate::metrics::Metrics;
use crate::topology::Topology;
// `Ctx` and `Handler` live in [`crate::runtime`], shared with the real
// transport; re-exported here so historical `qt_net::sim::{Ctx, Handler}`
// paths keep working.
pub use crate::runtime::{Ctx, Handler};
use qt_catalog::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Event<M> {
    time: f64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
    bytes: f64,
    kind: &'static str,
    timer: bool,
    lease: bool,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversal at the call site; tie-break on sequence
        // number for full determinism.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The discrete-event simulator.
///
/// ```
/// use qt_catalog::NodeId;
/// use qt_cost::NetLink;
/// use qt_net::{Ctx, Handler, Simulator, Topology};
///
/// struct Echo;
/// struct Probe { reply_at: Option<f64> }
///
/// #[derive(Clone)]
/// enum Msg { Ping, Pong }
/// # // One handler type per simulator; dispatch on node role.
/// enum Node { Echo(Echo), Probe(Probe) }
///
/// impl Handler<Msg> for Node {
///     fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
///         match (self, msg) {
///             (Node::Echo(_), Msg::Ping) => {
///                 ctx.charge_compute(0.5);                  // half a second of work
///                 ctx.send(from, Msg::Pong, 1_000.0, "pong"); // 1 KB reply
///             }
///             (Node::Probe(p), Msg::Pong) => p.reply_at = Some(ctx.now()),
///             _ => {}
///         }
///     }
/// }
///
/// let mut sim: Simulator<Msg, Node> =
///     Simulator::new(Topology::Uniform(NetLink { latency: 0.1, bandwidth: 10_000.0 }));
/// sim.add_node(NodeId(0), Node::Probe(Probe { reply_at: None }));
/// sim.add_node(NodeId(1), Node::Echo(Echo));
/// sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping, "ping");
/// sim.run(100);
///
/// // ping at t=0, 0.5 s compute, then 0.1 s latency + 0.1 s transfer.
/// let Node::Probe(p) = sim.handler(NodeId(0)).unwrap() else { unreachable!() };
/// assert!((p.reply_at.unwrap() - 0.7).abs() < 1e-9);
/// assert_eq!(sim.metrics.kind_count("pong"), 1);
/// ```
pub struct Simulator<M, H: Handler<M>> {
    // Node ids are dense small integers (federation nodes are numbered
    // 0..N), so per-node state lives in flat vectors indexed by `NodeId.0`
    // rather than tree maps: the busy-until check and the handler fetch sit
    // on the per-event hot path, and with thousands of interleaved session
    // events flowing through the heap the O(log n) pointer-chasing lookups
    // were measurable.
    handlers: Vec<Option<H>>,
    queue: BinaryHeap<std::cmp::Reverse<Event<M>>>,
    topology: Topology,
    time: f64,
    seq: u64,
    busy_until: Vec<f64>,
    fault: Option<FaultPlan>,
    /// Accumulated metrics (public for the experiment harness).
    pub metrics: Metrics,
}

impl<M, H: Handler<M>> Simulator<M, H> {
    /// New simulator over `topology`.
    pub fn new(topology: Topology) -> Self {
        Simulator {
            handlers: Vec::new(),
            queue: BinaryHeap::new(),
            topology,
            time: 0.0,
            seq: 0,
            busy_until: Vec::new(),
            fault: None,
            metrics: Metrics::default(),
        }
    }

    /// Builder-style fault plan attachment.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Attach a [`FaultPlan`]. An inert plan (the default) is dropped so
    /// that fault-free runs take the exact code path they always did.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = if plan.is_inert() { None } else { Some(plan) };
    }

    /// The attached fault plan, if a non-inert one was set.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Register `handler` as node `id`.
    pub fn add_node(&mut self, id: NodeId, handler: H) {
        let idx = id.0 as usize;
        if idx >= self.handlers.len() {
            self.handlers.resize_with(idx + 1, || None);
            self.busy_until.resize(idx + 1, 0.0);
        }
        self.handlers[idx] = Some(handler);
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Borrow a node's handler (to read results out after the run).
    pub fn handler(&self, id: NodeId) -> Option<&H> {
        self.handlers.get(id.0 as usize).and_then(|h| h.as_ref())
    }

    /// Mutably borrow a node's handler (test instrumentation).
    pub fn handler_mut(&mut self, id: NodeId) -> Option<&mut H> {
        self.handlers
            .get_mut(id.0 as usize)
            .and_then(|h| h.as_mut())
    }

    /// Inject an external message to `to` at absolute virtual time `at`
    /// (e.g. the user's query arriving at the buyer).
    pub fn inject(&mut self, at: f64, from: NodeId, to: NodeId, msg: M, kind: &'static str) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(std::cmp::Reverse(Event {
            time: at,
            seq,
            from,
            to,
            msg,
            bytes: 0.0,
            kind,
            timer: false,
            lease: false,
        }));
    }

    /// Run until the event queue drains or `max_events` deliveries happened.
    /// Returns the number of events delivered to handlers (deferred
    /// re-enqueues and faulted-away messages don't count).
    ///
    /// Messages to unregistered nodes are dropped (recorded under the
    /// `"unroutable"` cause in [`Metrics::dropped_by_cause`]) rather than
    /// panicking: with crash windows and partitions in play, a stray late
    /// message is part of the model, not a protocol bug.
    pub fn run(&mut self, max_events: u64) -> u64
    where
        M: Clone,
    {
        let mut processed = 0;
        while processed < max_events {
            let Some(std::cmp::Reverse(ev)) = self.queue.pop() else {
                break;
            };
            // A delivery deferred behind a busy node is re-enqueued at the
            // time the node frees up instead of executed now with a warped
            // clock: `self.time` (and every handler's `ctx.now()`) stays
            // monotone non-decreasing, and deliveries to *other* nodes in
            // the interim happen at their true virtual times. The original
            // sequence number rides along, so per-destination FIFO order is
            // preserved through the equal-time tie-break.
            let busy = self
                .busy_until
                .get(ev.to.0 as usize)
                .copied()
                .unwrap_or(0.0);
            if busy > ev.time {
                self.queue
                    .push(std::cmp::Reverse(Event { time: busy, ..ev }));
                continue;
            }
            let start = ev.time;
            self.time = start;

            // Fault plane: crashed recipients and severed links lose the
            // message at its arrival instant. Timers are local alarms and
            // always fire — the buyer's deadline chain must make progress
            // precisely when the network does not.
            if !ev.timer {
                if let Some(plan) = &self.fault {
                    if plan.down(ev.to, start) {
                        self.metrics.record_drop("crash");
                        continue;
                    }
                    if plan.severed(ev.from, ev.to, start) {
                        self.metrics.record_drop("partition");
                        continue;
                    }
                }
            }
            let Some(handler) = self
                .handlers
                .get_mut(ev.to.0 as usize)
                .and_then(|h| h.as_mut())
            else {
                self.metrics.record_drop("unroutable");
                continue;
            };

            processed += 1;
            self.metrics.events += 1;
            if ev.timer {
                self.metrics.record_timer(ev.kind);
            } else if ev.lease {
                self.metrics.record_lease(ev.kind);
            } else {
                self.metrics.record_message(ev.kind, ev.bytes);
            }

            let mut ctx = Ctx::new(start, ev.to);
            handler.on_message(&mut ctx, ev.from, ev.msg);

            self.metrics.compute_seconds += ctx.compute_charged();
            let done = start + ctx.compute_charged();
            self.busy_until[ev.to.0 as usize] = done;
            for out in ctx.take_outbox() {
                let link = self.topology.link(ev.to, out.to);
                let arrive = done + link.transfer_time(out.bytes) + out.extra_delay;
                let seq = self.seq;
                self.seq += 1;
                let mut time = arrive;
                if !out.timer {
                    if let Some(plan) = &self.fault {
                        // Transit faults roll per sequence number, once: a
                        // deferred re-enqueue never re-rolls its fate.
                        if plan.drops(seq) {
                            self.metrics.record_drop("loss");
                            continue;
                        }
                        if plan.duplicates(seq) {
                            // The duplicate is the only copy ever
                            // materialized: the original message below is
                            // moved, never cloned, so a fault plan costs
                            // nothing on sends whose duplication roll
                            // doesn't fire.
                            self.metrics.duplicated += 1;
                            let dup_seq = self.seq;
                            self.seq += 1;
                            self.queue.push(std::cmp::Reverse(Event {
                                time: arrive + plan.jitter_for(dup_seq),
                                seq: dup_seq,
                                from: ev.to,
                                to: out.to,
                                msg: out.msg.clone(),
                                bytes: out.bytes,
                                kind: out.kind,
                                timer: false,
                                lease: out.lease,
                            }));
                        }
                        time = arrive + plan.jitter_for(seq);
                    }
                }
                self.queue.push(std::cmp::Reverse(Event {
                    time,
                    seq,
                    from: ev.to,
                    to: out.to,
                    msg: out.msg,
                    bytes: out.bytes,
                    kind: out.kind,
                    timer: out.timer,
                    lease: out.lease,
                }));
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_cost::NetLink;

    /// Ping-pong: node 0 sends `n` pings; node 1 echoes each.
    #[derive(Debug, Clone)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        remaining: u32,
        received: Vec<u32>,
    }

    impl Handler<Msg> for Pinger {
        fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(i) => {
                    // Echo with some compute.
                    ctx.charge_compute(0.5);
                    ctx.send(NodeId(0), Msg::Pong(i), 100.0, "pong");
                }
                Msg::Pong(i) => {
                    self.received.push(i);
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.send(NodeId(1), Msg::Ping(i + 1), 100.0, "ping");
                    }
                }
            }
        }
    }

    fn build(n: u32) -> Simulator<Msg, Pinger> {
        let mut sim = Simulator::new(Topology::Uniform(NetLink {
            latency: 1.0,
            bandwidth: 100.0,
        }));
        sim.add_node(
            NodeId(0),
            Pinger {
                remaining: n,
                received: vec![],
            },
        );
        sim.add_node(
            NodeId(1),
            Pinger {
                remaining: 0,
                received: vec![],
            },
        );
        sim
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let mut sim = build(0);
        // Kick off: deliver Pong(0) to node 0 at t=0; it sends Ping(1)... no,
        // remaining=0 means it just records. Send a Ping to node 1 instead.
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.run(1000);
        // One echo: ping delivered t=0, compute 0.5, transfer 1 + 100/100=2
        // → pong arrives at 2.5.
        assert!((sim.now() - 2.5).abs() < 1e-9, "{}", sim.now());
        assert_eq!(sim.handler(NodeId(0)).unwrap().received, vec![0]);
        assert_eq!(sim.metrics.messages, 2);
        assert_eq!(sim.metrics.kind_count("pong"), 1);
        assert!((sim.metrics.compute_seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn repeated_rounds_accumulate_time_deterministically() {
        let mut a = build(3);
        a.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        a.run(1000);
        let mut b = build(3);
        b.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        b.run(1000);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.handler(NodeId(0)).unwrap().received, vec![0, 1, 2, 3]);
    }

    #[test]
    fn busy_node_serializes_processing() {
        // Two pings arrive at t=0; the echoes must be 0.5 apart because the
        // responder is sequential.
        struct Recorder {
            times: Vec<f64>,
        }
        struct Echo;
        #[derive(Clone)]
        enum M2 {
            Ping,
            Pong,
        }
        enum Either {
            E(Echo),
            R(Recorder),
        }
        impl Handler<M2> for Either {
            fn on_message(&mut self, ctx: &mut Ctx<M2>, from: NodeId, msg: M2) {
                match (self, msg) {
                    (Either::E(_), M2::Ping) => {
                        ctx.charge_compute(0.5);
                        ctx.send(from, M2::Pong, 0.0, "pong");
                    }
                    (Either::R(r), M2::Pong) => r.times.push(ctx.now()),
                    _ => {}
                }
            }
        }
        let mut sim: Simulator<M2, Either> = Simulator::new(Topology::Uniform(NetLink {
            latency: 0.0,
            bandwidth: f64::INFINITY,
        }));
        sim.add_node(NodeId(0), Either::R(Recorder { times: vec![] }));
        sim.add_node(NodeId(1), Either::E(Echo));
        sim.inject(0.0, NodeId(0), NodeId(1), M2::Ping, "ping");
        sim.inject(0.0, NodeId(0), NodeId(1), M2::Ping, "ping");
        sim.run(100);
        let Either::R(r) = sim.handler(NodeId(0)).unwrap() else {
            panic!()
        };
        assert_eq!(r.times.len(), 2);
        assert!((r.times[0] - 0.5).abs() < 1e-9);
        assert!((r.times[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_events_bounds_run() {
        let mut sim = build(1_000_000);
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        let processed = sim.run(10);
        assert_eq!(processed, 10);
    }

    #[test]
    fn scheduled_timers_fire_after_delay() {
        struct Timed {
            fired_at: Vec<f64>,
        }
        impl Handler<&'static str> for Timed {
            fn on_message(
                &mut self,
                ctx: &mut Ctx<&'static str>,
                _from: NodeId,
                msg: &'static str,
            ) {
                match msg {
                    "start" => ctx.schedule(5.0, "timer", "timer"),
                    "timer" => self.fired_at.push(ctx.now()),
                    _ => {}
                }
            }
        }
        let mut sim: Simulator<&'static str, Timed> = Simulator::new(Topology::default());
        sim.add_node(NodeId(0), Timed { fired_at: vec![] });
        sim.inject(0.0, NodeId(0), NodeId(0), "start", "start");
        sim.run(10);
        let t = &sim.handler(NodeId(0)).unwrap().fired_at;
        assert_eq!(t.len(), 1);
        assert!((t[0] - 5.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn self_send_is_instant() {
        struct SelfLoop {
            count: u32,
        }
        impl Handler<u32> for SelfLoop {
            fn on_message(&mut self, ctx: &mut Ctx<u32>, _from: NodeId, msg: u32) {
                self.count += 1;
                if msg > 0 {
                    ctx.send(ctx.node(), msg - 1, 1e9, "self");
                }
            }
        }
        let mut sim: Simulator<u32, SelfLoop> = Simulator::new(Topology::default());
        sim.add_node(NodeId(0), SelfLoop { count: 0 });
        sim.inject(0.0, NodeId(0), NodeId(0), 5, "self");
        sim.run(100);
        assert_eq!(sim.handler(NodeId(0)).unwrap().count, 6);
        assert_eq!(sim.now(), 0.0); // self-sends cost no time
    }

    /// Regression for the warped-clock bug: a delivery deferred behind a
    /// busy node used to execute immediately with `self.time` jumped forward
    /// past later-queued events, so `ctx.now()` went backwards and nodes saw
    /// deliveries out of virtual-time order.
    #[test]
    fn virtual_time_is_monotone_across_deferred_deliveries() {
        use std::cell::RefCell;
        use std::rc::Rc;
        #[derive(Clone)]
        struct Blip;
        struct Tracer {
            log: Rc<RefCell<Vec<(NodeId, f64)>>>,
            compute: f64,
        }
        impl Handler<Blip> for Tracer {
            fn on_message(&mut self, ctx: &mut Ctx<Blip>, _from: NodeId, _msg: Blip) {
                self.log.borrow_mut().push((ctx.node(), ctx.now()));
                ctx.charge_compute(self.compute);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulator<Blip, Tracer> = Simulator::new(Topology::default());
        sim.add_node(
            NodeId(1),
            Tracer {
                log: log.clone(),
                compute: 1.0,
            },
        );
        sim.add_node(
            NodeId(2),
            Tracer {
                log: log.clone(),
                compute: 0.0,
            },
        );
        // Two back-to-back blips pin node 1 busy until t=2.0; a blip to the
        // idle node 2 lands in between at t=0.5. Pre-fix, the deferred
        // second delivery to node 1 ran at t=1.0 *before* the t=0.5 one.
        sim.inject(0.0, NodeId(0), NodeId(1), Blip, "blip");
        sim.inject(0.0, NodeId(0), NodeId(1), Blip, "blip");
        sim.inject(0.5, NodeId(0), NodeId(2), Blip, "blip");
        sim.run(100);
        let log = log.borrow();
        let times: Vec<f64> = log.iter().map(|&(_, t)| t).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "handler clocks went backwards: {times:?}"
        );
        assert_eq!(
            *log,
            vec![(NodeId(1), 0.0), (NodeId(2), 0.5), (NodeId(1), 1.0)],
            "cross-node delivery order must respect virtual time"
        );
    }

    #[test]
    fn unregistered_recipient_is_a_drop_not_a_panic() {
        let mut sim = build(0);
        sim.inject(0.0, NodeId(0), NodeId(9), Msg::Ping(0), "ping");
        let processed = sim.run(100);
        assert_eq!(processed, 0);
        assert_eq!(sim.metrics.dropped, 1);
        assert_eq!(sim.metrics.dropped_by_cause["unroutable"], 1);
        assert_eq!(sim.metrics.messages, 0);
    }

    #[test]
    fn timers_count_separately_from_messages() {
        struct Timed;
        impl Handler<&'static str> for Timed {
            fn on_message(
                &mut self,
                ctx: &mut Ctx<&'static str>,
                _from: NodeId,
                msg: &'static str,
            ) {
                if msg == "start" {
                    ctx.schedule(5.0, "alarm", "alarm");
                }
            }
        }
        let mut sim: Simulator<&'static str, Timed> = Simulator::new(Topology::default());
        sim.add_node(NodeId(0), Timed);
        sim.inject(0.0, NodeId(0), NodeId(0), "start", "start");
        sim.run(10);
        // The injected "start" is a message; the scheduled "alarm" is not.
        assert_eq!(sim.metrics.messages, 1);
        assert_eq!(sim.metrics.timer_events, 1);
        assert_eq!(sim.metrics.kind_count("alarm"), 1);
        assert_eq!(sim.metrics.events, 2);
    }

    #[test]
    fn lease_traffic_counts_separately_but_still_faults() {
        struct Lessee;
        struct Lessor {
            acks: u32,
        }
        #[derive(Clone)]
        enum L {
            Beat,
            Ack,
        }
        enum N {
            Lessee(Lessee),
            Lessor(Lessor),
        }
        impl Handler<L> for N {
            fn on_message(&mut self, ctx: &mut Ctx<L>, from: NodeId, msg: L) {
                match (self, msg) {
                    (N::Lessee(_), L::Beat) => ctx.send_lease(from, L::Ack, "lease-ack"),
                    (N::Lessor(l), L::Ack) => l.acks += 1,
                    _ => {}
                }
            }
        }
        let build = || {
            let mut sim: Simulator<L, N> = Simulator::new(Topology::default());
            sim.add_node(NodeId(0), N::Lessor(Lessor { acks: 0 }));
            sim.add_node(NodeId(1), N::Lessee(Lessee));
            sim
        };
        // Healthy lessee: the heartbeat round-trips, nothing lands in the
        // data-message counters.
        let mut sim = build();
        sim.inject(0.0, NodeId(0), NodeId(1), L::Beat, "lease");
        sim.run(100);
        let N::Lessor(l) = sim.handler(NodeId(0)).unwrap() else {
            panic!()
        };
        assert_eq!(l.acks, 1);
        assert_eq!(sim.metrics.messages, 1, "only the injected beat counts");
        assert_eq!(sim.metrics.lease_events, 1);
        assert_eq!(sim.metrics.kind_count("lease-ack"), 1);
        // Crashed lessee: the heartbeat is lost — leases are not fault-exempt.
        let mut sim = build();
        sim.set_fault_plan(FaultPlan::default().with_crash(NodeId(1), 0.0, 10.0));
        sim.inject(0.0, NodeId(0), NodeId(1), L::Beat, "lease");
        sim.run(100);
        let N::Lessor(l) = sim.handler(NodeId(0)).unwrap() else {
            panic!()
        };
        assert_eq!(l.acks, 0);
        assert_eq!(sim.metrics.dropped_by_cause["crash"], 1);
    }

    #[test]
    fn total_loss_drops_replies_in_transit() {
        let mut sim = build(0);
        sim.set_fault_plan(FaultPlan::lossy(1, 1.0));
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.run(100);
        // The injected ping is delivered (external stimulus, not in-transit),
        // but the echoed pong is lost.
        assert_eq!(sim.metrics.messages, 1);
        assert_eq!(sim.metrics.dropped_by_cause["loss"], 1);
        assert!(sim.handler(NodeId(0)).unwrap().received.is_empty());
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut sim = build(0);
        sim.set_fault_plan(FaultPlan {
            seed: 5,
            duplicate_rate: 1.0,
            ..FaultPlan::default()
        });
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.run(100);
        assert_eq!(sim.metrics.duplicated, 1);
        assert_eq!(sim.handler(NodeId(0)).unwrap().received, vec![0, 0]);
    }

    #[test]
    fn crashed_node_loses_arrivals_until_restart() {
        let mut sim = build(0);
        sim.set_fault_plan(FaultPlan::default().with_crash(NodeId(1), 0.0, 10.0));
        sim.inject(5.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.inject(12.0, NodeId(0), NodeId(1), Msg::Ping(7), "ping");
        sim.run(100);
        assert_eq!(sim.metrics.dropped_by_cause["crash"], 1);
        assert_eq!(sim.handler(NodeId(0)).unwrap().received, vec![7]);
    }

    #[test]
    fn partition_severs_cross_cut_traffic() {
        let mut sim = build(0);
        sim.set_fault_plan(FaultPlan::default().with_partition([NodeId(0)], 0.0, 100.0));
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.run(100);
        assert_eq!(sim.metrics.dropped_by_cause["partition"], 1);
        assert!(sim.handler(NodeId(0)).unwrap().received.is_empty());
    }

    #[test]
    fn jitter_delays_but_still_delivers() {
        let mut sim = build(0);
        sim.set_fault_plan(FaultPlan::default().with_jitter(0.25));
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.run(100);
        assert_eq!(sim.handler(NodeId(0)).unwrap().received, vec![0]);
        // Fault-free pong arrival is t=2.5; jitter adds [0, 0.25).
        assert!(sim.now() >= 2.5 && sim.now() < 2.75, "{}", sim.now());
    }

    #[test]
    fn inert_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<FaultPlan>| {
            let mut sim = build(5);
            if let Some(p) = plan {
                sim.set_fault_plan(p);
            }
            sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
            sim.run(1000);
            (
                sim.now().to_bits(),
                sim.metrics.messages,
                sim.metrics.bytes.to_bits(),
                sim.handler(NodeId(0)).unwrap().received.clone(),
            )
        };
        assert_eq!(run(None), run(Some(FaultPlan::default())));
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let run = || {
            let mut sim = build(10);
            sim.set_fault_plan(
                FaultPlan::lossy(7, 0.3)
                    .with_duplicates(0.2)
                    .with_jitter(0.1),
            );
            sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
            sim.run(10_000);
            (
                sim.now().to_bits(),
                sim.metrics.messages,
                sim.metrics.dropped,
                sim.metrics.duplicated,
                sim.handler(NodeId(0)).unwrap().received.clone(),
            )
        };
        assert_eq!(run(), run());
    }
}
