//! The event loop.

use crate::metrics::Metrics;
use crate::topology::Topology;
use qt_catalog::NodeId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// A node's protocol behavior. Implementations hold the node's private state
/// (holdings, optimizer, strategy); the simulator owns one handler per node.
pub trait Handler<M> {
    /// React to a delivered message. Use `ctx` to send replies and charge
    /// virtual compute time; everything queued on `ctx` takes effect after
    /// the handler returns.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: NodeId, msg: M);
}

/// Side-effect collector passed to handlers.
pub struct Ctx<M> {
    now: f64,
    node: NodeId,
    compute: f64,
    outbox: Vec<Outgoing<M>>,
}

struct Outgoing<M> {
    to: NodeId,
    msg: M,
    bytes: f64,
    kind: &'static str,
    extra_delay: f64,
}

impl<M> Ctx<M> {
    /// Current virtual time at the start of handling (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Charge `seconds` of local compute time. The node is busy for that
    /// long: later messages queue behind it, and replies depart after it.
    pub fn charge_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute charge");
        self.compute += seconds.max(0.0);
    }

    /// Send `msg` of `bytes` payload bytes to `to`, labeled `kind` for the
    /// message-count metrics. Departs when the handler's compute finishes.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: f64, kind: &'static str) {
        self.outbox.push(Outgoing {
            to,
            msg,
            bytes,
            kind,
            extra_delay: 0.0,
        });
    }

    /// Schedule `msg` to be delivered *to this node itself* after `delay`
    /// virtual seconds (a timer: no link, no bytes).
    pub fn schedule(&mut self, delay: f64, msg: M, kind: &'static str) {
        debug_assert!(delay >= 0.0, "negative timer delay");
        self.outbox.push(Outgoing {
            to: self.node,
            msg,
            bytes: 0.0,
            kind,
            extra_delay: delay.max(0.0),
        });
    }
}

struct Event<M> {
    time: f64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
    bytes: f64,
    kind: &'static str,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversal at the call site; tie-break on sequence
        // number for full determinism.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The discrete-event simulator.
///
/// ```
/// use qt_catalog::NodeId;
/// use qt_cost::NetLink;
/// use qt_net::{Ctx, Handler, Simulator, Topology};
///
/// struct Echo;
/// struct Probe { reply_at: Option<f64> }
///
/// enum Msg { Ping, Pong }
/// # // One handler type per simulator; dispatch on node role.
/// enum Node { Echo(Echo), Probe(Probe) }
///
/// impl Handler<Msg> for Node {
///     fn on_message(&mut self, ctx: &mut Ctx<Msg>, from: NodeId, msg: Msg) {
///         match (self, msg) {
///             (Node::Echo(_), Msg::Ping) => {
///                 ctx.charge_compute(0.5);                  // half a second of work
///                 ctx.send(from, Msg::Pong, 1_000.0, "pong"); // 1 KB reply
///             }
///             (Node::Probe(p), Msg::Pong) => p.reply_at = Some(ctx.now()),
///             _ => {}
///         }
///     }
/// }
///
/// let mut sim: Simulator<Msg, Node> =
///     Simulator::new(Topology::Uniform(NetLink { latency: 0.1, bandwidth: 10_000.0 }));
/// sim.add_node(NodeId(0), Node::Probe(Probe { reply_at: None }));
/// sim.add_node(NodeId(1), Node::Echo(Echo));
/// sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping, "ping");
/// sim.run(100);
///
/// // ping at t=0, 0.5 s compute, then 0.1 s latency + 0.1 s transfer.
/// let Node::Probe(p) = sim.handler(NodeId(0)).unwrap() else { unreachable!() };
/// assert!((p.reply_at.unwrap() - 0.7).abs() < 1e-9);
/// assert_eq!(sim.metrics.kind_count("pong"), 1);
/// ```
pub struct Simulator<M, H: Handler<M>> {
    handlers: BTreeMap<NodeId, H>,
    queue: BinaryHeap<std::cmp::Reverse<Event<M>>>,
    topology: Topology,
    time: f64,
    seq: u64,
    busy_until: BTreeMap<NodeId, f64>,
    /// Accumulated metrics (public for the experiment harness).
    pub metrics: Metrics,
}

impl<M, H: Handler<M>> Simulator<M, H> {
    /// New simulator over `topology`.
    pub fn new(topology: Topology) -> Self {
        Simulator {
            handlers: BTreeMap::new(),
            queue: BinaryHeap::new(),
            topology,
            time: 0.0,
            seq: 0,
            busy_until: BTreeMap::new(),
            metrics: Metrics::default(),
        }
    }

    /// Register `handler` as node `id`.
    pub fn add_node(&mut self, id: NodeId, handler: H) {
        self.handlers.insert(id, handler);
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Borrow a node's handler (to read results out after the run).
    pub fn handler(&self, id: NodeId) -> Option<&H> {
        self.handlers.get(&id)
    }

    /// Mutably borrow a node's handler (test instrumentation).
    pub fn handler_mut(&mut self, id: NodeId) -> Option<&mut H> {
        self.handlers.get_mut(&id)
    }

    /// Inject an external message to `to` at absolute virtual time `at`
    /// (e.g. the user's query arriving at the buyer).
    pub fn inject(&mut self, at: f64, from: NodeId, to: NodeId, msg: M, kind: &'static str) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(std::cmp::Reverse(Event {
            time: at,
            seq,
            from,
            to,
            msg,
            bytes: 0.0,
            kind,
        }));
    }

    /// Run until the event queue drains or `max_events` deliveries happened.
    /// Returns the number of events processed.
    ///
    /// # Panics
    /// Panics if a message targets an unregistered node — a protocol bug.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some(std::cmp::Reverse(ev)) = self.queue.pop() else {
                break;
            };
            processed += 1;
            self.metrics.events += 1;
            // Delivery waits for the node to be free (sequential nodes).
            let start = ev
                .time
                .max(self.busy_until.get(&ev.to).copied().unwrap_or(0.0));
            self.time = start;
            self.metrics.record_message(ev.kind, ev.bytes);

            let handler = self
                .handlers
                .get_mut(&ev.to)
                .unwrap_or_else(|| panic!("message to unregistered {}", ev.to));
            let mut ctx = Ctx {
                now: start,
                node: ev.to,
                compute: 0.0,
                outbox: Vec::new(),
            };
            handler.on_message(&mut ctx, ev.from, ev.msg);

            self.metrics.compute_seconds += ctx.compute;
            let done = start + ctx.compute;
            self.busy_until.insert(ev.to, done);
            for out in ctx.outbox {
                let link = self.topology.link(ev.to, out.to);
                let arrive = done + link.transfer_time(out.bytes) + out.extra_delay;
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(std::cmp::Reverse(Event {
                    time: arrive,
                    seq,
                    from: ev.to,
                    to: out.to,
                    msg: out.msg,
                    bytes: out.bytes,
                    kind: out.kind,
                }));
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_cost::NetLink;

    /// Ping-pong: node 0 sends `n` pings; node 1 echoes each.
    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        remaining: u32,
        received: Vec<u32>,
    }

    impl Handler<Msg> for Pinger {
        fn on_message(&mut self, ctx: &mut Ctx<Msg>, _from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(i) => {
                    // Echo with some compute.
                    ctx.charge_compute(0.5);
                    ctx.send(NodeId(0), Msg::Pong(i), 100.0, "pong");
                }
                Msg::Pong(i) => {
                    self.received.push(i);
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        ctx.send(NodeId(1), Msg::Ping(i + 1), 100.0, "ping");
                    }
                }
            }
        }
    }

    fn build(n: u32) -> Simulator<Msg, Pinger> {
        let mut sim = Simulator::new(Topology::Uniform(NetLink {
            latency: 1.0,
            bandwidth: 100.0,
        }));
        sim.add_node(
            NodeId(0),
            Pinger {
                remaining: n,
                received: vec![],
            },
        );
        sim.add_node(
            NodeId(1),
            Pinger {
                remaining: 0,
                received: vec![],
            },
        );
        sim
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let mut sim = build(0);
        // Kick off: deliver Pong(0) to node 0 at t=0; it sends Ping(1)... no,
        // remaining=0 means it just records. Send a Ping to node 1 instead.
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        sim.run(1000);
        // One echo: ping delivered t=0, compute 0.5, transfer 1 + 100/100=2
        // → pong arrives at 2.5.
        assert!((sim.now() - 2.5).abs() < 1e-9, "{}", sim.now());
        assert_eq!(sim.handler(NodeId(0)).unwrap().received, vec![0]);
        assert_eq!(sim.metrics.messages, 2);
        assert_eq!(sim.metrics.kind_count("pong"), 1);
        assert!((sim.metrics.compute_seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn repeated_rounds_accumulate_time_deterministically() {
        let mut a = build(3);
        a.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        a.run(1000);
        let mut b = build(3);
        b.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        b.run(1000);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.metrics.messages, b.metrics.messages);
        assert_eq!(a.handler(NodeId(0)).unwrap().received, vec![0, 1, 2, 3]);
    }

    #[test]
    fn busy_node_serializes_processing() {
        // Two pings arrive at t=0; the echoes must be 0.5 apart because the
        // responder is sequential.
        struct Recorder {
            times: Vec<f64>,
        }
        struct Echo;
        enum M2 {
            Ping,
            Pong,
        }
        enum Either {
            E(Echo),
            R(Recorder),
        }
        impl Handler<M2> for Either {
            fn on_message(&mut self, ctx: &mut Ctx<M2>, from: NodeId, msg: M2) {
                match (self, msg) {
                    (Either::E(_), M2::Ping) => {
                        ctx.charge_compute(0.5);
                        ctx.send(from, M2::Pong, 0.0, "pong");
                    }
                    (Either::R(r), M2::Pong) => r.times.push(ctx.now()),
                    _ => {}
                }
            }
        }
        let mut sim: Simulator<M2, Either> = Simulator::new(Topology::Uniform(NetLink {
            latency: 0.0,
            bandwidth: f64::INFINITY,
        }));
        sim.add_node(NodeId(0), Either::R(Recorder { times: vec![] }));
        sim.add_node(NodeId(1), Either::E(Echo));
        sim.inject(0.0, NodeId(0), NodeId(1), M2::Ping, "ping");
        sim.inject(0.0, NodeId(0), NodeId(1), M2::Ping, "ping");
        sim.run(100);
        let Either::R(r) = sim.handler(NodeId(0)).unwrap() else {
            panic!()
        };
        assert_eq!(r.times.len(), 2);
        assert!((r.times[0] - 0.5).abs() < 1e-9);
        assert!((r.times[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_events_bounds_run() {
        let mut sim = build(1_000_000);
        sim.inject(0.0, NodeId(0), NodeId(1), Msg::Ping(0), "ping");
        let processed = sim.run(10);
        assert_eq!(processed, 10);
    }

    #[test]
    fn scheduled_timers_fire_after_delay() {
        struct Timed {
            fired_at: Vec<f64>,
        }
        impl Handler<&'static str> for Timed {
            fn on_message(
                &mut self,
                ctx: &mut Ctx<&'static str>,
                _from: NodeId,
                msg: &'static str,
            ) {
                match msg {
                    "start" => ctx.schedule(5.0, "timer", "timer"),
                    "timer" => self.fired_at.push(ctx.now()),
                    _ => {}
                }
            }
        }
        let mut sim: Simulator<&'static str, Timed> = Simulator::new(Topology::default());
        sim.add_node(NodeId(0), Timed { fired_at: vec![] });
        sim.inject(0.0, NodeId(0), NodeId(0), "start", "start");
        sim.run(10);
        let t = &sim.handler(NodeId(0)).unwrap().fired_at;
        assert_eq!(t.len(), 1);
        assert!((t[0] - 5.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn self_send_is_instant() {
        struct SelfLoop {
            count: u32,
        }
        impl Handler<u32> for SelfLoop {
            fn on_message(&mut self, ctx: &mut Ctx<u32>, _from: NodeId, msg: u32) {
                self.count += 1;
                if msg > 0 {
                    ctx.send(ctx.node(), msg - 1, 1e9, "self");
                }
            }
        }
        let mut sim: Simulator<u32, SelfLoop> = Simulator::new(Topology::default());
        sim.add_node(NodeId(0), SelfLoop { count: 0 });
        sim.inject(0.0, NodeId(0), NodeId(0), 5, "self");
        sim.run(100);
        assert_eq!(sim.handler(NodeId(0)).unwrap().count, 6);
        assert_eq!(sim.now(), 0.0); // self-sends cost no time
    }
}
