//! Deterministic fault injection: message loss, duplication, latency
//! jitter, network partitions, and node crash/restart windows.
//!
//! A [`FaultPlan`] is attached to a [`Simulator`](crate::Simulator) and
//! consulted on every *network* message (timers scheduled via
//! [`Ctx::schedule`](crate::Ctx::schedule) are local alarms and never
//! fault). All stochastic decisions are pure functions of the plan's seed
//! and the message's sequence number, drawn through the workspace `rand`
//! shim (xoshiro256++): the same plan produces bit-identical fault
//! decisions on every run, every platform, and under any `QT_THREADS`
//! setting — re-enqueueing an event never re-rolls its fate.

use qt_catalog::NodeId;
use rand::{RngCore, SeedableRng, SmallRng};
use std::collections::BTreeSet;

/// A closed virtual-time window during which `node` is down. Messages
/// arriving at (or departing from) a crashed node are lost; after `until`
/// the node processes traffic again (its handler state survives — a crash
/// models an unreachable process, not amnesia).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// Crash time (inclusive).
    pub from: f64,
    /// Restart time (exclusive).
    pub until: f64,
}

/// A network partition: during `[from, until)` the nodes in `group` can
/// only talk among themselves, and the rest of the federation only among
/// itself. Messages crossing the cut are lost.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// One side of the cut.
    pub group: BTreeSet<NodeId>,
    /// Partition start (inclusive).
    pub from: f64,
    /// Heal time (exclusive).
    pub until: f64,
}

/// A seeded, deterministic fault-injection plan.
///
/// The default plan injects nothing: a simulator carrying
/// `FaultPlan::default()` is bit-identical to one carrying no plan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-message fault rolls.
    pub seed: u64,
    /// Probability that a message is silently lost in transit.
    pub drop_rate: f64,
    /// Probability that a message is delivered twice (the duplicate takes
    /// an independently jittered, slightly later path).
    pub duplicate_rate: f64,
    /// Maximum extra per-message latency, uniform in `[0, jitter)` seconds.
    pub jitter: f64,
    /// Node crash/restart windows.
    pub crashes: Vec<CrashWindow>,
    /// Network partition windows.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan that only drops messages, at `drop_rate`.
    pub fn lossy(seed: u64, drop_rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_rate,
            ..FaultPlan::default()
        }
    }

    /// Builder-style duplication rate.
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Builder-style latency jitter bound (seconds).
    pub fn with_jitter(mut self, seconds: f64) -> Self {
        self.jitter = seconds;
        self
    }

    /// Builder-style crash window.
    pub fn with_crash(mut self, node: NodeId, from: f64, until: f64) -> Self {
        self.crashes.push(CrashWindow { node, from, until });
        self
    }

    /// Builder-style partition window.
    pub fn with_partition(
        mut self,
        group: impl IntoIterator<Item = NodeId>,
        from: f64,
        until: f64,
    ) -> Self {
        self.partitions.push(Partition {
            group: group.into_iter().collect(),
            from,
            until,
        });
        self
    }

    /// True when the plan can never inject anything (the zero plan).
    pub fn is_inert(&self) -> bool {
        self.drop_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.jitter <= 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// One uniform `[0,1)` roll for message `seq`, purpose-tagged by `salt`
    /// so the drop, duplicate, and jitter decisions of one message are
    /// independent.
    fn roll(&self, seq: u64, salt: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seq)
                .rotate_left(17)
                ^ salt.wrapping_mul(0xD129_0B2E_8C5F_5DB5),
        );
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should the message with sequence number `seq` be dropped in transit?
    pub fn drops(&self, seq: u64) -> bool {
        self.drop_rate > 0.0 && self.roll(seq, 1) < self.drop_rate
    }

    /// Should the message with sequence number `seq` be duplicated?
    pub fn duplicates(&self, seq: u64) -> bool {
        self.duplicate_rate > 0.0 && self.roll(seq, 2) < self.duplicate_rate
    }

    /// Extra latency for message `seq` (0 when jitter is off).
    pub fn jitter_for(&self, seq: u64) -> f64 {
        if self.jitter > 0.0 {
            self.jitter * self.roll(seq, 3)
        } else {
            0.0
        }
    }

    /// Is `node` crashed at virtual time `t`?
    pub fn down(&self, node: NodeId, t: f64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && t >= c.from && t < c.until)
    }

    /// Is the `from → to` link severed by a partition at virtual time `t`?
    pub fn severed(&self, from: NodeId, to: NodeId, t: f64) -> bool {
        self.partitions
            .iter()
            .any(|p| t >= p.from && t < p.until && p.group.contains(&from) != p.group.contains(&to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(p.is_inert());
        for seq in 0..1000 {
            assert!(!p.drops(seq));
            assert!(!p.duplicates(seq));
            assert_eq!(p.jitter_for(seq), 0.0);
        }
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::lossy(7, 0.5);
        let b = FaultPlan::lossy(7, 0.5);
        let c = FaultPlan::lossy(8, 0.5);
        let decide = |p: &FaultPlan| (0..256).map(|s| p.drops(s)).collect::<Vec<_>>();
        assert_eq!(decide(&a), decide(&b));
        assert_ne!(decide(&a), decide(&c));
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let p = FaultPlan::lossy(42, 0.3);
        let dropped = (0..10_000).filter(|&s| p.drops(s)).count();
        assert!((2_500..3_500).contains(&dropped), "{dropped}");
    }

    #[test]
    fn drop_and_duplicate_rolls_are_independent() {
        let p = FaultPlan::lossy(3, 0.5).with_duplicates(0.5);
        let both = (0..4096).filter(|&s| p.drops(s) && p.duplicates(s)).count();
        // Independent coins agree ~25% of the time, not ~50%.
        assert!((700..1350).contains(&both), "{both}");
    }

    #[test]
    fn jitter_is_bounded() {
        let p = FaultPlan::lossy(1, 0.0).with_jitter(0.25);
        for s in 0..1000 {
            let j = p.jitter_for(s);
            assert!((0.0..0.25).contains(&j), "{j}");
        }
    }

    #[test]
    fn crash_windows_cover_half_open_intervals() {
        let p = FaultPlan::default().with_crash(NodeId(3), 1.0, 2.0);
        assert!(!p.down(NodeId(3), 0.99));
        assert!(p.down(NodeId(3), 1.0));
        assert!(p.down(NodeId(3), 1.99));
        assert!(!p.down(NodeId(3), 2.0));
        assert!(!p.down(NodeId(4), 1.5));
    }

    #[test]
    fn partitions_sever_only_the_cut() {
        let p = FaultPlan::default().with_partition([NodeId(0), NodeId(1)], 5.0, 10.0);
        // Across the cut, both directions, only inside the window.
        assert!(p.severed(NodeId(0), NodeId(2), 5.0));
        assert!(p.severed(NodeId(2), NodeId(1), 7.5));
        assert!(!p.severed(NodeId(0), NodeId(2), 4.9));
        assert!(!p.severed(NodeId(0), NodeId(2), 10.0));
        // Same side: never severed.
        assert!(!p.severed(NodeId(0), NodeId(1), 7.5));
        assert!(!p.severed(NodeId(2), NodeId(3), 7.5));
    }
}
