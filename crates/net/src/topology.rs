//! Network topologies: which link connects each node pair.

use qt_catalog::NodeId;
use qt_cost::NetLink;

/// A topology maps ordered node pairs to links.
#[derive(Clone)]
pub enum Topology {
    /// Every pair connected by the same link (the paper's flat federation).
    Uniform(NetLink),
    /// Two-tier: nodes in the same region (`node.0 / region_size`) use the
    /// fast link, others the slow link. Models regional offices behind WAN
    /// uplinks.
    TwoTier {
        /// Nodes per region.
        region_size: u32,
        /// Intra-region link.
        local: NetLink,
        /// Inter-region link.
        remote: NetLink,
    },
    /// Arbitrary function (e.g. per-pair jitter seeded deterministically).
    Custom(std::sync::Arc<dyn Fn(NodeId, NodeId) -> NetLink + Send + Sync>),
}

impl Topology {
    /// The link used from `from` to `to`. Self-sends are free and instant.
    pub fn link(&self, from: NodeId, to: NodeId) -> NetLink {
        if from == to {
            return NetLink {
                latency: 0.0,
                bandwidth: f64::INFINITY,
            };
        }
        match self {
            Topology::Uniform(l) => *l,
            Topology::TwoTier {
                region_size,
                local,
                remote,
            } => {
                if from.0 / region_size == to.0 / region_size {
                    *local
                } else {
                    *remote
                }
            }
            Topology::Custom(f) => f(from, to),
        }
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Uniform(l) => write!(f, "Uniform({l:?})"),
            Topology::TwoTier { region_size, .. } => write!(f, "TwoTier(region={region_size})"),
            Topology::Custom(_) => write!(f, "Custom"),
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::Uniform(NetLink::wan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_link_is_instant() {
        let t = Topology::Uniform(NetLink::wan());
        let l = t.link(NodeId(1), NodeId(1));
        assert_eq!(l.transfer_time(1e9), 0.0);
    }

    #[test]
    fn two_tier_distinguishes_regions() {
        let t = Topology::TwoTier {
            region_size: 4,
            local: NetLink::lan(),
            remote: NetLink::wan(),
        };
        assert_eq!(t.link(NodeId(0), NodeId(3)).latency, NetLink::lan().latency);
        assert_eq!(t.link(NodeId(0), NodeId(4)).latency, NetLink::wan().latency);
    }

    #[test]
    fn custom_topology_runs_closure() {
        let t = Topology::Custom(std::sync::Arc::new(|a, b| NetLink {
            latency: (a.0 + b.0) as f64 * 0.001,
            bandwidth: 1e6,
        }));
        assert!((t.link(NodeId(1), NodeId(2)).latency - 0.003).abs() < 1e-12);
    }
}
