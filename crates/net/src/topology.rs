//! Network topologies: which link connects each node pair.

use qt_catalog::NodeId;
use qt_cost::NetLink;
use std::num::NonZeroU32;

/// A topology maps ordered node pairs to links.
#[derive(Clone)]
pub enum Topology {
    /// Every pair connected by the same link (the paper's flat federation).
    Uniform(NetLink),
    /// Two-tier: nodes in the same region (`node.0 / region_size`) use the
    /// fast link, others the slow link. Models regional offices behind WAN
    /// uplinks. Build with [`Topology::two_tier`] to validate the region
    /// size; `region_size` is `NonZeroU32` so a zero divisor cannot exist.
    TwoTier {
        /// Nodes per region (non-zero by construction).
        region_size: NonZeroU32,
        /// Intra-region link.
        local: NetLink,
        /// Inter-region link.
        remote: NetLink,
    },
    /// Arbitrary function (e.g. per-pair jitter seeded deterministically).
    Custom(std::sync::Arc<dyn Fn(NodeId, NodeId) -> NetLink + Send + Sync>),
}

impl Topology {
    /// A validated two-tier topology. Returns a clear error instead of the
    /// divide-by-zero panic a raw `TwoTier { region_size: 0, .. }` literal
    /// used to hide until the first `link()` call.
    pub fn two_tier(region_size: u32, local: NetLink, remote: NetLink) -> Result<Topology, String> {
        let region_size = NonZeroU32::new(region_size)
            .ok_or_else(|| "two-tier topology requires region_size >= 1".to_string())?;
        Ok(Topology::TwoTier {
            region_size,
            local,
            remote,
        })
    }
    /// The link used from `from` to `to`. Self-sends are free and instant.
    pub fn link(&self, from: NodeId, to: NodeId) -> NetLink {
        if from == to {
            return NetLink {
                latency: 0.0,
                bandwidth: f64::INFINITY,
            };
        }
        match self {
            Topology::Uniform(l) => *l,
            Topology::TwoTier {
                region_size,
                local,
                remote,
            } => {
                if from.0 / region_size.get() == to.0 / region_size.get() {
                    *local
                } else {
                    *remote
                }
            }
            Topology::Custom(f) => f(from, to),
        }
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Uniform(l) => write!(f, "Uniform({l:?})"),
            Topology::TwoTier { region_size, .. } => write!(f, "TwoTier(region={region_size})"),
            Topology::Custom(_) => write!(f, "Custom"),
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::Uniform(NetLink::wan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_link_is_instant() {
        let t = Topology::Uniform(NetLink::wan());
        let l = t.link(NodeId(1), NodeId(1));
        assert_eq!(l.transfer_time(1e9), 0.0);
    }

    #[test]
    fn two_tier_distinguishes_regions() {
        let t = Topology::two_tier(4, NetLink::lan(), NetLink::wan()).unwrap();
        assert_eq!(t.link(NodeId(0), NodeId(3)).latency, NetLink::lan().latency);
        assert_eq!(t.link(NodeId(0), NodeId(4)).latency, NetLink::wan().latency);
    }

    #[test]
    fn two_tier_rejects_zero_region_size() {
        let err = Topology::two_tier(0, NetLink::lan(), NetLink::wan()).unwrap_err();
        assert!(err.contains("region_size"), "{err}");
    }

    #[test]
    fn custom_topology_runs_closure() {
        let t = Topology::Custom(std::sync::Arc::new(|a, b| NetLink {
            latency: (a.0 + b.0) as f64 * 0.001,
            bandwidth: 1e6,
        }));
        assert!((t.link(NodeId(1), NodeId(2)).latency - 0.003).abs() < 1e-12);
    }
}
