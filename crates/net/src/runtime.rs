//! The runtime abstraction shared by every transport.
//!
//! A *runtime* delivers messages to per-node [`Handler`]s. Handlers never
//! see the runtime itself — all their side effects (replies, compute
//! charges, timers) go through the [`Ctx`] collector, which makes the same
//! protocol code portable across:
//!
//! * [`Simulator`](crate::Simulator) — the single-threaded discrete-event
//!   simulator with virtual time, fault injection, and full determinism;
//! * [`real`](crate::real) — thread-per-node execution on real cores, over
//!   in-process channels or TCP sockets, with wall-clock time.
//!
//! The simulator remains the oracle: the conformance suite in `qt-core`
//! asserts both runtimes produce bit-identical plans from the same seeds.

use qt_catalog::NodeId;

/// A node's protocol behavior. Implementations hold the node's private state
/// (holdings, optimizer, strategy); the runtime owns one handler per node.
pub trait Handler<M> {
    /// React to a delivered message. Use `ctx` to send replies and charge
    /// virtual compute time; everything queued on `ctx` takes effect after
    /// the handler returns.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: NodeId, msg: M);
}

/// Side-effect collector passed to handlers.
pub struct Ctx<M> {
    now: f64,
    node: NodeId,
    compute: f64,
    outbox: Vec<Outgoing<M>>,
}

/// One queued side effect: a send, a lease heartbeat, or a self-timer.
pub(crate) struct Outgoing<M> {
    pub(crate) to: NodeId,
    pub(crate) msg: M,
    pub(crate) bytes: f64,
    pub(crate) kind: &'static str,
    pub(crate) extra_delay: f64,
    pub(crate) timer: bool,
    pub(crate) lease: bool,
}

impl<M> Ctx<M> {
    /// Fresh collector for one delivery at time `now` on `node`.
    pub(crate) fn new(now: f64, node: NodeId) -> Self {
        Ctx {
            now,
            node,
            compute: 0.0,
            outbox: Vec::new(),
        }
    }

    /// Total compute charged during the handler call.
    pub(crate) fn compute_charged(&self) -> f64 {
        self.compute
    }

    /// Drain the queued side effects (runtime-internal).
    pub(crate) fn take_outbox(&mut self) -> Vec<Outgoing<M>> {
        std::mem::take(&mut self.outbox)
    }

    /// Current time at the start of handling (seconds). Virtual time under
    /// the simulator; wall-clock seconds since run start on the real
    /// transport.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Charge `seconds` of local compute time. The node is busy for that
    /// long: later messages queue behind it, and replies depart after it.
    pub fn charge_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute charge");
        self.compute += seconds.max(0.0);
    }

    /// Send `msg` of `bytes` payload bytes to `to`, labeled `kind` for the
    /// message-count metrics. Departs when the handler's compute finishes.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: f64, kind: &'static str) {
        self.outbox.push(Outgoing {
            to,
            msg,
            bytes,
            kind,
            extra_delay: 0.0,
            timer: false,
            lease: false,
        });
    }

    /// Send a lease heartbeat (or its acknowledgment) to `to`. Lease traffic
    /// rides the real network — it pays latency and is subject to fault
    /// injection, which is the whole point: a crashed or partitioned lessee
    /// stops answering — but it is control-plane chatter, not protocol data:
    /// it carries no payload bytes and counts in
    /// [`Metrics::lease_events`](crate::Metrics), never in
    /// `messages`/`bytes` (mirroring the timer split).
    pub fn send_lease(&mut self, to: NodeId, msg: M, kind: &'static str) {
        self.outbox.push(Outgoing {
            to,
            msg,
            bytes: 0.0,
            kind,
            extra_delay: 0.0,
            timer: false,
            lease: true,
        });
    }

    /// Schedule `msg` to be delivered *to this node itself* after `delay`
    /// seconds (a timer: no link, no bytes, never counted as a network
    /// message, and exempt from fault injection).
    pub fn schedule(&mut self, delay: f64, msg: M, kind: &'static str) {
        debug_assert!(delay >= 0.0, "negative timer delay");
        self.outbox.push(Outgoing {
            to: self.node,
            msg,
            bytes: 0.0,
            kind,
            extra_delay: delay.max(0.0),
            timer: true,
            lease: false,
        });
    }
}
