//! Regenerate the evaluation tables/figures.
//!
//! ```text
//! cargo run -p qt-bench --bin repro --release -- all
//! cargo run -p qt-bench --bin repro --release -- e3 e4
//! cargo run -p qt-bench --bin repro --release -- e21 --transport threads
//! ```
//!
//! Each experiment prints its table and writes `results/<id>.csv`.
//! `--transport {sim,threads,tcp}` restricts the transport-comparison
//! experiments (E21) to one runtime; the default measures all of them.

use qt_bench::experiments;
use std::path::Path;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--transport") {
        let value = args.get(i + 1).cloned();
        match value.as_deref() {
            Some(v @ ("sim" | "threads" | "tcp")) => {
                // The experiments read this env var; a flag keeps the
                // registry signature uniform (every experiment is `fn() ->
                // Table`).
                std::env::set_var("QT_BENCH_TRANSPORT", v);
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--transport needs one of: sim, threads, tcp");
                std::process::exit(2);
            }
        }
    }
    let registry = experiments::all();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        registry.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let results = Path::new("results");
    let mut unknown = Vec::new();
    for sel in selected {
        match registry
            .iter()
            .find(|(id, _)| *id == sel.to_ascii_lowercase())
        {
            Some((id, run)) => {
                eprintln!("running {id}...");
                let started = std::time::Instant::now();
                let table = run();
                println!("{}", table.render());
                match table.write_csv(results) {
                    Ok(path) => eprintln!(
                        "{id} done in {:.1}s → {}",
                        started.elapsed().as_secs_f64(),
                        path.display()
                    ),
                    Err(e) => eprintln!("{id}: failed to write CSV: {e}"),
                }
            }
            None => unknown.push(sel.to_string()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {} (available: {})",
            unknown.join(", "),
            registry
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}
