//! Snapshot the trading-hot-path benchmarks into `BENCH_trading.json`.
//!
//! Measures the full QT direct-driver run (serial vs. parallel fan-out, 8
//! and 16 sellers), buyer plan generation in isolation, and the warm-cache
//! re-optimization path, then writes one JSON document with the host core
//! count so numbers from different machines are comparable. On a 1-core
//! container the parallel arm degenerates to a single worker — the speedup
//! column is only meaningful where `host_cores > 1`.
//!
//! Budgets honor `QT_BENCH_WARMUP_MS` (default 50) and `QT_BENCH_MEASURE_MS`
//! (default 300) per bench; output path honors `QT_BENCH_OUT` (default
//! `BENCH_trading.json`).

use qt_catalog::NodeId;
use qt_core::plangen::PlanGenerator;
use qt_core::{run_qt_direct, Offer, QtConfig, RfbItem, SellerEngine};
use qt_cost::NodeResources;
use qt_optimizer::LocalOptimizer;
use qt_workload::{build_federation, gen_join_query, Federation, FederationSpec, QueryShape};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Sample {
    name: String,
    secs_per_iter: f64,
    ops_per_sec: f64,
    iterations: u64,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Best-of-batches timing, same statistic as the criterion shim.
fn measure<O>(name: &str, mut f: impl FnMut() -> O) -> Sample {
    let warmup = env_ms("QT_BENCH_WARMUP_MS", 50);
    let budget = env_ms("QT_BENCH_MEASURE_MS", 300);

    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warmup || warm_iters == 0 {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let deadline = Instant::now() + budget;
    let mut best = f64::INFINITY;
    let mut total = 0u64;
    while Instant::now() < deadline {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
        total += batch;
    }
    let s = Sample {
        name: name.to_string(),
        secs_per_iter: best,
        ops_per_sec: 1.0 / best.max(1e-12),
        iterations: total,
    };
    eprintln!(
        "{:40} {:>12.1} ops/s  ({} iters)",
        s.name, s.ops_per_sec, s.iterations
    );
    s
}

fn spec(nodes: u32) -> FederationSpec {
    FederationSpec {
        nodes,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 5,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    }
}

fn engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

fn bench_trading(nodes: u32, parallel: bool) -> Sample {
    let fed = build_federation(&spec(nodes));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    let cfg = QtConfig {
        parallel,
        ..QtConfig::default()
    };
    let label = format!(
        "qt_direct/{nodes}_sellers/{}",
        if parallel { "parallel" } else { "serial" }
    );
    measure(&label, || {
        let mut sellers = engines(&fed, &cfg);
        let out = run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
        out.plan.map(|p| p.est.additive_cost)
    })
}

/// Plan generation alone: pool every seller's round-0 offers, then time the
/// buyer's answering-queries-using-views DP over that pool.
fn bench_plangen() -> Sample {
    let fed = build_federation(&spec(16));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    let cfg = QtConfig::default();
    let mut offers: Vec<Offer> = Vec::new();
    for seller in engines(&fed, &cfg).values_mut() {
        offers.extend(
            seller
                .respond(
                    0,
                    &[RfbItem {
                        query: q.clone(),
                        ref_value: f64::INFINITY,
                    }],
                )
                .offers,
        );
    }
    let pg = PlanGenerator {
        dict: &fed.catalog.dict,
        query: &q,
        config: &cfg,
        buyer_resources: NodeResources::reference(),
    };
    let label = format!("plangen/16_sellers/{}_offers", offers.len());
    measure(&label, || {
        let gen = pg.generate(&offers);
        gen.plan.map(|p| p.est.additive_cost)
    })
}

/// Warm-cache path: persistent sellers, repeated optimization of the same
/// query. Returns the sample plus the observed hit rate.
fn bench_warm_cache(nodes: u32) -> (Sample, f64) {
    let fed = build_federation(&spec(nodes));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    let cfg = QtConfig::default();
    let mut sellers = engines(&fed, &cfg);
    // Cold run fills the caches.
    run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
    let mut hits = 0u64;
    let mut misses = 0u64;
    let sample = measure(&format!("qt_direct/{nodes}_sellers/warm_cache"), || {
        let out = run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
        hits += out.offer_cache_hits;
        misses += out.offer_cache_misses;
        out.plan.map(|p| p.est.additive_cost)
    });
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    (sample, rate)
}

/// One-node federation holding every partition of an `n`-relation chain:
/// isolates the seller-local DP (the per-offer hot path) from the trading
/// protocol around it.
fn dp_setup(rels: usize) -> (Federation, qt_query::Query) {
    let fed = build_federation(&FederationSpec {
        nodes: 1,
        relations: rels,
        partitions_per_relation: 2,
        replication: 1,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 7,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, rels, false, 5);
    (fed, q)
}

/// Exhaustive local DP over an `n`-relation chain (plan enumeration only).
fn bench_local_dp(rels: usize) -> Sample {
    let (fed, q) = dp_setup(rels);
    let opt = LocalOptimizer::new(&fed.catalog);
    measure(&format!("local_dp/{rels}_rels"), || opt.optimize(&q).cost)
}

/// The modified DP of §3.4: every ≤ k-way partial as an offerable result.
fn bench_partial_results(rels: usize) -> Sample {
    let (fed, q) = dp_setup(rels);
    let opt = LocalOptimizer::new(&fed.catalog);
    measure(&format!("partial_results/{rels}_rels"), || {
        opt.partial_results(&q.strip_aggregation(), 2).0.len()
    })
}

/// One deterministic simulated run under 15% message loss (fixed fault
/// seed): the snapshot records the robustness counters so schema validation
/// in CI can assert the fault plane is alive and deterministic.
fn fault_counters() -> (bool, u64, u64, u64, u64, u64) {
    use qt_core::run_qt_sim_with_faults;
    use qt_net::{FaultPlan, Topology};
    let fed = build_federation(&spec(8));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    let cfg = QtConfig {
        seller_timeout: 5.0,
        ..QtConfig::default()
    };
    let (out, metrics) = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        Some(FaultPlan::lossy(7, 0.15)),
    );
    (
        out.plan.is_some(),
        metrics.dropped,
        out.retries,
        out.timeouts,
        out.degraded_rounds as u64,
        out.unreachable_sellers.len() as u64,
    )
}

struct FailoverStats {
    completed: bool,
    contracts_awarded: u64,
    reawards: u64,
    rescoped_trades: u64,
    contracts_repaired: u64,
    losses_detected: u64,
}

/// One deterministic contract-lifecycle failover run at replication 3: the
/// fault-free winner crashes right after trading finishes, the lease
/// machinery detects the loss, and the buyer re-awards or re-trades the lost
/// slots. CI gates on `completed` — at replication ≥ 3 a single crashed
/// winner must never cost the query its plan.
fn failover_counters() -> FailoverStats {
    use qt_core::run_qt_sim_with_faults;
    use qt_net::{FaultPlan, Topology};
    let fed = build_federation(&FederationSpec {
        replication: 3,
        ..spec(8)
    });
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    let cfg = QtConfig {
        enable_contracts: true,
        ..QtConfig::default()
    };
    let (clean, _) = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        None,
    );
    let plan = clean.plan.as_ref().expect("fault-free plan");
    let winner = plan
        .purchases
        .iter()
        .map(|p| p.offer.seller)
        .find(|&s| s != NodeId(0))
        .expect("a remote winner");
    let (out, m) = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        Some(FaultPlan::default().with_crash(winner, clean.optimization_time + 1e-6, 1e12)),
    );
    FailoverStats {
        completed: out
            .plan
            .as_ref()
            .is_some_and(|p| p.purchases.iter().all(|pu| pu.offer.seller != winner)),
        contracts_awarded: out.contracts_awarded,
        reawards: out.reawards,
        rescoped_trades: out.rescoped_trades,
        contracts_repaired: out.contracts_repaired,
        losses_detected: m.lease_expiries + m.lost_awards,
    }
}

struct ServeStats {
    qps: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    p999: f64,
    msgs_per_query: f64,
    msgs_per_query_unbatched: f64,
    /// Fraction of per-query messages removed by batching (conc 8, 16 sellers).
    batching_msg_reduction: f64,
    /// Host wall-clock speedup of conc-8 serving over one-at-a-time serving
    /// of the same 32-query burst (batching collapses most of the event
    /// traffic, so this holds even on one core).
    speedup_conc8: f64,
}

/// The serving path: one 32-query burst through a 16-node federation,
/// measured three ways — virtual-time throughput/latency (conc 8, batched),
/// message economy (batched vs. unbatched at conc 8), and host wall-clock
/// (conc 8 vs. conc 1, best of 3).
fn bench_serve() -> ServeStats {
    use qt_core::{run_qt_serve, ServeConfig};
    use qt_workload::{gen_arrivals, synthetic_mix, ArrivalSpec};
    let fed = build_federation(&spec(16));
    let mix = synthetic_mix(&fed.catalog.dict, 6, 5);
    let arrivals = gen_arrivals(
        &mix,
        &ArrivalSpec {
            n_queries: 32,
            mean_interarrival: 0.0,
            seed: 5,
        },
    );
    let cfg = QtConfig {
        // Queued sessions must not trip retransmission deadlines.
        seller_timeout: 300.0,
        ..QtConfig::default()
    };
    let run = |conc: usize, batch: bool| {
        run_qt_serve(
            NodeId(0),
            fed.catalog.dict.clone(),
            arrivals.clone(),
            engines(&fed, &cfg),
            &cfg,
            &ServeConfig {
                concurrency: conc,
                batch_rfbs: batch,
                result_cache: None,
            },
        )
    };
    let wall = |conc: usize| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(run(conc, true));
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let conc8 = run(8, true);
    let unbatched = run(8, false);
    let wall_seq = wall(1);
    let wall_conc8 = wall(8);
    let stats = ServeStats {
        qps: conc8.qps,
        p50: conc8.p50_latency,
        p95: conc8.p95_latency,
        p99: conc8.p99_latency,
        p999: conc8.p999_latency,
        msgs_per_query: conc8.messages_per_query,
        msgs_per_query_unbatched: unbatched.messages_per_query,
        batching_msg_reduction: 1.0 - conc8.messages_per_query / unbatched.messages_per_query,
        speedup_conc8: wall_seq / wall_conc8.max(1e-12),
    };
    eprintln!(
        "{:40} {:>12.1} qps  ({:.1}% fewer msgs batched, conc8 {:.2}x wall)",
        "serve/16_sellers/32_queries/conc8",
        stats.qps,
        stats.batching_msg_reduction * 100.0,
        stats.speedup_conc8
    );
    stats
}

struct RealTransportStats {
    direct_single_wall: f64,
    direct_threads_wall: f64,
    direct_speedup: f64,
    direct_sim_virtual: f64,
    serve_single_wall: f64,
    serve_threads_wall: f64,
    serve_speedup: f64,
    serve_sim_qps_virtual: f64,
    serve_sim_p99_virtual: f64,
    serve_sim_p999_virtual: f64,
    wire_bytes: u64,
    sim_estimate_bytes: f64,
    wire_bytes_vs_sim_estimate: f64,
}

/// The real thread-per-node transport vs. single-threaded execution of the
/// same workloads, host wall-clock best of 3. The sim's *virtual*-time
/// numbers ride along for context but live in separate fields — the two
/// clocks must never be conflated. Also audits the wire codec's byte
/// accounting: actual encoded frame bytes vs. the analytic
/// `query_msg_bytes`/`offer_msg_bytes` estimates the sim charges.
fn bench_real_transport() -> RealTransportStats {
    use qt_core::{
        run_qt_direct, run_qt_real, run_qt_serve, run_qt_serve_real, run_qt_sim, ServeConfig,
    };
    use qt_net::RealConfig;
    use qt_workload::{gen_arrivals, synthetic_mix, ArrivalSpec};
    let best3 = |mut f: Box<dyn FnMut() + '_>| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let fed = build_federation(&spec(16));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    // Serial in-node execution for both arms, so the speedup measures the
    // transport's parallelism and nothing else.
    let cfg = QtConfig {
        parallel: false,
        ..QtConfig::default()
    };
    let (sim_out, _) = run_qt_sim(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
    );
    let (_, threads_metrics) = run_qt_real(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        RealConfig::default(),
    );
    let direct_single_wall = best3(Box::new(|| {
        let mut sellers = engines(&fed, &cfg);
        std::hint::black_box(run_qt_direct(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            &mut sellers,
            &cfg,
        ));
    }));
    let direct_threads_wall = best3(Box::new(|| {
        std::hint::black_box(run_qt_real(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
            RealConfig::default(),
        ));
    }));
    let mix = synthetic_mix(&fed.catalog.dict, 6, 5);
    let arrivals = gen_arrivals(
        &mix,
        &ArrivalSpec {
            n_queries: 32,
            mean_interarrival: 0.0,
            seed: 5,
        },
    );
    let serve_cfg = QtConfig {
        seller_timeout: 300.0,
        ..cfg.clone()
    };
    let sc = ServeConfig {
        concurrency: 8,
        batch_rfbs: true,
        result_cache: None,
    };
    let serve_sim = run_qt_serve(
        NodeId(0),
        fed.catalog.dict.clone(),
        arrivals.clone(),
        engines(&fed, &serve_cfg),
        &serve_cfg,
        &sc,
    );
    let serve_single_wall = best3(Box::new(|| {
        std::hint::black_box(run_qt_serve(
            NodeId(0),
            fed.catalog.dict.clone(),
            arrivals.clone(),
            engines(&fed, &serve_cfg),
            &serve_cfg,
            &sc,
        ));
    }));
    let serve_threads_wall = best3(Box::new(|| {
        std::hint::black_box(run_qt_serve_real(
            NodeId(0),
            fed.catalog.dict.clone(),
            arrivals.clone(),
            engines(&fed, &serve_cfg),
            &serve_cfg,
            &sc,
            RealConfig::default(),
        ));
    }));
    let stats = RealTransportStats {
        direct_single_wall,
        direct_threads_wall,
        direct_speedup: direct_single_wall / direct_threads_wall.max(1e-12),
        direct_sim_virtual: sim_out.optimization_time,
        serve_single_wall,
        serve_threads_wall,
        serve_speedup: serve_single_wall / serve_threads_wall.max(1e-12),
        serve_sim_qps_virtual: serve_sim.qps,
        serve_sim_p99_virtual: serve_sim.p99_latency,
        serve_sim_p999_virtual: serve_sim.p999_latency,
        wire_bytes: threads_metrics.wire_bytes,
        sim_estimate_bytes: threads_metrics.bytes,
        wire_bytes_vs_sim_estimate: threads_metrics.wire_bytes as f64
            / threads_metrics.bytes.max(1.0),
    };
    eprintln!(
        "{:40} direct {:.2}x, serve conc8 {:.2}x wall vs single-thread (codec/sim bytes {:.3})",
        "real_transport/threads/16_sellers",
        stats.direct_speedup,
        stats.serve_speedup,
        stats.wire_bytes_vs_sim_estimate
    );
    stats
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let qt_threads = std::env::var("QT_THREADS").ok();

    let serial8 = bench_trading(8, false);
    let par8 = bench_trading(8, true);
    let serial16 = bench_trading(16, false);
    let par16 = bench_trading(16, true);
    let plangen = bench_plangen();
    let local_dp8 = bench_local_dp(8);
    let local_dp10 = bench_local_dp(10);
    let partials10 = bench_partial_results(10);
    let (warm16, hit_rate) = bench_warm_cache(16);

    let speedup8 = par8.ops_per_sec / serial8.ops_per_sec;
    let speedup16 = par16.ops_per_sec / serial16.ops_per_sec;
    let warm_speedup = warm16.ops_per_sec / serial16.ops_per_sec;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    match &qt_threads {
        Some(v) => {
            let _ = writeln!(json, "  \"qt_threads_env\": \"{v}\",");
        }
        None => {
            let _ = writeln!(json, "  \"qt_threads_env\": null,");
        }
    }
    json.push_str("  \"benches\": [\n");
    let all = [
        &serial8,
        &par8,
        &serial16,
        &par16,
        &plangen,
        &local_dp8,
        &local_dp10,
        &partials10,
        &warm16,
    ];
    for (i, s) in all.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"secs_per_iter\": {:.9}, \"ops_per_sec\": {:.3}, \"iterations\": {}}}{}",
            s.name,
            s.secs_per_iter,
            s.ops_per_sec,
            s.iterations,
            if i + 1 < all.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"parallel_speedup_8_sellers\": {speedup8:.3},");
    let _ = writeln!(json, "  \"parallel_speedup_16_sellers\": {speedup16:.3},");
    let _ = writeln!(
        json,
        "  \"warm_cache_speedup_16_sellers\": {warm_speedup:.3},"
    );
    let _ = writeln!(json, "  \"offer_cache_hit_rate\": {hit_rate:.4},");
    let serve = bench_serve();
    json.push_str("  \"serve\": {\n");
    let _ = writeln!(json, "    \"sellers\": 16,");
    let _ = writeln!(json, "    \"n_queries\": 32,");
    let _ = writeln!(json, "    \"concurrency\": 8,");
    let _ = writeln!(json, "    \"qps\": {:.3},", serve.qps);
    let _ = writeln!(json, "    \"p50_latency\": {:.6},", serve.p50);
    let _ = writeln!(json, "    \"p95_latency\": {:.6},", serve.p95);
    let _ = writeln!(json, "    \"p99_latency\": {:.6},", serve.p99);
    let _ = writeln!(json, "    \"p999_latency\": {:.6},", serve.p999);
    let _ = writeln!(json, "    \"msgs_per_query\": {:.3},", serve.msgs_per_query);
    let _ = writeln!(
        json,
        "    \"msgs_per_query_unbatched\": {:.3},",
        serve.msgs_per_query_unbatched
    );
    let _ = writeln!(
        json,
        "    \"batching_msg_reduction\": {:.4},",
        serve.batching_msg_reduction
    );
    let _ = writeln!(
        json,
        "    \"serve_speedup_conc8\": {:.3}",
        serve.speedup_conc8
    );
    json.push_str("  },\n");
    let real = bench_real_transport();
    json.push_str("  \"real_transport\": {\n");
    let _ = writeln!(json, "    \"host_cores\": {host_cores},");
    let _ = writeln!(json, "    \"transport\": \"threads\",");
    json.push_str("    \"qt_direct_16_sellers\": {\n");
    let _ = writeln!(
        json,
        "      \"sim_virtual_time\": {:.6},",
        real.direct_sim_virtual
    );
    let _ = writeln!(
        json,
        "      \"single_thread_wall\": {:.6},",
        real.direct_single_wall
    );
    let _ = writeln!(
        json,
        "      \"threads_wall\": {:.6},",
        real.direct_threads_wall
    );
    let _ = writeln!(
        json,
        "      \"threads_speedup\": {:.3}",
        real.direct_speedup
    );
    json.push_str("    },\n");
    json.push_str("    \"serve_conc8\": {\n");
    let _ = writeln!(
        json,
        "      \"sim_qps_virtual\": {:.3},",
        real.serve_sim_qps_virtual
    );
    let _ = writeln!(
        json,
        "      \"sim_p99_latency_virtual\": {:.6},",
        real.serve_sim_p99_virtual
    );
    let _ = writeln!(
        json,
        "      \"sim_p999_latency_virtual\": {:.6},",
        real.serve_sim_p999_virtual
    );
    let _ = writeln!(
        json,
        "      \"single_thread_wall\": {:.6},",
        real.serve_single_wall
    );
    let _ = writeln!(
        json,
        "      \"threads_wall\": {:.6},",
        real.serve_threads_wall
    );
    let _ = writeln!(json, "      \"threads_speedup\": {:.3}", real.serve_speedup);
    json.push_str("    },\n");
    let _ = writeln!(json, "    \"wire_bytes\": {},", real.wire_bytes);
    let _ = writeln!(
        json,
        "    \"sim_estimate_bytes\": {:.1},",
        real.sim_estimate_bytes
    );
    let _ = writeln!(
        json,
        "    \"wire_bytes_vs_sim_estimate\": {:.4}",
        real.wire_bytes_vs_sim_estimate
    );
    json.push_str("  },\n");
    let (plan_found, dropped, retries, timeouts, degraded, unreachable) = fault_counters();
    json.push_str("  \"fault_run\": {\n");
    let _ = writeln!(json, "    \"loss_rate\": 0.15,");
    let _ = writeln!(json, "    \"plan_found\": {plan_found},");
    let _ = writeln!(json, "    \"dropped\": {dropped},");
    let _ = writeln!(json, "    \"retries\": {retries},");
    let _ = writeln!(json, "    \"timeouts\": {timeouts},");
    let _ = writeln!(json, "    \"degraded_rounds\": {degraded},");
    let _ = writeln!(json, "    \"unreachable_sellers\": {unreachable}");
    json.push_str("  },\n");
    let col = qt_bench::experiments::columnar_snapshot();
    eprintln!(
        "{:40} {:>12.1} rows/s  ({:.2}x vs row, {} spill files, calib err {:.3} -> {:.3})",
        "columnar_exec/100x_dataset",
        col.columnar_rows_per_s,
        col.speedup,
        col.spill_files,
        col.calib_error_before,
        col.calib_error_after
    );
    json.push_str("  \"columnar_exec\": {\n");
    let _ = writeln!(json, "    \"input_rows\": {},", col.input_rows);
    let _ = writeln!(json, "    \"row_rows_per_sec\": {:.3},", col.row_rows_per_s);
    let _ = writeln!(
        json,
        "    \"columnar_rows_per_sec\": {:.3},",
        col.columnar_rows_per_s
    );
    let _ = writeln!(json, "    \"speedup\": {:.3},", col.speedup);
    let _ = writeln!(json, "    \"spill_files\": {},", col.spill_files);
    let _ = writeln!(json, "    \"spill_rows\": {},", col.spill_rows);
    let _ = writeln!(json, "    \"spill_bytes\": {},", col.spill_bytes);
    let _ = writeln!(
        json,
        "    \"calib_error_before\": {:.6},",
        col.calib_error_before
    );
    let _ = writeln!(
        json,
        "    \"calib_error_after\": {:.6}",
        col.calib_error_after
    );
    json.push_str("  },\n");
    let failover = failover_counters();
    json.push_str("  \"failover\": {\n");
    let _ = writeln!(json, "    \"replication\": 3,");
    let _ = writeln!(json, "    \"completed\": {},", failover.completed);
    let _ = writeln!(
        json,
        "    \"contracts_awarded\": {},",
        failover.contracts_awarded
    );
    let _ = writeln!(json, "    \"reawards\": {},", failover.reawards);
    let _ = writeln!(
        json,
        "    \"rescoped_trades\": {},",
        failover.rescoped_trades
    );
    let _ = writeln!(
        json,
        "    \"contracts_repaired\": {},",
        failover.contracts_repaired
    );
    let _ = writeln!(
        json,
        "    \"losses_detected\": {}",
        failover.losses_detected
    );
    json.push_str("  },\n");
    let sem = qt_bench::experiments::semantic_cache_snapshot();
    eprintln!(
        "{:40} hit {:.3} vs exact {:.3} ({:.2}x), msgs/q {:.1} vs {:.1} vs {:.1} uncached",
        "semantic_cache/16_sellers/zipf1.1",
        sem.hit_rate_semantic,
        sem.hit_rate_exact_baseline,
        sem.hit_ratio_vs_exact,
        sem.msgs_per_query_semantic,
        sem.msgs_per_query_exact,
        sem.msgs_per_query_nocache
    );
    json.push_str("  \"semantic_cache\": {\n");
    let _ = writeln!(json, "    \"sellers\": {},", sem.sellers);
    let _ = writeln!(json, "    \"skew\": {:.2},", sem.skew);
    let _ = writeln!(json, "    \"n_queries\": {},", sem.n_queries);
    let _ = writeln!(json, "    \"mix_size\": {},", sem.mix_size);
    let _ = writeln!(
        json,
        "    \"hit_rate_semantic\": {:.4},",
        sem.hit_rate_semantic
    );
    let _ = writeln!(
        json,
        "    \"hit_rate_exact_baseline\": {:.4},",
        sem.hit_rate_exact_baseline
    );
    let _ = writeln!(
        json,
        "    \"hit_ratio_vs_exact\": {:.4},",
        sem.hit_ratio_vs_exact
    );
    let _ = writeln!(
        json,
        "    \"msgs_per_query_semantic\": {:.3},",
        sem.msgs_per_query_semantic
    );
    let _ = writeln!(
        json,
        "    \"msgs_per_query_exact\": {:.3},",
        sem.msgs_per_query_exact
    );
    let _ = writeln!(
        json,
        "    \"msgs_per_query_nocache\": {:.3},",
        sem.msgs_per_query_nocache
    );
    let _ = writeln!(json, "    \"hits_exact\": {},", sem.hits_exact);
    let _ = writeln!(json, "    \"hits_semantic\": {},", sem.hits_semantic);
    let _ = writeln!(json, "    \"misses\": {},", sem.misses);
    let _ = writeln!(json, "    \"insertions\": {},", sem.insertions);
    let _ = writeln!(json, "    \"invalidated\": {}", sem.invalidated);
    json.push_str("  }\n");
    json.push_str("}\n");

    let out = std::env::var("QT_BENCH_OUT").unwrap_or_else(|_| "BENCH_trading.json".into());
    std::fs::write(&out, &json).expect("write bench snapshot");
    eprintln!("\nwrote {out}");
    println!("{json}");
}
