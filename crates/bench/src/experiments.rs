//! The experiment suite (see DESIGN.md for the reconstruction caveat: the
//! paper's §4 text is truncated in the available scan; these experiments
//! reproduce every quantity the surviving text names, over the parameters
//! the algorithm description identifies as key).
//!
//! All experiments are deterministic: seeded workloads, virtual time.

use crate::runners::{run_algo, seller_engines, Algo};
use crate::table::{f, Table};
use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig};
use qt_trade::{ProtocolKind, SellerStrategy};
use qt_workload::{
    build_federation, gen_join_query, gen_join_query_with_cut, FederationSpec, QueryShape,
};

/// Buyer node used throughout (data-less coordinator unless placement says
/// otherwise).
const BUYER: NodeId = NodeId(0);

fn spec(nodes: u32, relations: usize, parts: u16, repl: u32, seed: u64) -> FederationSpec {
    FederationSpec {
        nodes,
        relations,
        partitions_per_relation: parts,
        replication: repl,
        rows_per_partition: 100_000,
        scale: 1,
        seed,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    }
}

/// E1 (Fig. 4, reconstructed): optimization time vs. query size.
pub fn e1() -> Table {
    let mut t = Table::new(
        "E1",
        "optimization time (simulated s) vs. number of joined relations; 16 nodes",
        &["relations", "QT-DP", "QT-IDP", "TradDP", "TradIDP"],
    );
    for n in 2..=10usize {
        let fed = build_federation(&spec(16, n, 2, 1, 100 + n as u64));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, n, false, n as u64);
        let cfg = QtConfig::default();
        let mut row = vec![n.to_string()];
        for algo in [Algo::QtDp, Algo::QtIdp, Algo::TradDp, Algo::TradIdp] {
            let out = run_algo(algo, &fed, BUYER, &q, &cfg);
            row.push(f(out.optimization_time));
        }
        t.push(row);
    }
    t
}

/// E2 (Fig. 5, reconstructed): plan cost relative to TradDP vs. query size.
pub fn e2() -> Table {
    let mut t = Table::new(
        "E2",
        "plan cost / TradDP cost vs. number of joined relations; 16 nodes",
        &[
            "relations",
            "QT-DP",
            "QT-IDP",
            "QT-mixed-market",
            "TradIDP",
            "ShipAll",
        ],
    );
    for n in 2..=10usize {
        let fed = build_federation(&spec(6, n, 2, 2, 200 + n as u64));
        let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, n, false, 10);
        let cfg = QtConfig::default();
        let base = run_algo(Algo::TradDp, &fed, BUYER, &q, &cfg)
            .plan
            .map(|p| p.est.additive_cost)
            .unwrap_or(f64::NAN);
        let mut row = vec![n.to_string()];
        for algo in [Algo::QtDp, Algo::QtIdp] {
            let out = run_algo(algo, &fed, BUYER, &q, &cfg);
            let c = out.plan.map(|p| p.est.additive_cost).unwrap_or(f64::NAN);
            row.push(f(c / base));
        }
        // QT in a mixed market: odd-numbered sellers mark up 1.5×, the rest
        // are truthful. Inflated asks distort which sellers win; the column
        // reports the *true* delivery cost of the distorted choice.
        let mixed_cfg = QtConfig::default();
        let mut sellers = seller_engines(&fed, &mixed_cfg);
        for (node, engine) in sellers.iter_mut() {
            if node.0 % 2 == 1 {
                engine.strategy = SellerStrategy::fixed_markup(1.5);
            }
        }
        let out = run_qt_direct(
            BUYER,
            fed.catalog.dict.clone(),
            &q,
            &mut sellers,
            &mixed_cfg,
        );
        let c = out
            .plan
            .map(|p| {
                p.purchases.iter().map(|pu| pu.offer.true_cost).sum::<f64>() + p.est.buyer_compute
            })
            .unwrap_or(f64::NAN);
        row.push(f(c / base));
        for algo in [Algo::TradIdp, Algo::ShipAll] {
            let out = run_algo(algo, &fed, BUYER, &q, &cfg);
            let c = out.plan.map(|p| p.est.additive_cost).unwrap_or(f64::NAN);
            row.push(f(c / base));
        }
        t.push(row);
    }
    t
}

/// E3 (Fig. 6, reconstructed): optimization time vs. federation size.
pub fn e3() -> Table {
    let mut t = Table::new(
        "E3",
        "optimization time (simulated s) vs. number of nodes; 4-relation chain",
        &["nodes", "QT-DP", "QT-IDP", "TradDP", "TradIDP"],
    );
    for &n in &[4u32, 8, 16, 32, 64, 128, 256, 512] {
        let fed = build_federation(&spec(n, 4, scaled_parts(n), 2, 300 + n as u64));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 4, false, n as u64);
        let cfg = QtConfig::default();
        let mut row = vec![n.to_string()];
        for algo in [Algo::QtDp, Algo::QtIdp, Algo::TradDp, Algo::TradIdp] {
            let out = run_algo(algo, &fed, BUYER, &q, &cfg);
            row.push(f(out.optimization_time));
        }
        t.push(row);
    }
    t
}

/// Data spreads with the federation (more offices → more regional
/// partitions), like the paper's telecom: partitions per relation grow with
/// the node count, capped by the 64-partition bitset.
fn scaled_parts(nodes: u32) -> u16 {
    (nodes / 4).clamp(2, 32) as u16
}

/// E4 (Fig. 7, reconstructed): messages exchanged vs. federation size.
pub fn e4() -> Table {
    let mut t = Table::new(
        "E4",
        "protocol messages vs. number of nodes; 4-relation chain",
        &["nodes", "QT-DP", "TradDP", "QT-bytes", "TradDP-bytes"],
    );
    for &n in &[4u32, 8, 16, 32, 64, 128, 256, 512] {
        let fed = build_federation(&spec(n, 4, scaled_parts(n), 2, 300 + n as u64));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 4, false, n as u64);
        let cfg = QtConfig::default();
        let qt = run_algo(Algo::QtDp, &fed, BUYER, &q, &cfg);
        let trad = run_algo(Algo::TradDp, &fed, BUYER, &q, &cfg);
        t.push(vec![
            n.to_string(),
            qt.messages.to_string(),
            trad.messages.to_string(),
            f(qt.bytes),
            f(trad.bytes),
        ]);
    }
    t
}

/// E5 (Fig. 8, reconstructed): plan quality vs. partitions per relation.
pub fn e5() -> Table {
    let mut t = Table::new(
        "E5",
        "plan cost and cost ratio vs. partitions per relation; 16 nodes, 3-relation chain",
        &[
            "partitions",
            "QT-DP cost",
            "TradDP cost",
            "ratio",
            "QT msgs",
        ],
    );
    for &p in &[1u16, 2, 4, 8, 16] {
        let fed = build_federation(&spec(16, 3, p, 1, 500 + p as u64));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, false, p as u64);
        let cfg = QtConfig::default();
        let qt = run_algo(Algo::QtDp, &fed, BUYER, &q, &cfg);
        let trad = run_algo(Algo::TradDp, &fed, BUYER, &q, &cfg);
        let qc = qt.plan.map(|pl| pl.est.additive_cost).unwrap_or(f64::NAN);
        let tc = trad.plan.map(|pl| pl.est.additive_cost).unwrap_or(f64::NAN);
        t.push(vec![
            p.to_string(),
            f(qc),
            f(tc),
            f(qc / tc),
            qt.messages.to_string(),
        ]);
    }
    t
}

/// E6 (Fig. 9, reconstructed): convergence across trading iterations.
pub fn e6() -> Table {
    let mut t = Table::new(
        "E6",
        "per-iteration best cost and working-set size; k=1 partial cap forces iterations",
        &[
            "iteration",
            "queries asked",
            "offers",
            "best cost",
            "improvement %",
        ],
    );
    let fed = build_federation(&spec(6, 5, 1, 2, 600));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 5, false, 8);
    let cfg = QtConfig {
        max_partial_k: 1,
        max_iterations: 8,
        ..QtConfig::default()
    };
    let mut sellers = seller_engines(&fed, &cfg);
    let out = run_qt_direct(BUYER, fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
    let first = out.history.first().map(|h| h.best_cost).unwrap_or(f64::NAN);
    for h in &out.history {
        t.push(vec![
            h.round.to_string(),
            h.queries_asked.to_string(),
            h.offers_received.to_string(),
            f(h.best_cost),
            f((1.0 - h.best_cost / first) * 100.0),
        ]);
    }
    t
}

/// E7 (Table 2, reconstructed): nested-negotiation protocol impact.
pub fn e7() -> Table {
    let mut t = Table::new(
        "E7",
        "negotiation protocol: messages, time, buyer cost; 16 nodes, replication 2",
        &[
            "protocol",
            "messages",
            "sim time",
            "buyer cost",
            "seller surplus",
        ],
    );
    for proto in [
        ProtocolKind::SealedBid,
        ProtocolKind::Vickrey,
        ProtocolKind::English { decrement: 0.05 },
        ProtocolKind::Bargaining { max_rounds: 4 },
    ] {
        let fed = build_federation(&spec(16, 3, 2, 3, 700));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, false, 7);
        let cfg = QtConfig {
            protocol: proto,
            seller_strategy: SellerStrategy::fixed_markup(1.3),
            ..QtConfig::default()
        };
        let out = run_algo(Algo::QtDp, &fed, BUYER, &q, &cfg);
        let plan = out.plan.expect("plan");
        let surplus: f64 = plan
            .purchases
            .iter()
            .map(|p| (p.agreed_value - p.offer.true_cost).max(0.0))
            .sum();
        t.push(vec![
            proto.label().into(),
            out.messages.to_string(),
            f(out.optimization_time),
            f(plan.est.additive_cost),
            f(surplus),
        ]);
    }
    t
}

/// E8 (Table 3, reconstructed): cooperative vs. competitive strategies.
pub fn e8() -> Table {
    let mut t = Table::new(
        "E8",
        "seller markup vs. buyer cost and seller surplus (Vickrey keeps truthful honest)",
        &[
            "strategy",
            "buyer cost",
            "seller surplus",
            "cost vs truthful",
        ],
    );
    let fed = build_federation(&spec(16, 3, 2, 3, 800));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, false, 8);
    let mut truthful_cost = f64::NAN;
    for (label, strat) in [
        ("truthful", SellerStrategy::Truthful),
        ("markup 1.25", SellerStrategy::fixed_markup(1.25)),
        ("markup 1.5", SellerStrategy::fixed_markup(1.5)),
        ("markup 2.0", SellerStrategy::fixed_markup(2.0)),
        ("adaptive 1.5", SellerStrategy::adaptive_markup(1.5)),
    ] {
        let cfg = QtConfig {
            seller_strategy: strat,
            ..QtConfig::default()
        };
        let out = run_algo(Algo::QtDp, &fed, BUYER, &q, &cfg);
        let plan = out.plan.expect("plan");
        let surplus: f64 = plan
            .purchases
            .iter()
            .map(|p| (p.agreed_value - p.offer.true_cost).max(0.0))
            .sum();
        if label == "truthful" {
            truthful_cost = plan.est.additive_cost;
        }
        t.push(vec![
            label.into(),
            f(plan.est.additive_cost),
            f(surplus),
            f(plan.est.additive_cost / truthful_cost),
        ]);
    }
    t
}

/// E9 (reconstructed): replication factor vs. plan cost and time.
pub fn e9() -> Table {
    let mut t = Table::new(
        "E9",
        "replication factor vs. QT plan cost/time; 16 nodes, 3-relation chain",
        &["replicas", "QT cost", "QT time", "QT msgs", "TradDP cost"],
    );
    for &r in &[1u32, 2, 4, 8] {
        let fed = build_federation(&spec(16, 3, 2, r, 900 + r as u64));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, false, 9);
        let cfg = QtConfig::default();
        let qt = run_algo(Algo::QtDp, &fed, BUYER, &q, &cfg);
        let trad = run_algo(Algo::TradDp, &fed, BUYER, &q, &cfg);
        t.push(vec![
            r.to_string(),
            f(qt.plan
                .as_ref()
                .map(|p| p.est.additive_cost)
                .unwrap_or(f64::NAN)),
            f(qt.optimization_time),
            qt.messages.to_string(),
            f(trad.plan.map(|p| p.est.additive_cost).unwrap_or(f64::NAN)),
        ]);
    }
    t
}

/// E10 (extension): §3.5 subcontracting on/off.
pub fn e10() -> Table {
    let mut t = Table::new(
        "E10",
        "subcontracting (extension): composite offers on a scattered 4-relation chain",
        &[
            "subcontracting",
            "plan cost",
            "iterations",
            "messages",
            "composite offers used",
        ],
    );
    // Every relation on a different node: no single node can join anything
    // without subcontracting.
    let fed = build_federation(&FederationSpec {
        nodes: 5,
        relations: 4,
        partitions_per_relation: 1,
        replication: 1,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 1000,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 4, false, 8);
    for enabled in [false, true] {
        let cfg = QtConfig {
            enable_subcontracting: enabled,
            max_partial_k: 1,
            ..QtConfig::default()
        };
        let out = run_algo_with_cfg(&fed, &q, &cfg);
        let plan = out.plan.expect("plan");
        let composites = plan
            .purchases
            .iter()
            .filter(|p| !p.offer.subcontracts.is_empty())
            .count();
        t.push(vec![
            enabled.to_string(),
            f(plan.est.additive_cost),
            out.iterations.to_string(),
            out.messages.to_string(),
            composites.to_string(),
        ]);
    }
    t
}

/// E11 (ablation): buyer predicates analyser on/off.
pub fn e11() -> Table {
    let mut t = Table::new(
        "E11",
        "buyer predicates analyser ablation (k=1 partial cap); off = one-shot Contract-Net",
        &[
            "analyser",
            "plan cost",
            "iterations",
            "messages",
            "sim time",
        ],
    );
    let fed = build_federation(&spec(6, 5, 1, 2, 600));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 5, false, 8);
    for enabled in [false, true] {
        let cfg = QtConfig {
            enable_buyer_analyser: enabled,
            max_partial_k: 1,
            ..QtConfig::default()
        };
        let out = run_algo_with_cfg(&fed, &q, &cfg);
        let plan = out.plan.expect("plan");
        t.push(vec![
            enabled.to_string(),
            f(plan.est.additive_cost),
            out.iterations.to_string(),
            out.messages.to_string(),
            f(out.optimization_time),
        ]);
    }
    t
}

/// E12 (ablation): k-way partial-offer cap of the modified DP.
pub fn e12() -> Table {
    let mut t = Table::new(
        "E12",
        "modified-DP partial-offer cap k vs. cost/messages; 6 nodes, 5-relation chain",
        &["max k", "plan cost", "iterations", "messages", "sim time"],
    );
    let fed = build_federation(&spec(6, 5, 1, 2, 600));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 5, false, 8);
    for k in 1..=4usize {
        let cfg = QtConfig {
            max_partial_k: k,
            ..QtConfig::default()
        };
        let out = run_algo_with_cfg(&fed, &q, &cfg);
        let plan = out.plan.expect("plan");
        t.push(vec![
            k.to_string(),
            f(plan.est.additive_cost),
            out.iterations.to_string(),
            out.messages.to_string(),
            f(out.optimization_time),
        ]);
    }
    t
}

fn run_algo_with_cfg(
    fed: &qt_workload::Federation,
    q: &qt_query::Query,
    cfg: &QtConfig,
) -> qt_core::QtOutcome {
    let mut sellers = seller_engines(fed, cfg);
    run_qt_direct(BUYER, fed.catalog.dict.clone(), q, &mut sellers, cfg)
}

/// E13 (extension): multi-dimensional valuation — freshness vs. speed.
///
/// One seller materializes the exact answer (fast but one refresh stale,
/// freshness 0.9); computing it live from base data is slower but fresh.
/// Sweeping the buyer's staleness weight flips the choice — the §3.1
/// weighting function at work beyond plain response time.
pub fn e13() -> Table {
    use qt_cost::Valuation;
    use qt_query::MaterializedView;
    use qt_workload::{telecom_federation, TelecomSpec};
    let mut t = Table::new(
        "E13",
        "buyer staleness weight vs. chosen source (stale view vs. fresh computation)",
        &[
            "w_staleness",
            "plan cost",
            "plan freshness",
            "bought from view",
        ],
    );
    let (catalog, _) = telecom_federation(&TelecomSpec {
        offices: 3,
        customers_per_office: 200,
        lines_per_customer: 10,
        invoice_replicas: 1,
        seed: 13,
    });
    let q = qt_query::parse_query(
        &catalog.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .expect("valid SQL");
    let view = MaterializedView::new("exact", q.clone());
    for w in [0.0f64, 0.5, 2.0, 10.0] {
        let cfg = QtConfig {
            valuation: Valuation {
                w_staleness: w,
                ..Valuation::response_time()
            },
            ..QtConfig::default()
        };
        let mut sellers: std::collections::BTreeMap<_, _> = catalog
            .nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    qt_core::SellerEngine::new(catalog.holdings_of(n), cfg.clone()),
                )
            })
            .collect();
        sellers.get_mut(&NodeId(1)).expect("corfu").views = vec![view.clone()];
        let out = run_qt_direct(BUYER, catalog.dict.clone(), &q, &mut sellers, &cfg);
        let plan = out.plan.expect("plan");
        let freshness = plan
            .purchases
            .iter()
            .map(|p| p.offer.props.freshness)
            .fold(1.0f64, f64::min);
        let from_view = plan
            .purchases
            .iter()
            .any(|p| p.offer.kind == qt_core::OfferKind::FromView);
        t.push(vec![
            f(w),
            f(plan.est.additive_cost),
            f(freshness),
            from_view.to_string(),
        ]);
    }
    t
}

/// E14 (extension): network topology — flat WAN vs. two-tier regions.
///
/// The same federation and query run on the simulator under a uniform WAN
/// and under a two-tier topology (fast intra-region links). Sellers cannot
/// observe the topology (autonomy), so offers are identical; the measured
/// trading time shows how much of QT's latency is pure transport.
pub fn e14() -> Table {
    use qt_core::run_qt_sim_with_topology;
    use qt_net::Topology;
    let mut t = Table::new(
        "E14",
        "trading time under flat WAN vs. two-tier regional topology; 16 nodes",
        &["topology", "sim time", "messages", "plan cost"],
    );
    let fed = build_federation(&spec(16, 3, 2, 2, 1400));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 3, false, 30);
    let cfg = QtConfig::default();
    let two_tier = |region_size: u32| {
        Topology::two_tier(region_size, qt_cost::NetLink::lan(), cfg.link).expect("region size")
    };
    let topologies: Vec<(&str, Topology)> = vec![
        ("uniform WAN", Topology::Uniform(cfg.link)),
        // With 4-node regions most sellers stay behind WAN uplinks: the
        // trading critical path (slowest responder) is unchanged.
        ("two-tier, 4-node regions", two_tier(4)),
        // One big region = campus LAN: transport latency vanishes from the
        // dialogue and only optimization compute remains.
        ("two-tier, single region", two_tier(16)),
    ];
    for (label, topo) in topologies {
        let sellers = seller_engines(&fed, &cfg);
        let (out, _) =
            run_qt_sim_with_topology(BUYER, fed.catalog.dict.clone(), &q, sellers, &cfg, topo);
        let plan = out.plan.expect("plan");
        t.push(vec![
            label.into(),
            f(out.optimization_time),
            out.messages.to_string(),
            f(plan.est.additive_cost),
        ]);
    }
    t
}

/// E15 (extension): availability under node failures.
///
/// Autonomous nodes are free to ignore RFBs; the buyer's timeout closes the
/// round with whoever answered. With replication 3, coverage survives
/// substantial outages; the sweep reports how often a plan exists and what
/// it costs as more of the market goes dark.
pub fn e15() -> Table {
    use qt_core::run_qt_sim;
    let mut t = Table::new(
        "E15",
        "market availability: fraction of sellers offline vs. plan success/cost; repl 3",
        &[
            "offline nodes",
            "plan found",
            "plan cost",
            "sim time",
            "timeouts fired",
        ],
    );
    let fed = build_federation(&spec(12, 3, 2, 3, 1500));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 3, false, 40);
    for offline in [0u32, 2, 4, 6, 8, 10] {
        let cfg = QtConfig {
            seller_timeout: 1.0,
            ..QtConfig::default()
        };
        let mut sellers = seller_engines(&fed, &cfg);
        // Deterministically take the highest-numbered nodes offline.
        for engine in sellers.values_mut().rev().take(offline as usize) {
            engine.offline_rounds = (0..16).collect();
        }
        let (out, metrics) = run_qt_sim(BUYER, fed.catalog.dict.clone(), &q, sellers, &cfg);
        t.push(vec![
            offline.to_string(),
            out.plan.is_some().to_string(),
            f(out.plan.map(|p| p.est.additive_cost).unwrap_or(f64::NAN)),
            f(out.optimization_time),
            metrics.kind_count("timeout").to_string(),
        ]);
    }
    t
}

/// E16 (extension/ablation): histogram-based cardinality estimation.
///
/// Skewed data (`b = 100·u^4`): range filters `b < cut` have true
/// selectivities far from the linear interpolation a min/max summary
/// implies. The table reports the q-error (max(est/actual, actual/est)) of
/// the row estimate with and without equi-depth histograms.
pub fn e16() -> Table {
    use qt_cost::CardinalityEstimator;
    use qt_exec::evaluate_query;
    let mut t = Table::new(
        "E16",
        "cardinality q-error on skewed data: equi-depth histograms vs. min/max interpolation",
        &[
            "filter",
            "actual rows",
            "est (hist)",
            "est (minmax)",
            "q-err hist",
            "q-err minmax",
        ],
    );
    let fed = build_federation(&FederationSpec {
        nodes: 4,
        relations: 1,
        partitions_per_relation: 1,
        replication: 1,
        rows_per_partition: 20_000,
        scale: 1,
        seed: 1600,
        with_data: true,
        speed_spread: 1.0,
        data_skew: 3.0,
    });
    // A catalog clone whose statistics lack histograms.
    let mut stripped = fed.catalog.clone();
    for stats in stripped.stats.values_mut() {
        for col in &mut stats.cols {
            col.histogram = None;
        }
    }
    let all = fed.union_store();
    for cut in [2i64, 5, 10, 25, 50, 90] {
        let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 1, false, cut);
        let actual = evaluate_query(&q, &all).expect("reference").len().max(1) as f64;
        let with_hist = CardinalityEstimator::new(&fed.catalog)
            .estimate(&q)
            .rows
            .max(1.0);
        let without = CardinalityEstimator::new(&stripped)
            .estimate(&q)
            .rows
            .max(1.0);
        let qerr = |est: f64| (est / actual).max(actual / est);
        t.push(vec![
            format!("b < {cut}"),
            f(actual),
            f(with_hist),
            f(without),
            f(qerr(with_hist)),
            f(qerr(without)),
        ]);
    }
    t
}

/// E17 (extension): the cost of stale central knowledge — the paper's core
/// autonomy argument, quantified.
///
/// Half the sellers' load spikes *after* the central catalog was collected.
/// QT sellers price offers with their live load and the buyer routes around
/// the busy replicas; the classical optimizer plans against the stale idle
/// view and its plan's *true* cost (re-priced at live loads) suffers.
pub fn e17() -> Table {
    use qt_baselines::{run_baseline, BaselineKind};
    use qt_core::{run_qt_direct, SellerEngine};
    use qt_cost::NodeResources;
    use std::collections::BTreeMap;
    let mut t = Table::new(
        "E17",
        "stale load knowledge: true plan cost of QT (live prices) vs. centralized DP (stale catalog)",
        &["load spike", "QT (live)", "TradDP (stale)", "TradDP (fresh oracle)", "stale / QT"],
    );
    let fed = build_federation(&spec(12, 3, 2, 3, 1700));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 3, false, 30);
    for spike in [1.0f64, 2.0, 4.0, 8.0] {
        // Live loads: odd nodes are busy.
        let live: BTreeMap<NodeId, NodeResources> = fed
            .catalog
            .nodes
            .iter()
            .map(|&n| {
                let mut r = NodeResources::reference();
                if n.0 % 2 == 1 {
                    r.load = spike;
                }
                (n, r)
            })
            .collect();
        let stale: BTreeMap<NodeId, NodeResources> = fed
            .catalog
            .nodes
            .iter()
            .map(|&n| (n, NodeResources::reference()))
            .collect();

        // True delivery cost of an offered fragment at live load.
        let true_cost_of = |offer: &qt_core::Offer, cfg: &QtConfig| -> f64 {
            let mut seller = SellerEngine::new(
                fed.catalog.holdings_of(offer.seller),
                QtConfig {
                    seller_strategy: qt_trade::SellerStrategy::Truthful,
                    ..cfg.clone()
                },
            );
            seller.resources = live[&offer.seller].clone();
            let resp = seller.respond(
                0,
                &[qt_core::RfbItem {
                    query: offer.query.clone(),
                    ref_value: f64::INFINITY,
                }],
            );
            resp.offers
                .iter()
                .filter(|o| o.query == offer.query && o.kind == offer.kind)
                .map(|o| o.true_cost)
                .fold(f64::INFINITY, f64::min)
        };
        let true_plan_cost = |plan: &qt_core::DistributedPlan, cfg: &QtConfig| -> f64 {
            plan.purchases
                .iter()
                .map(|p| true_cost_of(&p.offer, cfg))
                .sum::<f64>()
                + plan.est.buyer_compute
        };

        let cfg = QtConfig::default();
        // QT: sellers price with live loads.
        let mut sellers: BTreeMap<NodeId, SellerEngine> = fed
            .catalog
            .nodes
            .iter()
            .map(|&n| {
                let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
                e.resources = live[&n].clone();
                (n, e)
            })
            .collect();
        let qt = run_qt_direct(BUYER, fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
        let qt_cost = true_plan_cost(&qt.plan.expect("plan"), &cfg);

        // Classical: plans against the stale catalog, pays live prices.
        let stale_out = run_baseline(BaselineKind::TradDp, &fed.catalog, &stale, BUYER, &q, &cfg);
        let stale_cost = true_plan_cost(&stale_out.plan.expect("plan"), &cfg);
        // Fresh oracle: classical with live knowledge (lower bound).
        let fresh_out = run_baseline(BaselineKind::TradDp, &fed.catalog, &live, BUYER, &q, &cfg);
        let fresh_cost = true_plan_cost(&fresh_out.plan.expect("plan"), &cfg);

        t.push(vec![
            format!("{spike}x"),
            f(qt_cost),
            f(stale_cost),
            f(fresh_cost),
            f(stale_cost / qt_cost),
        ]);
    }
    t
}

/// An experiment entry: id + generator function.
pub type Experiment = (&'static str, fn() -> Table);

/// All experiments in order.
/// E18 (fault tolerance; the issue tracker's "E8 fault sweep" — id `e8` was
/// already taken by the seller-strategy comparison): plan cost, message
/// count, and degradation vs. message-loss rate and crashed-seller
/// fraction. The buyer's deadline/retransmission machinery must keep
/// returning valid plans as the network decays.
pub fn e18() -> Table {
    use qt_core::run_qt_sim_with_faults;
    use qt_net::{FaultPlan, Topology};
    let mut t = Table::new(
        "E18",
        "fault injection: loss rate / crashed sellers vs. plan success, cost, traffic; repl 3",
        &[
            "fault mix",
            "plan found",
            "plan cost",
            "messages",
            "dropped",
            "retries",
            "timeouts",
            "degraded rounds",
            "unreachable",
        ],
    );
    let fed = build_federation(&spec(12, 3, 2, 3, 1800));
    let q = gen_join_query_with_cut(&fed.catalog.dict, QueryShape::Chain, 3, false, 60);
    let crash = |plan: FaultPlan, nodes: u32| {
        // Crash the highest-numbered sellers for the entire run.
        (0..nodes).fold(plan, |p, i| p.with_crash(NodeId(11 - i), 0.0, 1e12))
    };
    let cases: Vec<(String, FaultPlan)> = vec![
        ("loss 0%".into(), FaultPlan::lossy(1801, 0.0)),
        ("loss 10%".into(), FaultPlan::lossy(1801, 0.10)),
        ("loss 25%".into(), FaultPlan::lossy(1801, 0.25)),
        ("loss 40%".into(), FaultPlan::lossy(1801, 0.40)),
        ("crash 2/12".into(), crash(FaultPlan::default(), 2)),
        ("crash 4/12".into(), crash(FaultPlan::default(), 4)),
        (
            "loss 10% + crash 2/12".into(),
            crash(FaultPlan::lossy(1801, 0.10), 2),
        ),
    ];
    for (label, plan) in cases {
        let cfg = QtConfig {
            seller_timeout: 2.0,
            ..QtConfig::default()
        };
        let sellers = seller_engines(&fed, &cfg);
        let (out, metrics) = run_qt_sim_with_faults(
            BUYER,
            fed.catalog.dict.clone(),
            &q,
            sellers,
            &cfg,
            Topology::Uniform(cfg.link),
            Some(plan),
        );
        t.push(vec![
            label,
            out.plan.is_some().to_string(),
            f(out.plan.map(|p| p.est.additive_cost).unwrap_or(f64::NAN)),
            out.messages.to_string(),
            metrics.dropped.to_string(),
            out.retries.to_string(),
            out.timeouts.to_string(),
            out.degraded_rounds.to_string(),
            out.unreachable_sellers.len().to_string(),
        ]);
    }
    t
}

/// E19: serving throughput vs. concurrency. A burst of 32 queries (synthetic
/// mix, arrival seed fixed) is served through 8- and 16-node federations at
/// admission limits 1→32, RFB batching on. Reported per cell: completed
/// queries per virtual second, p50/p95 session latency (arrival → plan,
/// queueing included), and protocol messages per query — which *drops* as
/// concurrency rises because same-instant RFBs to one seller coalesce into
/// one message.
pub fn e19() -> Table {
    use qt_core::{run_qt_serve, ServeConfig};
    use qt_workload::{gen_arrivals, synthetic_mix, ArrivalSpec};
    let mut t = Table::new(
        "E19",
        "serving throughput vs. concurrency; 32-query burst, RFB batching on",
        &[
            "sellers",
            "concurrency",
            "qps",
            "p50 latency",
            "p95 latency",
            "p99 latency",
            "p99.9 latency",
            "msgs/query",
        ],
    );
    for nodes in [8u32, 16] {
        let fed = build_federation(&spec(nodes, 3, 2, 2, 19));
        let mix = synthetic_mix(&fed.catalog.dict, 6, 19);
        let arrivals = gen_arrivals(
            &mix,
            &ArrivalSpec {
                n_queries: 32,
                mean_interarrival: 0.0,
                seed: 19,
            },
        );
        // Generous deadline: a deep admission queue must not trip the
        // retransmission machinery.
        let cfg = QtConfig {
            seller_timeout: 300.0,
            ..QtConfig::default()
        };
        for conc in [1usize, 2, 4, 8, 16, 32] {
            let out = run_qt_serve(
                BUYER,
                fed.catalog.dict.clone(),
                arrivals.clone(),
                seller_engines(&fed, &cfg),
                &cfg,
                &ServeConfig {
                    concurrency: conc,
                    batch_rfbs: true,
                    result_cache: None,
                },
            );
            t.push(vec![
                nodes.to_string(),
                conc.to_string(),
                f(out.qps),
                f(out.p50_latency),
                f(out.p95_latency),
                f(out.p99_latency),
                f(out.p999_latency),
                f(out.messages_per_query),
            ]);
        }
    }
    t
}

/// E20: contract-lifecycle failover. Sweeps winner-crash probability ×
/// crash placement (during bidding vs. after the award) over 8- and
/// 16-seller federations at replication 3, with the contract lifecycle on.
/// Each cell trades 8 queries; for the chosen fraction of them the
/// fault-free winner crashes either from t=0 ("bidding": the market routes
/// around it, no contracts are harmed) or right after trading finishes
/// ("post-award": the lease machinery must detect the loss and re-award or
/// re-trade the lost slots). Reported: completion rate (plans valid after
/// repair), re-awards, scoped re-trades, lease expiries + lost awards, and
/// mean plan-cost inflation vs. the fault-free plan. At replication ≥ 3 the
/// completion column must stay 1.000 — CI gates on it.
pub fn e20() -> Table {
    use qt_core::run_qt_sim_with_faults;
    use qt_net::{FaultPlan, Topology};
    let mut t = Table::new(
        "E20",
        "failover: crash prob x placement vs. completion, repairs, cost inflation; repl 3",
        &[
            "sellers",
            "placement",
            "crash prob",
            "completion",
            "reawards",
            "rescoped",
            "expiries+lost",
            "cost inflation",
        ],
    );
    const QUERIES: u64 = 8;
    for nodes in [8u32, 16] {
        let fed = build_federation(&spec(nodes, 3, 2, 3, 2000 + nodes as u64));
        let cfg = QtConfig {
            enable_contracts: true,
            ..QtConfig::default()
        };
        // Fault-free reference runs: winner + trading end per query.
        let clean: Vec<_> = (0..QUERIES)
            .map(|i| {
                let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, i % 2 == 0, i);
                let (out, _) = run_qt_sim_with_faults(
                    BUYER,
                    fed.catalog.dict.clone(),
                    &q,
                    seller_engines(&fed, &cfg),
                    &cfg,
                    Topology::Uniform(cfg.link),
                    None,
                );
                let plan = out.plan.as_ref().expect("fault-free plan");
                let winner = plan
                    .purchases
                    .iter()
                    .map(|p| p.offer.seller)
                    .find(|&s| s != BUYER);
                (q, winner, out.optimization_time, plan.est.additive_cost)
            })
            .collect();
        for placement in ["bidding", "post-award"] {
            for prob in [0.25f64, 0.5, 1.0] {
                let crashed = (prob * QUERIES as f64).round() as u64;
                let mut completed = 0u64;
                let mut reawards = 0u64;
                let mut rescoped = 0u64;
                let mut losses = 0u64;
                let mut inflation = 0.0f64;
                for (i, (q, winner, t_fin, clean_cost)) in clean.iter().enumerate() {
                    let faults = (*winner).filter(|_| (i as u64) < crashed).map(|w| {
                        let t0 = if placement == "bidding" {
                            0.0
                        } else {
                            t_fin + 1e-6
                        };
                        FaultPlan::default().with_crash(w, t0, 1e12)
                    });
                    let (out, m) = run_qt_sim_with_faults(
                        BUYER,
                        fed.catalog.dict.clone(),
                        q,
                        seller_engines(&fed, &cfg),
                        &cfg,
                        Topology::Uniform(cfg.link),
                        faults,
                    );
                    if let Some(plan) = &out.plan {
                        completed += 1;
                        inflation += plan.est.additive_cost / clean_cost;
                    }
                    reawards += out.reawards;
                    rescoped += out.rescoped_trades;
                    losses += m.lease_expiries + m.lost_awards;
                }
                t.push(vec![
                    nodes.to_string(),
                    placement.to_string(),
                    f(prob),
                    f(completed as f64 / QUERIES as f64),
                    reawards.to_string(),
                    rescoped.to_string(),
                    losses.to_string(),
                    f(inflation / completed.max(1) as f64),
                ]);
            }
        }
    }
    t
}

/// E21: the serving benchmark across transports — the discrete-event
/// simulator vs. the real thread-per-node runtime over in-process channels
/// and loopback TCP. Plans are bit-identical across all three (the
/// conformance suite in `qt-core` proves it); what differs is the clock:
/// the sim reports *virtual* seconds, the real transports *wall-clock*
/// seconds on however many cores the host has. Respects
/// `QT_BENCH_TRANSPORT` (`sim` | `threads` | `tcp` | `all`), set by the
/// repro binary's `--transport` flag, so a row subset can be regenerated.
pub fn e21() -> Table {
    use qt_core::{run_qt_serve, run_qt_serve_real, ServeConfig};
    use qt_net::{RealConfig, RealTransport};
    use qt_workload::{gen_arrivals, synthetic_mix, ArrivalSpec};
    let which = std::env::var("QT_BENCH_TRANSPORT").unwrap_or_else(|_| "all".into());
    let mut t = Table::new(
        "E21",
        "serving across transports: sim in virtual s, threads/tcp in wall-clock s; conc 8, 24-query burst",
        &[
            "transport",
            "sellers",
            "qps",
            "p50 latency",
            "p95 latency",
            "p99 latency",
            "p99.9 latency",
            "msgs/query",
        ],
    );
    for nodes in [8u32, 16] {
        let fed = build_federation(&spec(nodes, 3, 2, 2, 900 + nodes as u64));
        let mix = synthetic_mix(&fed.catalog.dict, 4, 9);
        let arrivals = gen_arrivals(
            &mix,
            &ArrivalSpec {
                n_queries: 24,
                mean_interarrival: 0.0,
                seed: 9,
            },
        );
        let cfg = QtConfig {
            // Admission-queued sessions must not trip response deadlines.
            seller_timeout: 300.0,
            ..QtConfig::default()
        };
        let serve_cfg = ServeConfig {
            concurrency: 8,
            batch_rfbs: true,
            result_cache: None,
        };
        for transport in ["sim", "threads", "tcp"] {
            if which != "all" && which != transport {
                continue;
            }
            let out = match transport {
                "sim" => run_qt_serve(
                    BUYER,
                    fed.catalog.dict.clone(),
                    arrivals.clone(),
                    seller_engines(&fed, &cfg),
                    &cfg,
                    &serve_cfg,
                ),
                _ => run_qt_serve_real(
                    BUYER,
                    fed.catalog.dict.clone(),
                    arrivals.clone(),
                    seller_engines(&fed, &cfg),
                    &cfg,
                    &serve_cfg,
                    RealConfig {
                        transport: if transport == "threads" {
                            RealTransport::Threads
                        } else {
                            RealTransport::Tcp
                        },
                        ..RealConfig::default()
                    },
                ),
            };
            t.push(vec![
                transport.to_string(),
                nodes.to_string(),
                f(out.qps),
                f(out.p50_latency),
                f(out.p95_latency),
                f(out.p99_latency),
                f(out.p999_latency),
                f(out.messages_per_query),
            ]);
        }
    }
    t
}

/// Convert columnar executor timings into calibration observations.
pub fn observations_from(stats: &qt_exec::ColExecStats) -> Vec<qt_cost::Observation> {
    stats
        .timings
        .iter()
        .map(|t| qt_cost::Observation {
            op: t.op.to_string(),
            rows_in: t.rows_in,
            rows_out: t.rows_out,
            bytes_in: t.bytes_in,
            secs: t.secs,
        })
        .collect()
}

/// The 100x-scaled analytical plan E22 measures throughput on:
/// filter → hash join → hash aggregate over r0 ⋈ r1.
fn e22_plan(dict: &qt_catalog::SchemaDict) -> qt_exec::PhysPlan {
    use qt_exec::{AggSpec, PhysPlan};
    use qt_query::{AggFunc, Col, CompOp, Predicate};
    let union_scan = |rel: qt_catalog::RelId| PhysPlan::Union {
        inputs: dict
            .parts_of(rel)
            .map(|part| PhysPlan::Scan { part, arity: 3 })
            .collect(),
    };
    let r0 = qt_catalog::RelId(0);
    let r1 = qt_catalog::RelId(1);
    PhysPlan::HashAggregate {
        input: Box::new(PhysPlan::HashJoin {
            left: Box::new(PhysPlan::Filter {
                input: Box::new(union_scan(r0)),
                predicates: vec![Predicate::with_const(Col::new(r0, 1), CompOp::Lt, 50i64)],
            }),
            right: Box::new(union_scan(r1)),
            left_keys: vec![Col::new(r0, 0)],
            right_keys: vec![Col::new(r1, 0)],
        }),
        group_by: vec![Col::new(r1, 1)],
        aggs: vec![
            AggSpec {
                func: AggFunc::Sum,
                arg: Some(Col::new(r0, 2)),
            },
            AggSpec {
                func: AggFunc::Count,
                arg: None,
            },
        ],
    }
}

/// The measured core of E22: columnar-vs-row throughput on the 100x
/// dataset, spill counters from a memory-constrained rerun, and the cost
/// calibration fit. Shared with `bench_snapshot`, which gates CI on the
/// speedup, the spill counters, and the error reduction.
pub struct ColumnarSnapshot {
    pub input_rows: u64,
    pub row_rows_per_s: f64,
    pub columnar_rows_per_s: f64,
    pub speedup: f64,
    pub spill_files: u64,
    pub spill_rows: u64,
    pub spill_bytes: u64,
    pub calib_error_before: f64,
    pub calib_error_after: f64,
    pub calibrated: qt_cost::CostParams,
}

/// Run the columnar/row throughput comparison (best of 3 per executor,
/// results asserted bit-identical), the 64 KiB spill-budget rerun, and the
/// calibration fit over the columnar run's operator timings.
pub fn columnar_snapshot() -> ColumnarSnapshot {
    use qt_cost::{cost_error, CalibrationTable, CostParams};
    use qt_exec::{execute, execute_columnar_with_stats, ColumnarConfig};
    use std::time::Instant;
    let fed = build_federation(&FederationSpec {
        nodes: 4,
        relations: 2,
        partitions_per_relation: 2,
        replication: 1,
        rows_per_partition: 1_000,
        scale: 100,
        seed: 2200,
        with_data: true,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let all = fed.union_store();
    let plan = e22_plan(&fed.catalog.dict);
    let input_rows: u64 = fed
        .catalog
        .dict
        .rel_ids()
        .flat_map(|r| fed.catalog.dict.parts_of(r))
        .map(|p| fed.catalog.stats(p).rows)
        .sum();

    let mut row_secs = f64::INFINITY;
    let mut row_result = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        row_result = execute(&plan, &all, &[]).expect("row exec");
        row_secs = row_secs.min(t0.elapsed().as_secs_f64().max(1e-9));
    }

    let cfg = ColumnarConfig::default();
    let mut col_secs = f64::INFINITY;
    let mut stats = qt_exec::ColExecStats::default();
    for _ in 0..3 {
        let t0 = Instant::now();
        let (col_result, s) =
            execute_columnar_with_stats(&plan, &all, &[], &cfg).expect("columnar");
        col_secs = col_secs.min(t0.elapsed().as_secs_f64().max(1e-9));
        assert_eq!(col_result, row_result, "columnar must match the row oracle");
        stats = s;
    }

    let spill_cfg = ColumnarConfig {
        mem_budget_bytes: 64 * 1024,
        ..ColumnarConfig::default()
    };
    let (spill_result, spill_stats) =
        execute_columnar_with_stats(&plan, &all, &[], &spill_cfg).expect("columnar spill");
    assert_eq!(
        spill_result, row_result,
        "spilled run must match the oracle"
    );
    assert!(spill_stats.spill_files > 0, "64 KiB budget must spill");

    let obs = observations_from(&stats);
    let analytic = CostParams::reference();
    let calibrated = CalibrationTable::fit(&obs).apply(&analytic);
    ColumnarSnapshot {
        input_rows,
        row_rows_per_s: input_rows as f64 / row_secs,
        columnar_rows_per_s: input_rows as f64 / col_secs,
        speedup: row_secs / col_secs,
        spill_files: spill_stats.spill_files,
        spill_rows: spill_stats.spill_rows,
        spill_bytes: spill_stats.spill_bytes,
        calib_error_before: cost_error(&analytic, &obs),
        calib_error_after: cost_error(&calibrated, &obs),
        calibrated,
    }
}

/// E22 (extension, ROADMAP item 4): columnar execution and the cost
/// calibration loop.
///
/// (a) Throughput of the columnar executor vs the row oracle on a
/// 100x-scaled dataset (same plan, bit-identical results — asserted), plus a
/// spill-constrained run whose memory budget is far below the join build
/// side. (b) The loop closed: execute a traded plan columnar, fit a
/// `qt_cost::CalibrationTable` from its measured operator timings, and
/// compare estimated-vs-measured cost error before and after calibration —
/// then re-trade with calibrated params and execute that plan too.
///
/// Unlike the negotiation experiments this one reports *wall-clock* numbers;
/// rows and plans stay seed-deterministic, timings vary with the host.
pub fn e22() -> Table {
    use qt_cost::CostParams;
    use qt_exec::ColumnarConfig;
    use std::time::Instant;
    let mut t = Table::new(
        "E22",
        "columnar executor vs row oracle on a 100x dataset; cost calibration closes the estimate loop",
        &["metric", "value"],
    );
    // (a) Throughput on the 100x dataset, spill correctness, calibration.
    let snap = columnar_snapshot();
    t.push(vec!["input rows".into(), snap.input_rows.to_string()]);
    t.push(vec!["row exec rows/s".into(), f(snap.row_rows_per_s)]);
    t.push(vec!["columnar rows/s".into(), f(snap.columnar_rows_per_s)]);
    t.push(vec!["columnar speedup".into(), f(snap.speedup)]);
    t.push(vec![
        "spill files (64 KiB budget)".into(),
        snap.spill_files.to_string(),
    ]);
    t.push(vec!["spill rows".into(), snap.spill_rows.to_string()]);
    t.push(vec![
        "cost error (analytic)".into(),
        f(snap.calib_error_before),
    ]);
    t.push(vec![
        "cost error (calibrated)".into(),
        f(snap.calib_error_after),
    ]);

    // (b) Re-trade with calibrated params; execute both traded plans.
    let analytic = CostParams::reference();
    let calibrated = snap.calibrated.clone();
    let cfg = ColumnarConfig::default();
    let trade_fed = build_federation(&FederationSpec {
        nodes: 4,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 200,
        scale: 100,
        seed: 2201,
        with_data: true,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query(&trade_fed.catalog.dict, QueryShape::Chain, 2, true, 2202);
    let mut exec_secs = Vec::new();
    for params in [analytic.clone(), calibrated.clone()] {
        let cfg_trade = QtConfig {
            cost_params: params,
            ..QtConfig::default()
        };
        let mut sellers = seller_engines(&trade_fed, &cfg_trade);
        let out = run_qt_direct(
            BUYER,
            trade_fed.catalog.dict.clone(),
            &q,
            &mut sellers,
            &cfg_trade,
        );
        let dplan = out.plan.expect("trade converges");
        let t0 = Instant::now();
        let (result, _) = dplan
            .execute_columnar_on(&trade_fed.catalog.dict, &trade_fed.stores, &cfg)
            .expect("plan executes");
        exec_secs.push((t0.elapsed().as_secs_f64().max(1e-9), result.len()));
    }
    t.push(vec![
        "traded plan exec s (analytic)".into(),
        f(exec_secs[0].0),
    ]);
    t.push(vec![
        "traded plan exec s (calibrated)".into(),
        f(exec_secs[1].0),
    ]);
    t.push(vec![
        "calibrated/analytic exec ratio".into(),
        f(exec_secs[1].0 / exec_secs[0].0),
    ]);
    t
}

/// One serving run of the Zipf(`skew`) template stream at `offices`
/// telecom sellers under the given result-cache arm (`"none"`, `"exact"`,
/// or `"semantic"`); returns the outcome and the cache's counters (zeroed
/// for the no-cache arm). The stream draws 48 arrivals from a 1024-query
/// template family — one wide subsumer plus 1023 constant-varying
/// near-duplicates — so an exact-fingerprint cache only hits on Zipf
/// repeats while the semantic cache answers every subsumed variant.
fn semcache_run(
    offices: u32,
    skew: f64,
    arm: &str,
) -> (qt_core::ServeOutcome, qt_trade::semcache::CacheStats) {
    use qt_core::{run_qt_serve, SellerEngine, ServeConfig, SharedResultCache};
    use qt_trade::semcache::SemCache;
    use qt_workload::{gen_arrivals_zipf, telecom_federation, template_mix, ArrivalSpec};
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};
    let (cat, _) = telecom_federation(&qt_workload::TelecomSpec {
        offices,
        invoice_replicas: 2,
        ..qt_workload::TelecomSpec::default()
    });
    let mix = template_mix(&cat.dict, 1023, 23);
    let arrivals = gen_arrivals_zipf(
        &mix,
        &ArrivalSpec {
            n_queries: 48,
            mean_interarrival: 0.5,
            seed: 23,
        },
        skew,
    );
    let cfg = QtConfig {
        enable_semantic_cache: true,
        // Admission-queued sessions must not trip retransmission deadlines.
        seller_timeout: 300.0,
        ..QtConfig::default()
    };
    let sellers: BTreeMap<_, _> = cat
        .nodes
        .iter()
        .map(|&n| (n, SellerEngine::new(cat.holdings_of(n), cfg.clone())))
        .collect();
    let cache: Option<SharedResultCache> = match arm {
        "none" => None,
        "exact" => Some(Arc::new(Mutex::new(SemCache::exact_only(0)))),
        _ => Some(Arc::new(Mutex::new(SemCache::new(0)))),
    };
    let out = run_qt_serve(
        BUYER,
        cat.dict.clone(),
        arrivals,
        sellers,
        &cfg,
        &ServeConfig {
            concurrency: 8,
            batch_rfbs: true,
            result_cache: cache.clone(),
        },
    );
    let stats = cache
        .map(|c| *c.lock().expect("cache lock").stats())
        .unwrap_or_default();
    (out, stats)
}

/// The CI-gated core of E23 at 16 sellers, Zipf(1.1): the semantic arm vs.
/// the exact-fingerprint baseline vs. no cache. Shared with
/// `bench_snapshot`, whose schema validation gates on
/// `hit_ratio_vs_exact >= 2` and strictly fewer messages per query.
pub struct SemanticCacheSnapshot {
    pub sellers: u32,
    pub skew: f64,
    pub n_queries: usize,
    pub mix_size: usize,
    pub hit_rate_semantic: f64,
    pub hit_rate_exact_baseline: f64,
    pub hit_ratio_vs_exact: f64,
    pub msgs_per_query_semantic: f64,
    pub msgs_per_query_exact: f64,
    pub msgs_per_query_nocache: f64,
    pub hits_exact: u64,
    pub hits_semantic: u64,
    pub misses: u64,
    pub insertions: u64,
    pub invalidated: u64,
}

/// Run the three E23 arms once at the gated operating point.
pub fn semantic_cache_snapshot() -> SemanticCacheSnapshot {
    let (nocache, _) = semcache_run(16, 1.1, "none");
    let (exact, exact_stats) = semcache_run(16, 1.1, "exact");
    let (semantic, sem_stats) = semcache_run(16, 1.1, "semantic");
    SemanticCacheSnapshot {
        sellers: 16,
        skew: 1.1,
        n_queries: 48,
        mix_size: 1024,
        hit_rate_semantic: sem_stats.hit_rate(),
        hit_rate_exact_baseline: exact_stats.hit_rate(),
        hit_ratio_vs_exact: sem_stats.hit_rate() / exact_stats.hit_rate().max(1e-12),
        msgs_per_query_semantic: semantic.messages_per_query,
        msgs_per_query_exact: exact.messages_per_query,
        msgs_per_query_nocache: nocache.messages_per_query,
        hits_exact: sem_stats.hits_exact,
        hits_semantic: sem_stats.hits_semantic,
        misses: sem_stats.misses,
        insertions: sem_stats.insertions,
        invalidated: sem_stats.invalidated,
    }
}

/// E23 (tentpole, ROADMAP item 3): the federation-shared semantic result
/// cache on Zipf template mixes. Three arms per operating point — no
/// cache, exact-fingerprint cache (the PR-1 baseline), and the semantic
/// subsumption cache — reporting hit rate, messages per query, and latency
/// percentiles vs. skew at 8 and 16 sellers. All virtual-time, fully
/// deterministic.
pub fn e23() -> Table {
    let mut t = Table::new(
        "E23",
        "semantic result cache on Zipf template mixes (48 arrivals, 1024-query family, conc 8): hit rate, message economy, latency vs skew",
        &[
            "sellers",
            "skew",
            "cache",
            "hit rate",
            "msgs/query",
            "p50 latency",
            "p95 latency",
            "p99 latency",
        ],
    );
    for offices in [8u32, 16] {
        for skew in [0.0, 0.6, 1.1, 1.5] {
            for arm in ["none", "exact", "semantic"] {
                let (out, stats) = semcache_run(offices, skew, arm);
                t.push(vec![
                    offices.to_string(),
                    f(skew),
                    arm.to_string(),
                    f(stats.hit_rate()),
                    f(out.messages_per_query),
                    f(out.p50_latency),
                    f(out.p95_latency),
                    f(out.p99_latency),
                ]);
            }
        }
    }
    t
}

pub fn all() -> Vec<Experiment> {
    vec![
        ("e1", e1 as fn() -> Table),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
        ("e16", e16),
        ("e17", e17),
        ("e18", e18),
        ("e19", e19),
        ("e20", e20),
        ("e21", e21),
        ("e22", e22),
        ("e23", e23),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke-test the cheap experiments (the expensive sweeps run via the
    // repro binary; see EXPERIMENTS.md).

    #[test]
    fn e6_converges_monotonically() {
        let t = e6();
        assert!(!t.rows.is_empty());
        let costs: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "{costs:?}");
        }
    }

    #[test]
    fn e18_survives_faults_with_valid_plans() {
        let t = e18();
        assert!(
            t.rows.iter().all(|r| r[1] == "true"),
            "replication 3 must cover every fault mix\n{}",
            t.render()
        );
        // The clean row injects nothing.
        assert_eq!(t.rows[0][4], "0", "loss 0% must drop nothing");
        assert_eq!(t.rows[0][7], "0", "loss 0% must not degrade");
        // ≥10% loss: the deadline/retransmission machinery shows up.
        let retries: u64 = t.rows[1][5].parse().unwrap();
        let timeouts: u64 = t.rows[1][6].parse().unwrap();
        assert!(retries + timeouts > 0, "{}", t.render());
        // Crashed sellers are reported unreachable.
        let unreachable: u64 = t.rows[4][8].parse().unwrap();
        assert!(unreachable >= 1, "{}", t.render());
    }

    #[test]
    fn e20_failover_completes_everything_at_replication_3() {
        let t = e20();
        // The CI gate: at replication >= 3 every crash scenario completes.
        assert!(
            t.rows.iter().all(|r| r[3].parse::<f64>().unwrap() == 1.0),
            "failover left queries without plans\n{}",
            t.render()
        );
        // Post-award crashes exercise the repair machinery; bidding-time
        // crashes are routed around by the market without any repair.
        for r in &t.rows {
            let repairs: u64 = r[4].parse::<u64>().unwrap() + r[5].parse::<u64>().unwrap();
            let losses: u64 = r[6].parse().unwrap();
            if r[1] == "post-award" {
                assert!(repairs >= 1, "{}", t.render());
                assert!(losses >= 1, "{}", t.render());
            } else {
                assert_eq!(repairs, 0, "{}", t.render());
            }
        }
    }

    #[test]
    fn e8_markup_is_monotone_in_buyer_cost() {
        let t = e8();
        let truthful: f64 = t.rows[0][1].parse().unwrap();
        let m2: f64 = t.rows[3][1].parse().unwrap();
        assert!(m2 >= truthful, "{}", t.render());
    }

    #[test]
    fn e10_subcontracting_runs() {
        let t = e10();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn e11_analyser_never_hurts_cost() {
        let t = e11();
        let off: f64 = t.rows[0][1].parse().unwrap();
        let on: f64 = t.rows[1][1].parse().unwrap();
        assert!(on <= off + 1e-9, "{}", t.render());
    }

    #[test]
    fn e12_more_partials_never_hurt_cost() {
        let t = e12();
        let k1: f64 = t.rows[0][1].parse().unwrap();
        let k4: f64 = t.rows[3][1].parse().unwrap();
        assert!(k4 <= k1 + 1e-9, "{}", t.render());
    }
}
