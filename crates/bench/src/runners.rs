//! Uniform runner over all algorithms compared in the experiments.

use qt_baselines::{run_baseline, BaselineKind};
use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig, QtOutcome, SellerEngine};
use qt_optimizer::JoinEnumerator;
use qt_query::Query;
use qt_workload::Federation;
use std::collections::BTreeMap;

/// The algorithms the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Query trading, sellers enumerate exhaustively.
    QtDp,
    /// Query trading, sellers run IDP-M(2,5).
    QtIdp,
    /// Centralized exhaustive DP with global knowledge.
    TradDp,
    /// Centralized IDP-M(2,5) with global knowledge.
    TradIdp,
    /// Fetch all base fragments, join everything at the buyer.
    ShipAll,
}

impl Algo {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::QtDp => "QT-DP",
            Algo::QtIdp => "QT-IDP",
            Algo::TradDp => "TradDP",
            Algo::TradIdp => "TradIDP",
            Algo::ShipAll => "ShipAll",
        }
    }

    /// All algorithms, in table order.
    pub fn all() -> [Algo; 5] {
        [
            Algo::QtDp,
            Algo::QtIdp,
            Algo::TradDp,
            Algo::TradIdp,
            Algo::ShipAll,
        ]
    }
}

/// Fresh seller engines for every node of `fed`, with its heterogeneous
/// resources applied.
pub fn seller_engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

/// Run `algo` on `query` over `catalog`, buyer at `buyer_node`, starting
/// from `base` configuration.
pub fn run_algo(
    algo: Algo,
    fed: &Federation,
    buyer_node: NodeId,
    query: &Query,
    base: &QtConfig,
) -> QtOutcome {
    match algo {
        Algo::QtDp | Algo::QtIdp => {
            let cfg = QtConfig {
                enumerator: if algo == Algo::QtIdp {
                    JoinEnumerator::idp_2_5()
                } else {
                    JoinEnumerator::Exhaustive
                },
                ..base.clone()
            };
            let mut sellers = seller_engines(fed, &cfg);
            run_qt_direct(
                buyer_node,
                fed.catalog.dict.clone(),
                query,
                &mut sellers,
                &cfg,
            )
        }
        Algo::TradDp => run_baseline(
            BaselineKind::TradDp,
            &fed.catalog,
            &fed.resources,
            buyer_node,
            query,
            base,
        ),
        Algo::TradIdp => run_baseline(
            BaselineKind::TradIdp { k: 2, m: 5 },
            &fed.catalog,
            &fed.resources,
            buyer_node,
            query,
            base,
        ),
        Algo::ShipAll => run_baseline(
            BaselineKind::ShipAll,
            &fed.catalog,
            &fed.resources,
            buyer_node,
            query,
            base,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_workload::{build_federation, gen_join_query, FederationSpec, QueryShape};

    #[test]
    fn all_algorithms_produce_plans_on_the_default_federation() {
        let fed = build_federation(&FederationSpec::default());
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, false, 1);
        for algo in Algo::all() {
            let out = run_algo(algo, &fed, NodeId(0), &q, &QtConfig::default());
            assert!(out.plan.is_some(), "{} found no plan", algo.label());
            assert!(out.optimization_time > 0.0, "{}", algo.label());
        }
    }

    #[test]
    fn traddp_quality_is_a_lower_bound_for_shipall() {
        let fed = build_federation(&FederationSpec::default());
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, false, 2);
        let cfg = QtConfig::default();
        let dp = run_algo(Algo::TradDp, &fed, NodeId(0), &q, &cfg);
        let ship = run_algo(Algo::ShipAll, &fed, NodeId(0), &q, &cfg);
        assert!(dp.plan.unwrap().est.additive_cost <= ship.plan.unwrap().est.additive_cost + 1e-9);
    }
}
