//! Experiment harness: regenerates every table/figure of the evaluation.
//!
//! Run `cargo run -p qt-bench --bin repro --release -- all` to regenerate
//! everything; each experiment prints a paper-style table and writes
//! `results/<id>.csv`. `EXPERIMENTS.md` indexes the experiments and records
//! measured-vs-expected shapes.

pub mod experiments;
pub mod runners;
pub mod table;

pub use runners::{run_algo, Algo};
pub use table::Table;
