//! Aligned text tables + CSV output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple result table: headers and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"E3"`.
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write as CSV to `dir/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }
}

/// Compact float formatting for table cells.
pub fn f(x: f64) -> String {
    if !x.is_finite() {
        "inf".into()
    } else if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("E0", "demo", &["n", "value"]);
        t.push(vec!["2".into(), "10.00".into()]);
        t.push(vec!["16".into(), "3.14".into()]);
        let r = t.render();
        assert!(r.contains("E0: demo"));
        assert!(r.contains(" n"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let dir = std::env::temp_dir().join("qt-bench-test");
        let mut t = Table::new("EX", "x", &["a,b", "c"]);
        t.push(vec!["v\"1".into(), "2".into()]);
        let p = t.write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.contains("\"a,b\""));
        assert!(s.contains("\"v\"\"1\""));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(5.678), "5.68");
        assert_eq!(f(0.001234), "0.0012");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(f64::INFINITY), "inf");
    }
}
