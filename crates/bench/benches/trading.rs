//! Criterion micro-benches: full QT rounds and protocol negotiation.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_bench::runners::seller_engines;
use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig};
use qt_trade::{Bid, ProtocolKind};
use qt_workload::{build_federation, gen_join_query, FederationSpec, QueryShape};

fn bench_full_trading_run(c: &mut Criterion) {
    let fed = build_federation(&FederationSpec {
        nodes: 16,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 5,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 5);
    let mut group = c.benchmark_group("qt_direct_16_nodes_3way");
    for parallel in [false, true] {
        let cfg = QtConfig {
            parallel,
            ..QtConfig::default()
        };
        group.bench_function(if parallel { "parallel" } else { "serial" }, |b| {
            b.iter(|| {
                let mut sellers = seller_engines(&fed, &cfg);
                let out =
                    run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
                std::hint::black_box(out.plan.map(|p| p.est.additive_cost))
            });
        });
    }
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let bids: Vec<Bid> = (0..32)
        .map(|i| Bid::new(NodeId(i), 10.0 + i as f64, 8.0 + i as f64 * 0.9))
        .collect();
    let mut group = c.benchmark_group("negotiate_32_bids");
    for proto in [
        ProtocolKind::SealedBid,
        ProtocolKind::Vickrey,
        ProtocolKind::English { decrement: 0.05 },
        ProtocolKind::Bargaining { max_rounds: 8 },
    ] {
        group.bench_function(proto.label(), |b| {
            b.iter(|| std::hint::black_box(proto.negotiate(&bids, f64::INFINITY)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_trading_run, bench_protocols);
criterion_main!(benches);
