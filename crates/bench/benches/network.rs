//! Criterion micro-bench: discrete-event simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_catalog::NodeId;
use qt_cost::NetLink;
use qt_net::{Ctx, Handler, Simulator, Topology};

struct Relay {
    next: NodeId,
    remaining: u32,
}

impl Handler<u32> for Relay {
    fn on_message(&mut self, ctx: &mut Ctx<u32>, _from: NodeId, msg: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.next, msg + 1, 64.0, "relay");
        }
    }
}

fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("sim_10k_events_ring", |b| {
        b.iter(|| {
            let nodes = 8u32;
            let mut sim: Simulator<u32, Relay> = Simulator::new(Topology::Uniform(NetLink::lan()));
            for i in 0..nodes {
                sim.add_node(
                    NodeId(i),
                    Relay {
                        next: NodeId((i + 1) % nodes),
                        remaining: 10_000 / nodes,
                    },
                );
            }
            sim.inject(0.0, NodeId(0), NodeId(0), 0, "start");
            std::hint::black_box(sim.run(10_000))
        });
    });
}

criterion_group!(benches, bench_event_loop);
criterion_main!(benches);
