//! Criterion micro-benches: the §3.4 query rewrite and view matching.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_catalog::NodeId;
use qt_query::views::match_view;
use qt_query::{rewrite_for_holdings, MaterializedView};
use qt_workload::{build_federation, gen_join_query, FederationSpec, QueryShape};

fn bench_rewrite(c: &mut Criterion) {
    let fed = build_federation(&FederationSpec {
        nodes: 8,
        relations: 6,
        partitions_per_relation: 8,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 3,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 6, false, 3);
    let holdings = fed.catalog.holdings_of(NodeId(1));
    c.bench_function("rewrite_for_holdings", |b| {
        b.iter(|| std::hint::black_box(rewrite_for_holdings(&q, &holdings)));
    });
}

fn bench_view_match(c: &mut Criterion) {
    let fed = build_federation(&FederationSpec {
        nodes: 4,
        relations: 3,
        partitions_per_relation: 2,
        replication: 1,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 4,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 4);
    let view = MaterializedView::new("v", q.clone());
    c.bench_function("match_view_exact_aggregate", |b| {
        b.iter(|| std::hint::black_box(match_view(&view.query, &q)));
    });
}

criterion_group!(benches, bench_rewrite, bench_view_match);
criterion_main!(benches);
