//! Criterion micro-benches: local join enumeration (DP vs IDP) at
//! increasing join counts, and the buyer plan generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qt_catalog::NodeId;
use qt_core::plangen::PlanGenerator;
use qt_core::{QtConfig, SellerEngine};
use qt_cost::NodeResources;
use qt_optimizer::{JoinEnumerator, LocalOptimizer};
use qt_workload::{build_federation, gen_join_query, FederationSpec, QueryShape};

fn bench_enumerators(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_optimize");
    for n in [4usize, 6, 8] {
        let fed = build_federation(&FederationSpec {
            nodes: 1,
            relations: n,
            partitions_per_relation: 2,
            replication: 1,
            rows_per_partition: 100_000,
            scale: 1,
            seed: 1,
            with_data: false,
            speed_spread: 1.0,
            data_skew: 0.0,
        });
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, n, false, 1);
        group.bench_with_input(BenchmarkId::new("DP", n), &n, |b, _| {
            let opt = LocalOptimizer::new(&fed.catalog);
            b.iter(|| std::hint::black_box(opt.optimize(&q).cost));
        });
        group.bench_with_input(BenchmarkId::new("IDP(2,5)", n), &n, |b, _| {
            let opt = LocalOptimizer::new(&fed.catalog).with_enumerator(JoinEnumerator::idp_2_5());
            b.iter(|| std::hint::black_box(opt.optimize(&q).cost));
        });
    }
    group.finish();
}

fn bench_plan_generator(c: &mut Criterion) {
    let fed = build_federation(&FederationSpec {
        nodes: 16,
        relations: 4,
        partitions_per_relation: 4,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed: 2,
        with_data: false,
        speed_spread: 1.0,
        data_skew: 0.0,
    });
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 4, false, 2);
    let cfg = QtConfig::default();
    // Gather one round of offers.
    let mut offers = Vec::new();
    for &n in &fed.catalog.nodes {
        let mut s = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
        offers.extend(
            s.respond(
                0,
                &[qt_core::RfbItem {
                    query: q.clone(),
                    ref_value: f64::INFINITY,
                }],
            )
            .offers,
        );
    }
    c.bench_function("plan_generator_round", |b| {
        let pg = PlanGenerator {
            dict: &fed.catalog.dict,
            query: &q,
            config: &cfg,
            buyer_resources: NodeResources::reference(),
        };
        b.iter(|| {
            let gen = pg.generate(&offers);
            std::hint::black_box(gen.plan.map(|p| p.est.additive_cost))
        });
    });
    let _ = NodeId(0);
}

criterion_group!(benches, bench_enumerators, bench_plan_generator);
criterion_main!(benches);
