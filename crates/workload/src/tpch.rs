//! A TPC-H-like analytical schema, scaled down and horizontally partitioned
//! across the federation — the "data products on the internet" flavor of
//! workload the paper's introduction motivates.
//!
//! Relations (a star around `lineitem`):
//!
//! ```text
//! region(regionkey, rname)
//! nation(nationkey, regionkey, nname)
//! supplier(suppkey, nationkey, sbalance)
//! customer(custkey, nationkey, cbalance)
//! orders(orderkey, custkey, ototal)
//! lineitem(orderkey, suppkey, quantity, price)
//! ```
//!
//! `lineitem` and `orders` are hash-partitioned on their keys and scattered;
//! dimensions are replicated. All values are integers/floats so the standard
//! estimator applies.

use qt_catalog::{
    AttrType, Catalog, CatalogBuilder, NodeId, PartId, Partitioning, RelId, RelationSchema, Value,
};
use qt_exec::DataStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Scale and layout of the TPC-H-like federation.
#[derive(Debug, Clone)]
pub struct TpchSpec {
    /// Number of federation nodes.
    pub nodes: u32,
    /// Orders count (lineitems ≈ 4×, customers ≈ orders/10).
    pub orders: u32,
    /// Partitions for `orders`/`lineitem`.
    pub fact_partitions: u16,
    /// Replicas for the dimension tables.
    pub dim_replicas: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchSpec {
    fn default() -> Self {
        TpchSpec {
            nodes: 6,
            orders: 200,
            fact_partitions: 2,
            dim_replicas: 2,
            seed: 1,
        }
    }
}

/// Relation ids of the TPC-H-like schema, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchRels {
    /// `region`
    pub region: RelId,
    /// `nation`
    pub nation: RelId,
    /// `supplier`
    pub supplier: RelId,
    /// `customer`
    pub customer: RelId,
    /// `orders`
    pub orders: RelId,
    /// `lineitem`
    pub lineitem: RelId,
}

/// Build the federation with materialized data. Returns the catalog, the
/// per-node stores, and the relation ids.
pub fn tpch_federation(spec: &TpchSpec) -> (Catalog, BTreeMap<NodeId, DataStore>, TpchRels) {
    assert!(spec.nodes >= 1 && spec.orders >= 10);
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    let schemas: Vec<(RelationSchema, Partitioning)> = vec![
        (
            RelationSchema::new(
                "region",
                vec![("regionkey", AttrType::Int), ("rname", AttrType::Str)],
            ),
            Partitioning::Single,
        ),
        (
            RelationSchema::new(
                "nation",
                vec![
                    ("nationkey", AttrType::Int),
                    ("regionkey", AttrType::Int),
                    ("nname", AttrType::Str),
                ],
            ),
            Partitioning::Single,
        ),
        (
            RelationSchema::new(
                "supplier",
                vec![
                    ("suppkey", AttrType::Int),
                    ("nationkey", AttrType::Int),
                    ("sbalance", AttrType::Float),
                ],
            ),
            Partitioning::Single,
        ),
        (
            RelationSchema::new(
                "customer",
                vec![
                    ("custkey", AttrType::Int),
                    ("nationkey", AttrType::Int),
                    ("cbalance", AttrType::Float),
                ],
            ),
            Partitioning::Single,
        ),
        (
            RelationSchema::new(
                "orders",
                vec![
                    ("orderkey", AttrType::Int),
                    ("custkey", AttrType::Int),
                    ("ototal", AttrType::Float),
                ],
            ),
            if spec.fact_partitions <= 1 {
                Partitioning::Single
            } else {
                Partitioning::Hash {
                    attr: 0,
                    parts: spec.fact_partitions as u32,
                }
            },
        ),
        (
            RelationSchema::new(
                "lineitem",
                vec![
                    ("orderkey", AttrType::Int),
                    ("suppkey", AttrType::Int),
                    ("quantity", AttrType::Int),
                    ("price", AttrType::Float),
                ],
            ),
            if spec.fact_partitions <= 1 {
                Partitioning::Single
            } else {
                Partitioning::Hash {
                    attr: 0,
                    parts: spec.fact_partitions as u32,
                }
            },
        ),
    ];

    let probe_dict = {
        let mut pb = CatalogBuilder::new();
        for (schema, part) in &schemas {
            let rel = pb.add_relation(schema.clone(), part.clone());
            for p in 0..part.num_partitions() {
                pb.set_stats(
                    PartId::new(rel, p),
                    qt_catalog::PartitionStats::synthetic(1, &vec![1; schema.arity()]),
                );
                pb.place(PartId::new(rel, p), NodeId(0));
            }
        }
        pb.build().dict
    };

    // ---- Data ------------------------------------------------------------
    let regions = ["AMERICA", "EUROPE", "ASIA"];
    let nations_per_region = 3u32;
    let n_nations = regions.len() as u32 * nations_per_region;
    let n_suppliers = (spec.orders / 20).max(3);
    let n_customers = (spec.orders / 10).max(5);

    let region_rows: Vec<Vec<Value>> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| vec![Value::Int(i as i64), Value::str(*r)])
        .collect();
    let nation_rows: Vec<Vec<Value>> = (0..n_nations)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int((i / nations_per_region) as i64),
                Value::str(format!("nation{i}")),
            ]
        })
        .collect();
    let supplier_rows: Vec<Vec<Value>> = (0..n_suppliers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..n_nations) as i64),
                Value::Float(rng.random_range(-100.0..10_000.0)),
            ]
        })
        .collect();
    let customer_rows: Vec<Vec<Value>> = (0..n_customers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..n_nations) as i64),
                Value::Float(rng.random_range(-100.0..10_000.0)),
            ]
        })
        .collect();
    let orders_rows: Vec<Vec<Value>> = (0..spec.orders)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..n_customers) as i64),
                Value::Float(rng.random_range(10.0..5_000.0)),
            ]
        })
        .collect();
    let mut lineitem_rows: Vec<Vec<Value>> = Vec::new();
    for o in 0..spec.orders {
        for _ in 0..rng.random_range(2..=6) {
            lineitem_rows.push(vec![
                Value::Int(o as i64),
                Value::Int(rng.random_range(0..n_suppliers) as i64),
                Value::Int(rng.random_range(1..50)),
                Value::Float(rng.random_range(1.0..1_000.0)),
            ]);
        }
    }

    let mut loader = DataStore::new();
    let all_rows = [
        region_rows,
        nation_rows,
        supplier_rows,
        customer_rows,
        orders_rows,
        lineitem_rows,
    ];
    for (i, rows) in all_rows.into_iter().enumerate() {
        loader.load_relation(&probe_dict, RelId(i as u32), rows);
    }

    // ---- Catalog + placement ---------------------------------------------
    let mut b = CatalogBuilder::new();
    b.add_nodes(spec.nodes);
    let mut stores: BTreeMap<NodeId, DataStore> = BTreeMap::new();
    for (i, (schema, part)) in schemas.iter().enumerate() {
        let rel = b.add_relation(schema.clone(), part.clone());
        let dim = i < 4; // region/nation/supplier/customer are dimensions
        for p in 0..part.num_partitions() {
            let pid = PartId::new(rel, p);
            b.set_stats(pid, loader.stats_of(&probe_dict, pid).expect("loaded"));
            let replicas = if dim {
                spec.dim_replicas.min(spec.nodes)
            } else {
                1
            };
            let mut placed: Vec<u32> = Vec::new();
            while placed.len() < replicas.max(1) as usize {
                let n = rng.random_range(0..spec.nodes);
                if !placed.contains(&n) {
                    placed.push(n);
                }
            }
            for &n in &placed {
                b.place(pid, NodeId(n));
                stores
                    .entry(NodeId(n))
                    .or_default()
                    .merge_from(&loader.subset(&[pid]));
            }
        }
    }
    let catalog = b.build();
    let rels = TpchRels {
        region: RelId(0),
        nation: RelId(1),
        supplier: RelId(2),
        customer: RelId(3),
        orders: RelId(4),
        lineitem: RelId(5),
    };
    (catalog, stores, rels)
}

/// Canned analytical queries over the schema (SQL text, parse with
/// [`qt_query::parse_query`]).
pub mod queries {
    /// Revenue per customer nation (a Q5-flavoured join):
    /// customer ⋈ orders ⋈ nation, grouped by nation name.
    pub const REVENUE_PER_NATION: &str = "SELECT nname, SUM(ototal) FROM nation, customer, orders \
         WHERE nation.nationkey = customer.nationkey \
         AND customer.custkey = orders.custkey GROUP BY nname";

    /// Large-order line revenue (a Q3 flavour): orders over a threshold
    /// joined to their lineitems.
    pub const BIG_ORDER_LINES: &str = "SELECT orders.orderkey, SUM(price) FROM orders, lineitem \
         WHERE orders.orderkey = lineitem.orderkey AND ototal > 4000.0 \
         GROUP BY orders.orderkey";

    /// Supplier activity: count of lineitems per supplier nation.
    pub const LINES_PER_SUPPLIER_NATION: &str =
        "SELECT nname, COUNT(*) FROM nation, supplier, lineitem \
         WHERE nation.nationkey = supplier.nationkey \
         AND supplier.suppkey = lineitem.suppkey GROUP BY nname";
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_exec::evaluate_query;
    use qt_query::parse_query;

    fn union(stores: &BTreeMap<NodeId, DataStore>) -> DataStore {
        let mut all = DataStore::new();
        for s in stores.values() {
            all.merge_from(s);
        }
        all
    }

    #[test]
    fn federation_is_well_formed() {
        let (cat, stores, rels) = tpch_federation(&TpchSpec::default());
        assert_eq!(cat.dict.rel_by_name("lineitem"), Some(rels.lineitem));
        assert_eq!(cat.relation_stats(rels.region).rows, 3);
        assert!(cat.relation_stats(rels.lineitem).rows >= 2 * 200);
        // Every partition placed; stores hold what placement says.
        for rel in cat.dict.rel_ids() {
            for part in cat.dict.parts_of(rel) {
                assert!(!cat.placement.holders(part).is_empty(), "{part}");
            }
        }
        for (node, store) in &stores {
            for part in store.parts() {
                assert!(cat.placement.holders(part).contains(node));
            }
        }
    }

    #[test]
    fn canned_queries_parse_and_evaluate() {
        let (cat, stores, _) = tpch_federation(&TpchSpec::default());
        let all = union(&stores);
        for sql in [
            queries::REVENUE_PER_NATION,
            queries::BIG_ORDER_LINES,
            queries::LINES_PER_SUPPLIER_NATION,
        ] {
            let q = parse_query(&cat.dict, sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let rows = evaluate_query(&q, &all).unwrap();
            assert!(!rows.is_empty(), "{sql} returned nothing");
        }
    }

    #[test]
    fn deterministic() {
        let a = tpch_federation(&TpchSpec::default());
        let b = tpch_federation(&TpchSpec::default());
        assert_eq!(a.0.placement, b.0.placement);
        assert_eq!(
            a.0.relation_stats(RelId(5)).rows,
            b.0.relation_stats(RelId(5)).rows
        );
    }
}
