//! The paper's motivating scenario: a telecom with regional offices, each a
//! node of the federation, customer data partitioned by office.

use qt_catalog::{
    AttrType, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelId, RelationSchema,
    Value,
};
use qt_exec::DataStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Parameters of the telecom federation.
#[derive(Debug, Clone)]
pub struct TelecomSpec {
    /// Number of regional offices (nodes). Office `i` is node `i` and holds
    /// the customer partition `office{i}`.
    pub offices: u32,
    /// Customers per office.
    pub customers_per_office: u32,
    /// Invoice lines per customer.
    pub lines_per_customer: u32,
    /// How many nodes hold a full `invoiceline` replica (at least 1; replica
    /// `j` lives on node `j × offices / replicas`).
    pub invoice_replicas: u32,
    /// RNG seed for charges.
    pub seed: u64,
}

impl Default for TelecomSpec {
    fn default() -> Self {
        TelecomSpec {
            offices: 3,
            customers_per_office: 20,
            lines_per_customer: 4,
            invoice_replicas: 1,
            seed: 7,
        }
    }
}

/// The generated telecom federation: catalog + per-node stores.
pub fn telecom_federation(
    spec: &TelecomSpec,
) -> (qt_catalog::Catalog, BTreeMap<NodeId, DataStore>) {
    assert!(spec.offices >= 1 && spec.invoice_replicas >= 1);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let office_names: Vec<String> = (0..spec.offices)
        .map(|i| match i {
            0 => "Athens".into(),
            1 => "Corfu".into(),
            2 => "Myconos".into(),
            n => format!("Office{n}"),
        })
        .collect();

    let customer_schema = || {
        RelationSchema::new(
            "customer",
            vec![
                ("custid", AttrType::Int),
                ("custname", AttrType::Str),
                ("office", AttrType::Str),
            ],
        )
    };
    let invoice_schema = || {
        RelationSchema::new(
            "invoiceline",
            vec![
                ("invid", AttrType::Int),
                ("linenum", AttrType::Int),
                ("custid", AttrType::Int),
                ("charge", AttrType::Float),
            ],
        )
    };
    let customer_partitioning = || Partitioning::List {
        attr: 2,
        groups: office_names.iter().map(|n| vec![Value::str(n)]).collect(),
    };

    // Probe dict for routing data.
    let probe_dict = {
        let mut pb = CatalogBuilder::new();
        pb.add_relation(customer_schema(), customer_partitioning());
        pb.add_relation(invoice_schema(), Partitioning::Single);
        for i in 0..spec.offices as u16 {
            pb.set_stats(
                PartId::new(RelId(0), i),
                PartitionStats::synthetic(1, &[1, 1, 1]),
            );
            pb.place(PartId::new(RelId(0), i), NodeId(0));
        }
        pb.set_stats(
            PartId::new(RelId(1), 0),
            PartitionStats::synthetic(1, &[1, 1, 1, 1]),
        );
        pb.place(PartId::new(RelId(1), 0), NodeId(0));
        pb.build().dict
    };

    // Data.
    let total_customers = spec.offices * spec.customers_per_office;
    let customers: Vec<Vec<Value>> = (0..total_customers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::str(format!("cust{i}")),
                Value::str(&office_names[(i % spec.offices) as usize]),
            ]
        })
        .collect();
    let mut invoices: Vec<Vec<Value>> = Vec::new();
    for c in 0..total_customers {
        for l in 0..spec.lines_per_customer {
            invoices.push(vec![
                Value::Int((c * spec.lines_per_customer + l) as i64 / 4),
                Value::Int(l as i64),
                Value::Int(c as i64),
                Value::Float(rng.random_range(1.0..200.0)),
            ]);
        }
    }
    let mut loader = DataStore::new();
    loader.load_relation(&probe_dict, RelId(0), customers);
    loader.load_relation(&probe_dict, RelId(1), invoices);

    // Real catalog with exact stats and placement.
    let mut b = CatalogBuilder::new();
    let cust = b.add_relation(customer_schema(), customer_partitioning());
    let inv = b.add_relation(invoice_schema(), Partitioning::Single);
    let mut stores: BTreeMap<NodeId, DataStore> = BTreeMap::new();
    for i in 0..spec.offices as u16 {
        let part = PartId::new(cust, i);
        b.set_stats(
            part,
            loader
                .stats_of(&probe_dict, part)
                .expect("customers loaded"),
        );
        b.place(part, NodeId(i as u32));
        stores
            .entry(NodeId(i as u32))
            .or_default()
            .merge_from(&loader.subset(&[part]));
    }
    let inv_part = PartId::new(inv, 0);
    b.set_stats(
        inv_part,
        loader
            .stats_of(&probe_dict, inv_part)
            .expect("invoices loaded"),
    );
    for j in 0..spec.invoice_replicas.min(spec.offices) {
        let node = NodeId(j * spec.offices / spec.invoice_replicas.min(spec.offices));
        b.place(inv_part, node);
        stores
            .entry(node)
            .or_default()
            .merge_from(&loader.subset(&[inv_part]));
    }
    (b.build(), stores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_shape() {
        let (cat, stores) = telecom_federation(&TelecomSpec::default());
        assert_eq!(cat.dict.rel_by_name("customer"), Some(RelId(0)));
        assert_eq!(cat.dict.rel_by_name("invoiceline"), Some(RelId(1)));
        assert_eq!(cat.dict.rel(RelId(0)).partitioning.num_partitions(), 3);
        assert_eq!(cat.relation_stats(RelId(0)).rows, 60);
        assert_eq!(cat.relation_stats(RelId(1)).rows, 240);
        // Athens (node 0) holds its customers and the invoice replica.
        let athens = cat.holdings_of(NodeId(0));
        assert!(athens.has_relation(RelId(1)));
        assert_eq!(stores[&NodeId(0)].total_rows(), 20 + 240);
        // Corfu holds only its customers.
        assert_eq!(stores[&NodeId(1)].total_rows(), 20);
    }

    #[test]
    fn replicas_spread_over_nodes() {
        let spec = TelecomSpec {
            offices: 6,
            invoice_replicas: 3,
            ..TelecomSpec::default()
        };
        let (cat, _) = telecom_federation(&spec);
        let holders = cat.placement.holders(PartId::new(RelId(1), 0));
        assert_eq!(holders.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = telecom_federation(&TelecomSpec::default());
        let b = telecom_federation(&TelecomSpec::default());
        assert_eq!(
            a.0.stats(PartId::new(RelId(1), 0)),
            b.0.stats(PartId::new(RelId(1), 0))
        );
    }

    #[test]
    fn office_names_follow_paper() {
        let (cat, _) = telecom_federation(&TelecomSpec::default());
        let part = cat.dict.rel(RelId(0)).partitioning.restriction(2);
        let sql = part
            .display_with(&cat.dict.rel(RelId(0)).schema)
            .to_string();
        assert_eq!(sql, "office = 'Myconos'");
    }
}
