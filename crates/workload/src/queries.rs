//! Join-query generation over the synthetic federation schema.

use qt_catalog::{RelId, SchemaDict};
use qt_query::{AggFunc, Col, CompOp, Predicate, Query, SelectItem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Join-graph shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// `r0 ⋈ r1 ⋈ … ⋈ r{n-1}` along the shared key.
    Chain,
    /// `r0` joined with each of `r1 … r{n-1}`.
    Star,
    /// A chain closed into a cycle by an extra `r0.b = r{n-1}.b` edge
    /// (needs ≥ 3 relations to differ from a chain).
    Cycle,
}

/// Generate an `num_rels`-relation join query over the synthetic schema
/// (`r{i}(a, b, c)`), optionally aggregated (`SELECT r0.b, SUM(r{n-1}.c) …
/// GROUP BY r0.b`) and with a selection on `r0.b` whose selectivity is
/// seeded.
pub fn gen_join_query(
    dict: &SchemaDict,
    shape: QueryShape,
    num_rels: usize,
    aggregate: bool,
    seed: u64,
) -> Query {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cut = rng.random_range(20..90);
    gen_join_query_with_cut(dict, shape, num_rels, aggregate, cut)
}

/// Like [`gen_join_query`], with an explicit selection cut on `r0.b`
/// (domain `0..100`): `cut = 10` keeps ~10% of `r0` — selective queries make
/// seller-side joins worth buying (they ship far fewer rows).
pub fn gen_join_query_with_cut(
    dict: &SchemaDict,
    shape: QueryShape,
    num_rels: usize,
    aggregate: bool,
    cut: i64,
) -> Query {
    assert!(num_rels >= 1);
    assert!(
        num_rels <= dict.relations.len(),
        "query needs {num_rels} relations, schema has {}",
        dict.relations.len()
    );
    let rels: Vec<RelId> = (0..num_rels as u32).map(RelId).collect();

    let mut predicates: Vec<Predicate> = Vec::new();
    for i in 1..num_rels {
        let left = match shape {
            QueryShape::Chain | QueryShape::Cycle => rels[i - 1],
            QueryShape::Star => rels[0],
        };
        predicates.push(Predicate::eq_cols(Col::new(left, 0), Col::new(rels[i], 0)));
    }
    if shape == QueryShape::Cycle && num_rels >= 3 {
        predicates.push(Predicate::eq_cols(
            Col::new(rels[0], 1),
            Col::new(rels[num_rels - 1], 1),
        ));
    }
    predicates.push(Predicate::with_const(Col::new(rels[0], 1), CompOp::Lt, cut));

    let first_b = Col::new(rels[0], 1);
    let last_c = Col::new(rels[num_rels - 1], 2);
    let q = Query::over_full(dict, rels.iter().copied()).with_predicates(predicates);
    if aggregate {
        q.with_select(vec![
            SelectItem::Col(first_b),
            SelectItem::Agg {
                func: AggFunc::Sum,
                arg: Some(last_c),
            },
        ])
        .with_group_by(vec![first_b])
    } else {
        q.with_select(vec![SelectItem::Col(first_b), SelectItem::Col(last_c)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::{build_federation, FederationSpec};

    fn dict(nrels: usize) -> std::sync::Arc<SchemaDict> {
        build_federation(&FederationSpec {
            relations: nrels,
            ..FederationSpec::default()
        })
        .catalog
        .dict
    }

    #[test]
    fn chain_has_n_minus_one_joins() {
        let d = dict(5);
        for n in 1..=5 {
            let q = gen_join_query(&d, QueryShape::Chain, n, false, 1);
            q.validate(&d).unwrap();
            assert_eq!(q.num_relations(), n);
            assert_eq!(q.join_predicates().count(), n - 1);
        }
    }

    #[test]
    fn star_centers_on_r0() {
        let d = dict(4);
        let q = gen_join_query(&d, QueryShape::Star, 4, false, 1);
        for p in q.join_predicates() {
            assert!(p.rels().contains(&RelId(0)));
        }
    }

    #[test]
    fn aggregate_variant_validates() {
        let d = dict(3);
        let q = gen_join_query(&d, QueryShape::Chain, 3, true, 9);
        q.validate(&d).unwrap();
        assert!(q.is_aggregate());
        assert!(q.aggregates_decomposable());
    }

    #[test]
    fn seeds_change_selections_only() {
        let d = dict(3);
        let a = gen_join_query(&d, QueryShape::Chain, 3, false, 1);
        let b = gen_join_query(&d, QueryShape::Chain, 3, false, 2);
        assert_eq!(a.join_predicates().count(), b.join_predicates().count());
        let a2 = gen_join_query(&d, QueryShape::Chain, 3, false, 1);
        assert_eq!(a, a2, "same seed, same query");
    }

    #[test]
    #[should_panic(expected = "query needs")]
    fn too_many_relations_panics() {
        let d = dict(2);
        gen_join_query(&d, QueryShape::Chain, 3, false, 1);
    }

    #[test]
    fn cycle_closes_the_chain() {
        let d = dict(4);
        let chain = gen_join_query(&d, QueryShape::Chain, 4, false, 1);
        let cycle = gen_join_query(&d, QueryShape::Cycle, 4, false, 1);
        assert_eq!(
            cycle.join_predicates().count(),
            chain.join_predicates().count() + 1
        );
        cycle.validate(&d).unwrap();
        // Below 3 relations a cycle degenerates into a chain.
        let two = gen_join_query(&d, QueryShape::Cycle, 2, false, 1);
        assert_eq!(two.join_predicates().count(), 1);
    }
}
