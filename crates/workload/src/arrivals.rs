//! Seeded arrival streams for the serving experiments.
//!
//! The serving layer (`qt_core::run_qt_serve`) consumes `(arrival time,
//! query)` pairs. This module turns a *query mix* — any slice of distinct
//! queries — into a Poisson-ish stream: queries drawn uniformly from the
//! mix, inter-arrival gaps exponentially distributed around a mean, all
//! from one seed so every run of an experiment sees the identical stream.

use qt_catalog::SchemaDict;
use qt_query::{parse_query, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of an arrival stream.
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// Queries in the stream.
    pub n_queries: usize,
    /// Mean inter-arrival gap, virtual seconds. `0.0` = all arrive at t=0
    /// (a closed-loop burst, the usual throughput-benchmark shape).
    pub mean_interarrival: f64,
    /// Stream seed (query picks and gaps).
    pub seed: u64,
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        ArrivalSpec {
            n_queries: 16,
            mean_interarrival: 0.0,
            seed: 1,
        }
    }
}

/// Draw an arrival stream from `mix`: `spec.n_queries` pairs with
/// non-decreasing times. Gaps are sampled by inversion,
/// `-mean * ln(1 - u)`, giving an exponential (memoryless) process; query
/// picks are uniform over the mix. Deterministic in `spec.seed`.
///
/// Panics if the mix is empty.
pub fn gen_arrivals(mix: &[Query], spec: &ArrivalSpec) -> Vec<(f64, Query)> {
    assert!(
        !mix.is_empty(),
        "arrival stream needs a non-empty query mix"
    );
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut t = 0.0f64;
    (0..spec.n_queries)
        .map(|_| {
            let q = mix[rng.random_range(0..mix.len())].clone();
            if spec.mean_interarrival > 0.0 {
                let u: f64 = rng.random_range(0.0..1.0);
                t += -spec.mean_interarrival * (1.0 - u).ln();
            }
            (t, q)
        })
        .collect()
}

/// Like [`gen_arrivals`], but query picks follow a Zipf distribution over
/// the mix instead of a uniform one: query `i` (0-based) is drawn with
/// probability proportional to `1 / (i + 1)^skew`. Real serving traffic is
/// skewed — a few hot queries dominate — and a skewed stream is what makes
/// seller offer caches earn their keep, so throughput experiments use this
/// next to the uniform stream. `skew = 0.0` degenerates to the uniform
/// distribution (but consumes the RNG identically to this function's other
/// skews, not identically to [`gen_arrivals`]). Deterministic in
/// `spec.seed`.
///
/// Panics if the mix is empty or `skew` is negative/non-finite.
pub fn gen_arrivals_zipf(mix: &[Query], spec: &ArrivalSpec, skew: f64) -> Vec<(f64, Query)> {
    assert!(
        !mix.is_empty(),
        "arrival stream needs a non-empty query mix"
    );
    assert!(
        skew.is_finite() && skew >= 0.0,
        "zipf skew must be a finite non-negative number"
    );
    // Cumulative unnormalized weights; a uniform draw in [0, total) is then
    // inverted by linear scan (mixes are small).
    let mut cum = Vec::with_capacity(mix.len());
    let mut total = 0.0f64;
    for i in 0..mix.len() {
        total += 1.0 / ((i + 1) as f64).powf(skew);
        cum.push(total);
    }
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut t = 0.0f64;
    (0..spec.n_queries)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..total);
            let idx = cum.iter().position(|&c| u < c).unwrap_or(mix.len() - 1);
            let q = mix[idx].clone();
            if spec.mean_interarrival > 0.0 {
                let v: f64 = rng.random_range(0.0..1.0);
                t += -spec.mean_interarrival * (1.0 - v).ln();
            }
            (t, q)
        })
        .collect()
}

/// A synthetic join mix over a federation's dictionary: `n` distinct
/// chain/star queries of 2–3 relations, every third aggregated.
pub fn synthetic_mix(dict: &SchemaDict, n: usize, seed: u64) -> Vec<Query> {
    use crate::queries::{gen_join_query, QueryShape};
    (0..n)
        .map(|i| {
            let shape = if i % 2 == 0 {
                QueryShape::Chain
            } else {
                QueryShape::Star
            };
            gen_join_query(dict, shape, 2 + i % 2, i % 3 == 0, seed ^ (i as u64))
        })
        .collect()
}

/// The customer-care queries of the telecom scenario (per-office charge
/// rollups and per-customer lookups) against a
/// [`telecom_federation`](crate::telecom_federation) dictionary.
pub fn telecom_mix(dict: &SchemaDict) -> Vec<Query> {
    [
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
        "SELECT custname, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY custname",
        "SELECT custname, charge FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid AND charge > 5.0",
    ]
    .iter()
    .map(|sql| parse_query(dict, sql).expect("telecom mix SQL parses"))
    .collect()
}

/// A template-heavy telecom mix for the semantic-cache experiments: one
/// wide join template (the subsumer) followed by `variants` narrower
/// variations of it — shifted selection constants, dropped columns, an
/// ordered listing, and per-office/per-customer rollups — every one of
/// which the §3.5 matcher can answer from the wide template's result with
/// a residual filter/project/re-aggregation. Under a Zipf arrival skew the
/// wide head query is traded early and the tail variants become semantic
/// cache hits; an exact-fingerprint cache only ever hits on repeats.
pub fn template_mix(dict: &SchemaDict, variants: usize, seed: u64) -> Vec<Query> {
    const WIDE: &str = "SELECT custname, office, charge FROM customer, invoiceline \
                        WHERE customer.custid = invoiceline.custid";
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sqls = vec![WIDE.to_string()];
    for i in 0..variants {
        // Every variant shifts the selection constant, so (collisions
        // aside) each has a distinct fingerprint: what an exact cache sees
        // as always-cold traffic, the matcher answers with a residual
        // filter (plus project / sort / re-aggregation, by arm). Constants
        // vary only on `charge` — the one predicate column the template's
        // select list exposes for residual evaluation.
        let floor = rng.random_range(5.0..195.0);
        sqls.push(match i % 4 {
            // Residual filter + narrower projection.
            0 => format!(
                "SELECT custname, charge FROM customer, invoiceline \
                 WHERE customer.custid = invoiceline.custid AND charge > {floor:.4}"
            ),
            // Residual filter + re-ordered narrower output.
            1 => format!(
                "SELECT custname, office FROM customer, invoiceline \
                 WHERE customer.custid = invoiceline.custid AND charge > {floor:.4} \
                 ORDER BY custname"
            ),
            // Per-office rollup: filter + aggregation of template rows.
            2 => format!(
                "SELECT office, SUM(charge) FROM customer, invoiceline \
                 WHERE customer.custid = invoiceline.custid AND charge > {floor:.4} \
                 GROUP BY office"
            ),
            // Per-customer rollup with a shifted floor.
            _ => format!(
                "SELECT custname, SUM(charge) FROM customer, invoiceline \
                 WHERE customer.custid = invoiceline.custid AND charge > {floor:.4} \
                 GROUP BY custname"
            ),
        });
    }
    sqls.iter()
        .map(|sql| parse_query(dict, sql).expect("template mix SQL parses"))
        .collect()
}

/// The TPC-H-flavoured analytical queries against a
/// [`tpch_federation`](crate::tpch_federation) dictionary.
pub fn tpch_mix(dict: &SchemaDict) -> Vec<Query> {
    use crate::tpch::queries::{BIG_ORDER_LINES, LINES_PER_SUPPLIER_NATION, REVENUE_PER_NATION};
    [
        REVENUE_PER_NATION,
        BIG_ORDER_LINES,
        LINES_PER_SUPPLIER_NATION,
    ]
    .iter()
    .map(|sql| parse_query(dict, sql).expect("tpch mix SQL parses"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_federation, FederationSpec};

    #[test]
    fn arrivals_are_seed_deterministic_and_sorted() {
        let fed = build_federation(&FederationSpec::default());
        let mix = synthetic_mix(&fed.catalog.dict, 4, 9);
        let spec = ArrivalSpec {
            n_queries: 20,
            mean_interarrival: 0.5,
            seed: 42,
        };
        let a = gen_arrivals(&mix, &spec);
        let b = gen_arrivals(&mix, &spec);
        assert_eq!(a.len(), 20);
        for ((ta, qa), (tb, qb)) in a.iter().zip(&b) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(qa.fingerprint(), qb.fingerprint());
        }
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        let c = gen_arrivals(
            &mix,
            &ArrivalSpec {
                seed: 43,
                ..spec.clone()
            },
        );
        assert!(
            a.iter().zip(&c).any(|((ta, _), (tc, _))| ta != tc),
            "different seeds should shift the stream"
        );
    }

    #[test]
    fn burst_spec_arrives_at_zero() {
        let fed = build_federation(&FederationSpec::default());
        let mix = synthetic_mix(&fed.catalog.dict, 3, 1);
        let a = gen_arrivals(
            &mix,
            &ArrivalSpec {
                n_queries: 5,
                mean_interarrival: 0.0,
                seed: 7,
            },
        );
        assert!(a.iter().all(|(t, _)| *t == 0.0));
    }

    #[test]
    fn zipf_arrivals_are_seed_deterministic_and_skewed() {
        let fed = build_federation(&FederationSpec::default());
        let mix = synthetic_mix(&fed.catalog.dict, 4, 9);
        let spec = ArrivalSpec {
            n_queries: 400,
            mean_interarrival: 0.25,
            seed: 42,
        };
        let a = gen_arrivals_zipf(&mix, &spec, 1.2);
        let b = gen_arrivals_zipf(&mix, &spec, 1.2);
        assert_eq!(a.len(), 400);
        for ((ta, qa), (tb, qb)) in a.iter().zip(&b) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(qa.fingerprint(), qb.fingerprint());
        }
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        // Skew must actually concentrate mass on the head of the mix: the
        // hottest query outdraws the coldest by a wide margin.
        let count = |stream: &[(f64, Query)], q: &Query| {
            stream
                .iter()
                .filter(|(_, s)| s.fingerprint() == q.fingerprint())
                .count()
        };
        let hot = count(&a, &mix[0]);
        let cold = count(&a, &mix[3]);
        assert!(
            hot >= 2 * cold.max(1),
            "zipf skew 1.2 should favour the head: hot={hot} cold={cold}"
        );
        // Different seeds shift the stream.
        let c = gen_arrivals_zipf(
            &mix,
            &ArrivalSpec {
                seed: 43,
                ..spec.clone()
            },
            1.2,
        );
        assert!(a.iter().zip(&c).any(|((ta, _), (tc, _))| ta != tc));
        // skew = 0 is a valid uniform stream.
        let u = gen_arrivals_zipf(&mix, &spec, 0.0);
        assert_eq!(u.len(), 400);
        assert!((1..4).any(|i| count(&u, &mix[i]) > 0));
    }

    #[test]
    fn canned_mixes_parse() {
        let (cat, _) = crate::telecom_federation(&crate::TelecomSpec {
            offices: 2,
            customers_per_office: 5,
            lines_per_customer: 2,
            invoice_replicas: 1,
            seed: 3,
        });
        assert_eq!(telecom_mix(&cat.dict).len(), 3);
        let (cat, _, _) = crate::tpch_federation(&crate::TpchSpec::default());
        assert_eq!(tpch_mix(&cat.dict).len(), 3);
    }

    #[test]
    fn template_mix_variants_are_subsumed_by_the_head() {
        let (cat, _) = crate::telecom_federation(&crate::TelecomSpec::default());
        let mix = template_mix(&cat.dict, 8, 11);
        assert_eq!(mix.len(), 9);
        let wide = &mix[0];
        for (i, q) in mix.iter().enumerate().skip(1) {
            assert!(
                qt_query::views::match_view(wide, q).is_some(),
                "variant {i} is not answerable from the wide template"
            );
        }
        // Seed-deterministic.
        let again = template_mix(&cat.dict, 8, 11);
        assert_eq!(mix, again);
    }
}
