//! Workload generators for the QT experiments.
//!
//! * [`federation`] — seeded synthetic federations: `R` relations, each
//!   hash-partitioned into `P` partitions replicated `k`× over `N` nodes,
//!   with synthetic or materialized data;
//! * [`queries`] — chain/star join query generation with optional
//!   aggregation and selections;
//! * [`telecom`] — the paper's motivating customer-care scenario, with data;
//! * [`tpch`] — a TPC-H-like analytical star schema for the
//!   internet-data-products flavor of federation.

pub mod arrivals;
pub mod federation;
pub mod queries;
pub mod telecom;
pub mod tpch;

pub use arrivals::{
    gen_arrivals, gen_arrivals_zipf, synthetic_mix, telecom_mix, template_mix, tpch_mix,
    ArrivalSpec,
};
pub use federation::{build_federation, row_stream, Federation, FederationSpec, RowStream};
pub use queries::{gen_join_query, gen_join_query_with_cut, QueryShape};
pub use telecom::{telecom_federation, TelecomSpec};
pub use tpch::{tpch_federation, TpchRels, TpchSpec};
