//! Synthetic federation generation.

use qt_catalog::{
    AttrType, Catalog, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelId,
    RelationSchema, Value,
};
use qt_exec::DataStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Parameters of a synthetic federation.
#[derive(Debug, Clone)]
pub struct FederationSpec {
    /// Number of nodes.
    pub nodes: u32,
    /// Number of base relations.
    pub relations: usize,
    /// Horizontal partitions per relation (hash on the join attribute).
    pub partitions_per_relation: u16,
    /// Replicas per partition (>= 1), placed on distinct nodes when possible.
    pub replication: u32,
    /// Rows per partition (statistics; and data when materialized).
    pub rows_per_partition: u64,
    /// RNG seed — everything (placement, stats skew, data) derives from it.
    pub seed: u64,
    /// Materialize actual rows (keep `rows_per_partition` small if set).
    pub with_data: bool,
    /// Node speed heterogeneity: node speeds are drawn log-uniformly from
    /// `[1/spread, spread]`. `1.0` = homogeneous reference nodes.
    pub speed_spread: f64,
    /// Skew of the `b` column (materialized data only): `0.0` = uniform over
    /// `0..100`; larger values concentrate mass on small `b` via
    /// `b = 100 · u^(1+skew)` for uniform `u` — range filters then have
    /// wildly non-uniform selectivity, which is what histograms are for.
    pub data_skew: f64,
}

impl Default for FederationSpec {
    fn default() -> Self {
        FederationSpec {
            nodes: 8,
            relations: 3,
            partitions_per_relation: 2,
            replication: 1,
            rows_per_partition: 100_000,
            seed: 42,
            with_data: false,
            speed_spread: 1.0,
            data_skew: 0.0,
        }
    }
}

/// A generated federation.
#[derive(Debug)]
pub struct Federation {
    /// Global catalog (hand only to baselines and the harness).
    pub catalog: Catalog,
    /// Per-node stores when `with_data` was set.
    pub stores: BTreeMap<NodeId, DataStore>,
    /// Per-node resources (heterogeneous when `speed_spread > 1`).
    pub resources: BTreeMap<NodeId, qt_cost::NodeResources>,
}

impl Federation {
    /// One store with every partition (for reference evaluation).
    pub fn union_store(&self) -> DataStore {
        let mut all = DataStore::new();
        for s in self.stores.values() {
            all.merge_from(s);
        }
        all
    }
}

/// Relation `i` is `r{i}(a, b, c)`: `a` is the shared join attribute (hash
/// partitioning key), `b` a medium-cardinality attribute, `c` a payload.
pub fn build_federation(spec: &FederationSpec) -> Federation {
    assert!(spec.nodes >= 1 && spec.relations >= 1 && spec.replication >= 1);
    assert!(spec.speed_spread >= 1.0, "speed_spread must be >= 1");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = CatalogBuilder::new();
    b.add_nodes(spec.nodes);

    let resources: BTreeMap<NodeId, qt_cost::NodeResources> = (0..spec.nodes)
        .map(|n| {
            let s = if spec.speed_spread > 1.0 {
                let ln = rng.random_range(-spec.speed_spread.ln()..spec.speed_spread.ln());
                ln.exp()
            } else {
                1.0
            };
            (NodeId(n), qt_cost::NodeResources::uniform(s))
        })
        .collect();

    let mut rels: Vec<RelId> = Vec::new();
    for i in 0..spec.relations {
        let rel = b.add_relation(
            RelationSchema::new(
                format!("r{i}"),
                vec![
                    ("a", AttrType::Int),
                    ("b", AttrType::Int),
                    ("c", AttrType::Int),
                ],
            ),
            if spec.partitions_per_relation <= 1 {
                Partitioning::Single
            } else {
                Partitioning::Hash {
                    attr: 0,
                    parts: spec.partitions_per_relation as u32,
                }
            },
        );
        rels.push(rel);
    }

    // Shared join-key domain so chains/stars have plausible selectivity.
    let key_domain = (spec.rows_per_partition * spec.partitions_per_relation as u64 / 2).max(10);

    let mut loader = DataStore::new();
    let mut dict_for_loading: Option<std::sync::Arc<qt_catalog::SchemaDict>> = None;
    if spec.with_data {
        // Build a probe dict identical to the final one for routing rows.
        let mut pb = CatalogBuilder::new();
        for i in 0..spec.relations {
            pb.add_relation(
                RelationSchema::new(
                    format!("r{i}"),
                    vec![
                        ("a", AttrType::Int),
                        ("b", AttrType::Int),
                        ("c", AttrType::Int),
                    ],
                ),
                if spec.partitions_per_relation <= 1 {
                    Partitioning::Single
                } else {
                    Partitioning::Hash {
                        attr: 0,
                        parts: spec.partitions_per_relation as u32,
                    }
                },
            );
            for p in 0..spec.partitions_per_relation {
                pb.set_stats(
                    PartId::new(RelId(i as u32), p),
                    PartitionStats::synthetic(1, &[1, 1, 1]),
                );
                pb.place(PartId::new(RelId(i as u32), p), NodeId(0));
            }
        }
        dict_for_loading = Some(pb.build().dict);
    }

    for (i, &rel) in rels.iter().enumerate() {
        // Per-relation size heterogeneity: relations get progressively
        // smaller (fact → dimensions), a common federated shape.
        let rel_rows = (spec.rows_per_partition as f64 / (1.0 + i as f64 * 0.5)).ceil() as u64;
        if spec.with_data {
            let dict = dict_for_loading.as_ref().expect("probe dict");
            let total = rel_rows * spec.partitions_per_relation as u64;
            let rows: Vec<Vec<Value>> = (0..total)
                .map(|_| {
                    let b = if spec.data_skew > 0.0 {
                        let u: f64 = rng.random_range(0.0..1.0);
                        (100.0 * u.powf(1.0 + spec.data_skew)) as i64
                    } else {
                        rng.random_range(0..100)
                    };
                    vec![
                        Value::Int(rng.random_range(0..key_domain as i64)),
                        Value::Int(b),
                        Value::Int(rng.random_range(0..1_000_000)),
                    ]
                })
                .collect();
            loader.load_relation(dict, rel, rows);
            for p in 0..spec.partitions_per_relation {
                let part = PartId::new(rel, p);
                b.set_stats(part, loader.stats_of(dict, part).expect("loaded"));
            }
        } else {
            for p in 0..spec.partitions_per_relation {
                // Mild jitter so replicas/partitions are not identical.
                let jitter = rng.random_range(80..120) as u64;
                let rows = (rel_rows * jitter / 100).max(1);
                b.set_stats(
                    PartId::new(rel, p),
                    PartitionStats::synthetic(rows, &[key_domain.min(rows), 100, rows]),
                );
            }
        }
    }

    // Placement: each partition gets `replication` replicas on distinct
    // random nodes.
    let mut stores: BTreeMap<NodeId, DataStore> = BTreeMap::new();
    for &rel in &rels {
        for p in 0..spec.partitions_per_relation {
            let part = PartId::new(rel, p);
            let mut holders: Vec<u32> = Vec::new();
            while holders.len() < spec.replication.min(spec.nodes) as usize {
                let n = rng.random_range(0..spec.nodes);
                if !holders.contains(&n) {
                    holders.push(n);
                }
            }
            for &h in &holders {
                b.place(part, NodeId(h));
                if spec.with_data {
                    stores
                        .entry(NodeId(h))
                        .or_default()
                        .merge_from(&loader.subset(&[part]));
                }
            }
        }
    }

    Federation {
        catalog: b.build(),
        stores,
        resources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_exec::RowSource;

    #[test]
    fn default_federation_is_consistent() {
        let f = build_federation(&FederationSpec::default());
        assert_eq!(f.catalog.nodes.len(), 8);
        assert_eq!(f.catalog.dict.relations.len(), 3);
        for rel in f.catalog.dict.rel_ids() {
            for part in f.catalog.dict.parts_of(rel) {
                assert!(!f.catalog.placement.holders(part).is_empty());
                assert!(f.catalog.stats(part).rows > 0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FederationSpec {
            seed: 7,
            ..FederationSpec::default()
        };
        let a = build_federation(&spec);
        let b = build_federation(&spec);
        assert_eq!(a.catalog.placement, b.catalog.placement);
        for rel in a.catalog.dict.rel_ids() {
            for part in a.catalog.dict.parts_of(rel) {
                assert_eq!(a.catalog.stats(part), b.catalog.stats(part));
            }
        }
    }

    #[test]
    fn replication_places_distinct_nodes() {
        let spec = FederationSpec {
            replication: 3,
            nodes: 5,
            ..FederationSpec::default()
        };
        let f = build_federation(&spec);
        for rel in f.catalog.dict.rel_ids() {
            for part in f.catalog.dict.parts_of(rel) {
                let holders = f.catalog.placement.holders(part);
                assert_eq!(holders.len(), 3);
                let mut h = holders.to_vec();
                h.dedup();
                assert_eq!(h.len(), 3);
            }
        }
    }

    #[test]
    fn replication_capped_by_node_count() {
        let spec = FederationSpec {
            replication: 10,
            nodes: 2,
            ..FederationSpec::default()
        };
        let f = build_federation(&spec);
        let part = PartId::new(RelId(0), 0);
        assert_eq!(f.catalog.placement.holders(part).len(), 2);
    }

    #[test]
    fn materialized_data_matches_stats() {
        let spec = FederationSpec {
            with_data: true,
            rows_per_partition: 50,
            nodes: 4,
            ..FederationSpec::default()
        };
        let f = build_federation(&spec);
        let all = f.union_store();
        for rel in f.catalog.dict.rel_ids() {
            for part in f.catalog.dict.parts_of(rel) {
                let stats = f.catalog.stats(part);
                let rows = all.rows_of(part).map(|r| r.len()).unwrap_or(0);
                assert_eq!(stats.rows as usize, rows, "{part}");
            }
        }
        // Stores only hold what placement says.
        for (node, store) in &f.stores {
            for part in store.parts() {
                assert!(f.catalog.placement.holders(part).contains(node));
            }
        }
    }
}
