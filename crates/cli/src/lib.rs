//! Library side of `qtsh`: argument parsing and the REPL session (kept in a
//! library so it can be unit-tested without a TTY).

pub mod session;

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Which demo federation to build.
    pub demo: Demo,
    /// Node count (synthetic demo) / office count (telecom demo).
    pub nodes: u32,
    /// Relations (synthetic demo only).
    pub relations: usize,
    /// Partitions per relation (synthetic demo only).
    pub partitions: u16,
    /// Replicas per partition.
    pub replicas: u32,
    /// Workload seed.
    pub seed: u64,
}

/// Available demo federations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Demo {
    /// The paper's telecom customer-care scenario.
    Telecom,
    /// A synthetic `r0..r{n}` federation with materialized data.
    Synthetic,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            demo: Demo::Telecom,
            nodes: 4,
            relations: 3,
            partitions: 2,
            replicas: 1,
            seed: 2004,
        }
    }
}

impl Args {
    /// Parse `--flag value` pairs.
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        while let Some(flag) = argv.next() {
            let mut value = || argv.next().ok_or_else(|| format!("{flag} needs a value"));
            match flag.as_str() {
                "--demo" => {
                    args.demo = match value()?.as_str() {
                        "telecom" => Demo::Telecom,
                        "synthetic" => Demo::Synthetic,
                        other => return Err(format!("unknown demo '{other}'")),
                    }
                }
                "--nodes" => args.nodes = num(&flag, &value()?)?,
                "--relations" => args.relations = num(&flag, &value()?)?,
                "--partitions" => args.partitions = num(&flag, &value()?)?,
                "--replicas" => args.replicas = num(&flag, &value()?)?,
                "--seed" => args.seed = num(&flag, &value()?)?,
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        if args.nodes == 0 || args.relations == 0 {
            return Err("--nodes and --relations must be positive".into());
        }
        Ok(args)
    }
}

fn num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: invalid number '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a.demo, Demo::Telecom);
        assert_eq!(a, Args::default());
    }

    #[test]
    fn synthetic_with_sizes() {
        let a =
            parse("--demo synthetic --nodes 8 --relations 4 --partitions 3 --replicas 2 --seed 7")
                .unwrap();
        assert_eq!(a.demo, Demo::Synthetic);
        assert_eq!(a.nodes, 8);
        assert_eq!(a.relations, 4);
        assert_eq!(a.partitions, 3);
        assert_eq!(a.replicas, 2);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("--demo nope").is_err());
        assert!(parse("--nodes").is_err());
        assert!(parse("--nodes zero").is_err());
        assert!(parse("--wat 3").is_err());
        assert!(parse("--nodes 0").is_err());
    }
}
