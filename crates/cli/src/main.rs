//! `qtsh` — an interactive shell over the query-trading optimizer.
//!
//! ```text
//! cargo run -p qt-cli --bin qtsh                  # telecom demo federation
//! cargo run -p qt-cli --bin qtsh -- --demo synthetic --nodes 8 --relations 4
//! ```
//!
//! Type SQL to optimize + execute it; `\help` lists the meta-commands.

use qt_cli::session::Session;
use qt_cli::Args;
use std::io::{BufRead, Write};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("qtsh: {e}");
            eprintln!(
                "usage: qtsh [--demo telecom|synthetic] [--nodes N] [--relations R] \
                       [--partitions P] [--replicas K] [--seed S]"
            );
            std::process::exit(2);
        }
    };
    let mut session = Session::new(&args);
    println!("{}", session.banner());

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("qt> ");
        let _ = std::io::stdout().flush();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match session.eval(input) {
            qt_cli::session::Eval::Output(s) => println!("{s}"),
            qt_cli::session::Eval::Quit => break,
        }
    }
    println!("bye");
}
