//! The REPL session: holds a demo federation and evaluates SQL and
//! meta-commands against it.

use crate::{Args, Demo};
use qt_catalog::{Catalog, NodeId};
use qt_core::{run_qt_direct, run_qt_sim_with_faults, QtConfig, SellerEngine};
use qt_exec::DataStore;
use qt_net::{FaultPlan, Topology};
use qt_query::parse_query;
use qt_trade::{ProtocolKind, SellerStrategy};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How to run a SQL statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// Optimize + execute + print rows.
    Execute,
    /// Optimize only.
    Explain,
    /// Execute with per-operator tracing.
    Analyze,
}

/// Result of evaluating one REPL line.
#[derive(Debug, PartialEq)]
pub enum Eval {
    /// Print this and continue.
    Output(String),
    /// Exit the shell.
    Quit,
}

/// One interactive session.
pub struct Session {
    catalog: Catalog,
    stores: BTreeMap<NodeId, DataStore>,
    config: QtConfig,
    buyer: NodeId,
    demo: Demo,
    /// Message-loss rate injected into simulated runs (0 = faults off, run
    /// through the direct driver).
    fault_loss: f64,
    /// Seed for the deterministic fault plan.
    fault_seed: u64,
    /// The session-persistent semantic result cache shared by every `\serve`
    /// and `\real` burst; `\cache` prints its counters.
    result_cache: qt_core::SharedResultCache,
}

impl Session {
    /// Build the demo federation described by `args`.
    pub fn new(args: &Args) -> Session {
        let (catalog, stores) = match args.demo {
            Demo::Telecom => qt_workload::telecom_federation(&qt_workload::TelecomSpec {
                offices: args.nodes.max(2),
                customers_per_office: 50,
                lines_per_customer: 5,
                invoice_replicas: args.replicas.max(1),
                seed: args.seed,
            }),
            Demo::Synthetic => {
                let fed = qt_workload::build_federation(&qt_workload::FederationSpec {
                    nodes: args.nodes,
                    relations: args.relations,
                    partitions_per_relation: args.partitions,
                    replication: args.replicas,
                    rows_per_partition: 200,
                    scale: 1,
                    seed: args.seed,
                    with_data: true,
                    speed_spread: 1.0,
                    data_skew: 0.0,
                });
                (fed.catalog, fed.stores)
            }
        };
        Session {
            catalog,
            stores,
            config: QtConfig::default(),
            buyer: NodeId(0),
            demo: args.demo,
            fault_loss: 0.0,
            fault_seed: 7,
            result_cache: qt_core::new_result_cache(0),
        }
    }

    /// The greeting printed at startup.
    pub fn banner(&self) -> String {
        format!(
            "qtsh — query trading shell ({:?} demo: {} nodes, {} relations)\n\
             type SQL to optimize+execute it, \\help for commands",
            self.demo,
            self.catalog.nodes.len(),
            self.catalog.dict.relations.len(),
        )
    }

    /// Evaluate one line of input.
    pub fn eval(&mut self, input: &str) -> Eval {
        if let Some(cmd) = input.strip_prefix('\\') {
            return self.meta(cmd);
        }
        Eval::Output(self.run_sql(input, RunMode::Execute))
    }

    fn meta(&mut self, cmd: &str) -> Eval {
        let (head, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
        match head {
            "q" | "quit" | "exit" => Eval::Quit,
            "help" => Eval::Output(
                "\\schema              show relations and partitioning\n\
                 \\nodes               show nodes and their holdings\n\
                 \\explain <SQL>       optimize only, show the distributed plan\n\
                 \\analyze <SQL>       execute and show per-operator row counts\n\
                 \\buyer <n>           set the buying node\n\
                 \\protocol <p>        sealed-bid | vickrey | english | bargaining\n\
                 \\markup <x>          seller markup factor (1.0 = truthful)\n\
                 \\faults <p> [seed]   simulate with message-loss rate p (0 or 'off' to disable)\n\
                 \\exec <rows> [batch] trade on a scaled synthetic federation (~rows input rows),\n\
                 \\                    execute row vs columnar, show per-operator timings\n\
                 \\serve <n> [c]       serve a burst of n demo queries at concurrency c (default 1)\n\
                 \\real <n> [c]        like \\serve, but thread-per-node on real cores (wall clock)\n\
                 \\cache [clear]       show (or reset) the semantic result cache shared by \\serve/\\real\n\
                 \\contracts <SQL>     trade with the contract lifecycle on, crash the winner\n\
                 \\                    post-award, and dump contract states + repair counters\n\
                 \\quit                leave"
                    .into(),
            ),
            "schema" => Eval::Output(self.schema()),
            "nodes" => Eval::Output(self.nodes()),
            "explain" => Eval::Output(self.run_sql(rest, RunMode::Explain)),
            "analyze" => Eval::Output(self.run_sql(rest, RunMode::Analyze)),
            "buyer" => match rest.trim().parse::<u32>() {
                Ok(n) if self.catalog.nodes.contains(&NodeId(n)) => {
                    self.buyer = NodeId(n);
                    Eval::Output(format!("buyer is now node{n}"))
                }
                _ => Eval::Output(format!("no such node '{rest}'")),
            },
            "protocol" => {
                let p = match rest.trim() {
                    "sealed-bid" => Some(ProtocolKind::SealedBid),
                    "vickrey" => Some(ProtocolKind::Vickrey),
                    "english" => Some(ProtocolKind::English { decrement: 0.05 }),
                    "bargaining" => Some(ProtocolKind::Bargaining { max_rounds: 4 }),
                    _ => None,
                };
                match p {
                    Some(p) => {
                        self.config.protocol = p;
                        Eval::Output(format!("protocol set to {}", p.label()))
                    }
                    None => Eval::Output(format!("unknown protocol '{rest}'")),
                }
            }
            "markup" => match rest.trim().parse::<f64>() {
                Ok(x) if x >= 1.0 => {
                    self.config.seller_strategy = if x == 1.0 {
                        SellerStrategy::Truthful
                    } else {
                        SellerStrategy::fixed_markup(x)
                    };
                    Eval::Output(format!("sellers now ask {x}x their true cost"))
                }
                _ => Eval::Output(format!("invalid markup '{rest}' (need a number >= 1)")),
            },
            "faults" => {
                let mut parts = rest.split_whitespace();
                let loss = match parts.next() {
                    Some("off") => Some(0.0),
                    Some(tok) => tok.parse::<f64>().ok().filter(|p| (0.0..1.0).contains(p)),
                    None => None,
                };
                let seed = match parts.next() {
                    Some(tok) => tok.parse::<u64>().ok(),
                    None => Some(self.fault_seed),
                };
                match (loss, seed) {
                    (Some(p), Some(seed)) => {
                        self.fault_loss = p;
                        self.fault_seed = seed;
                        if p == 0.0 {
                            Eval::Output("faults off — queries run on the direct driver".into())
                        } else {
                            Eval::Output(format!(
                                "faults on — simulating with {:.0}% message loss (seed {seed})",
                                p * 100.0
                            ))
                        }
                    }
                    _ => Eval::Output(format!(
                        "invalid '\\faults {rest}' (need a loss rate in [0, 1) and an optional integer seed)"
                    )),
                }
            }
            "cache" => match rest.trim() {
                "" => Eval::Output(self.cache_report()),
                "clear" => {
                    let dropped = self
                        .result_cache
                        .lock()
                        .expect("result cache lock")
                        .clear();
                    Eval::Output(format!("result cache cleared ({dropped} entries dropped)"))
                }
                _ => Eval::Output(format!("invalid '\\cache {rest}' (try \\cache or \\cache clear)")),
            },
            "contracts" => {
                if rest.trim().is_empty() {
                    Eval::Output("usage: \\contracts <SQL>".into())
                } else {
                    Eval::Output(self.contracts_demo(rest))
                }
            }
            "exec" => {
                let mut parts = rest.split_whitespace();
                let n = parts.next().and_then(|tok| tok.parse::<u64>().ok());
                let batch = match parts.next() {
                    Some(tok) => tok.parse::<usize>().ok().filter(|b| *b >= 1),
                    None => Some(qt_exec::DEFAULT_BATCH_ROWS),
                };
                match (n, batch) {
                    (Some(n), Some(batch)) if n >= 1 => Eval::Output(self.exec_bench(n, batch)),
                    _ => Eval::Output(format!(
                        "invalid '\\exec {rest}' (need \\exec <n_rows> [batch_rows >= 1])"
                    )),
                }
            }
            "serve" => {
                let mut parts = rest.split_whitespace();
                let n = parts.next().and_then(|tok| tok.parse::<usize>().ok());
                let conc = match parts.next() {
                    Some(tok) => tok.parse::<usize>().ok().filter(|c| *c >= 1),
                    None => Some(1),
                };
                match (n, conc) {
                    (Some(n), Some(conc)) if n >= 1 => Eval::Output(self.serve(n, conc)),
                    _ => Eval::Output(format!(
                        "invalid '\\serve {rest}' (need \\serve <n_queries> [concurrency >= 1])"
                    )),
                }
            }
            "real" => {
                let mut parts = rest.split_whitespace();
                let n = parts.next().and_then(|tok| tok.parse::<usize>().ok());
                let conc = match parts.next() {
                    Some(tok) => tok.parse::<usize>().ok().filter(|c| *c >= 1),
                    None => Some(1),
                };
                match (n, conc) {
                    (Some(n), Some(conc)) if n >= 1 => Eval::Output(self.real_serve(n, conc)),
                    _ => Eval::Output(format!(
                        "invalid '\\real {rest}' (need \\real <n_queries> [concurrency >= 1])"
                    )),
                }
            }
            other => Eval::Output(format!("unknown command '\\{other}' (try \\help)")),
        }
    }

    /// The columnar-execution demo: build a scaled synthetic federation of
    /// roughly `n_rows` streamed input rows (independent of the session's
    /// demo data), trade a chain join on it, then execute the purchased plan
    /// through both executors and print per-operator columnar timings. The
    /// executors must agree bit-for-bit; the comparison is printed, not
    /// assumed.
    fn exec_bench(&self, n_rows: u64, batch: usize) -> String {
        use std::time::Instant;
        // Relation 0 holds parts * rows_per_partition * scale rows; the
        // second relation is smaller by the generator's 1/(1+0.5i) taper.
        let scale = (n_rows / 500).max(1);
        let fed = qt_workload::build_federation(&qt_workload::FederationSpec {
            nodes: 4,
            relations: 2,
            partitions_per_relation: 2,
            replication: 1,
            rows_per_partition: 250,
            scale,
            seed: 22,
            with_data: true,
            speed_spread: 1.0,
            data_skew: 0.0,
        });
        let input_rows: u64 = fed
            .catalog
            .dict
            .rel_ids()
            .flat_map(|r| fed.catalog.dict.parts_of(r))
            .map(|p| fed.catalog.stats(p).rows)
            .sum();
        let query = qt_workload::gen_join_query(
            &fed.catalog.dict,
            qt_workload::QueryShape::Chain,
            2,
            true,
            22,
        );
        let mut sellers: BTreeMap<NodeId, SellerEngine> = fed
            .catalog
            .nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    SellerEngine::new(fed.catalog.holdings_of(n), self.config.clone()),
                )
            })
            .collect();
        let out = run_qt_direct(
            NodeId(0),
            fed.catalog.dict.clone(),
            &query,
            &mut sellers,
            &self.config,
        );
        let Some(plan) = out.plan else {
            return "no plan: the scaled federation does not cover the demo query".into();
        };

        let mut s = String::new();
        let _ = writeln!(
            s,
            "federation: 2 relations x 2 partitions at scale {scale} -> {input_rows} input rows"
        );
        let _ = writeln!(
            s,
            "trading: {} iteration(s), {} purchase(s)",
            out.iterations,
            plan.purchases.len()
        );

        let t0 = Instant::now();
        let row_rows = match plan.execute_on(&fed.catalog.dict, &fed.stores) {
            Ok(r) => r,
            Err(e) => return format!("{s}row execution failed: {e}"),
        };
        let row_secs = t0.elapsed().as_secs_f64().max(1e-9);

        let cfg = qt_exec::ColumnarConfig {
            batch_rows: batch,
            ..qt_exec::ColumnarConfig::default()
        };
        let t0 = Instant::now();
        let (col_rows, stats) = match plan.execute_columnar_on(&fed.catalog.dict, &fed.stores, &cfg)
        {
            Ok(r) => r,
            Err(e) => return format!("{s}columnar execution failed: {e}"),
        };
        let col_secs = t0.elapsed().as_secs_f64().max(1e-9);

        let _ = writeln!(
            s,
            "row executor:      {row_secs:.4}s  ({:.0} rows/s)",
            input_rows as f64 / row_secs
        );
        let _ = writeln!(
            s,
            "columnar executor: {col_secs:.4}s  ({:.0} rows/s, batch {batch})  speedup {:.2}x",
            input_rows as f64 / col_secs,
            row_secs / col_secs
        );
        let _ = writeln!(
            s,
            "results identical: {} ({} row(s))",
            if col_rows == row_rows { "yes" } else { "NO" },
            col_rows.len()
        );

        // Aggregate per-operator timings across all plan fragments.
        let mut by_op: BTreeMap<&'static str, (u64, u64, u64, f64)> = BTreeMap::new();
        for t in &stats.timings {
            let e = by_op.entry(t.op).or_default();
            e.0 += 1;
            e.1 += t.rows_in;
            e.2 += t.rows_out;
            e.3 += t.secs;
        }
        let _ = writeln!(s, "operator timings (columnar):");
        let _ = writeln!(
            s,
            "  {:<16} {:>6} {:>12} {:>12} {:>10}",
            "op", "calls", "rows_in", "rows_out", "secs"
        );
        let mut ops: Vec<_> = by_op.into_iter().collect();
        ops.sort_by(|a, b| b.1 .3.total_cmp(&a.1 .3));
        for (op, (calls, rows_in, rows_out, secs)) in ops {
            let _ = writeln!(
                s,
                "  {op:<16} {calls:>6} {rows_in:>12} {rows_out:>12} {secs:>10.4}"
            );
        }
        let _ = writeln!(
            s,
            "spill: {} file(s), {} row(s), {} byte(s)",
            stats.spill_files, stats.spill_rows, stats.spill_bytes
        );
        s.trim_end().to_string()
    }

    /// The contract-lifecycle demo: trade `sql` with two-phase awards and
    /// execution leases on, then crash the winning seller right after the
    /// award and show the lease machinery detect the loss and repair the
    /// plan from the bid book (or a scoped re-trade).
    fn contracts_demo(&self, sql: &str) -> String {
        let query = match parse_query(&self.catalog.dict, sql) {
            Ok(q) => q,
            Err(e) => return format!("parse error: {e}"),
        };
        let cfg = QtConfig {
            enable_contracts: true,
            ..self.config.clone()
        };
        let sellers = |cfg: &QtConfig| -> BTreeMap<NodeId, SellerEngine> {
            self.catalog
                .nodes
                .iter()
                .map(|&n| {
                    (
                        n,
                        SellerEngine::new(self.catalog.holdings_of(n), cfg.clone()),
                    )
                })
                .collect()
        };
        let run = |faults: Option<FaultPlan>| {
            run_qt_sim_with_faults(
                self.buyer,
                self.catalog.dict.clone(),
                &query,
                sellers(&cfg),
                &cfg,
                Topology::Uniform(cfg.link),
                faults,
            )
        };
        let dump = |s: &mut String, out: &qt_core::QtOutcome| {
            for c in &out.contracts {
                let _ = writeln!(
                    s,
                    "  c{:<4} slot {:<2} -> {} offer {:<4} [{}]{}",
                    c.id,
                    c.slot,
                    c.seller,
                    c.offer,
                    c.state,
                    if c.replacement { " (replacement)" } else { "" }
                );
            }
            let _ = writeln!(
                s,
                "  awarded {} | repaired {} | reawards {} | rescoped trades {}",
                out.contracts_awarded, out.contracts_repaired, out.reawards, out.rescoped_trades
            );
        };
        let (clean, _) = run(None);
        let mut s = String::new();
        let Some(plan) = &clean.plan else {
            return "no plan: the federation does not cover this query".into();
        };
        let _ = writeln!(s, "fault-free contracts:");
        dump(&mut s, &clean);
        let Some(winner) = plan
            .purchases
            .iter()
            .map(|p| p.offer.seller)
            .find(|&n| n != self.buyer)
        else {
            let _ = write!(s, "plan is buyer-local: no remote winner to crash");
            return s.trim_end().to_string();
        };
        let _ = writeln!(
            s,
            "crashing winner {winner} at t={:.3}s (post-award) ...",
            clean.optimization_time
        );
        let (repaired, m) = run(Some(FaultPlan::default().with_crash(
            winner,
            clean.optimization_time + 1e-6,
            1e12,
        )));
        let _ = writeln!(
            s,
            "detected: {} lost award(s), {} lease expiry(ies)",
            m.lost_awards, m.lease_expiries
        );
        dump(&mut s, &repaired);
        match &repaired.plan {
            Some(p) => {
                let survivors: Vec<String> = p
                    .purchases
                    .iter()
                    .map(|pu| pu.offer.seller.to_string())
                    .collect();
                let _ = write!(
                    s,
                    "repaired plan executes on: {} (cost {:.3})",
                    survivors.join(", "),
                    p.est.additive_cost
                );
            }
            None => {
                let _ = write!(s, "repair failed: no runner-up coverage for the lost slots");
            }
        }
        s.trim_end().to_string()
    }

    /// Throughput meta-benchmark: a burst of `n` demo-mix queries served
    /// concurrently through the session-multiplexed simulator driver.
    fn serve(&self, n: usize, conc: usize) -> String {
        use qt_core::{run_qt_serve, ServeConfig};
        let mix = match self.demo {
            Demo::Telecom => qt_workload::telecom_mix(&self.catalog.dict),
            Demo::Synthetic => qt_workload::synthetic_mix(&self.catalog.dict, 4, 1),
        };
        let arrivals = qt_workload::gen_arrivals(
            &mix,
            &qt_workload::ArrivalSpec {
                n_queries: n,
                mean_interarrival: 0.0,
                seed: 1,
            },
        );
        let sellers: BTreeMap<NodeId, SellerEngine> = self
            .catalog
            .nodes
            .iter()
            .map(|&node| {
                (
                    node,
                    SellerEngine::new(self.catalog.holdings_of(node), self.config.clone()),
                )
            })
            .collect();
        let cfg = QtConfig {
            // Admission-queued sessions must not trip response deadlines.
            seller_timeout: self.config.seller_timeout.max(300.0),
            ..self.config.clone()
        };
        let out = run_qt_serve(
            self.buyer,
            self.catalog.dict.clone(),
            arrivals,
            sellers,
            &cfg,
            &ServeConfig {
                concurrency: conc,
                batch_rfbs: true,
                result_cache: Some(std::sync::Arc::clone(&self.result_cache)),
            },
        );
        let planned = out.reports.iter().filter(|r| r.plan.is_some()).count();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "served {n} queries at concurrency {conc} ({planned} planned), RFB batching on"
        );
        let _ = writeln!(
            s,
            "result cache: {} hits, {} misses this burst (\\cache for totals)",
            out.result_cache_hits, out.result_cache_misses
        );
        if self.fault_loss > 0.0 {
            let _ = writeln!(s, "note: \\faults applies to SQL runs, not \\serve");
        }
        let _ = writeln!(
            s,
            "throughput: {:.2} queries/s over {:.3}s simulated",
            out.qps, out.makespan
        );
        let _ = writeln!(
            s,
            "latency: p50 {:.3}s, p95 {:.3}s",
            out.p50_latency, out.p95_latency
        );
        let _ = write!(
            s,
            "messages: {} total, {:.1} per query",
            out.messages, out.messages_per_query
        );
        s
    }

    /// [`Self::serve`] on the real thread-per-node transport: every node is
    /// an OS thread, messages cross bounded channels through the wire codec,
    /// and the reported figures are wall clock. The plans are bit-identical
    /// to the simulated run — the conformance suite in `qt-core` proves it —
    /// so this command is about *feeling* the parallel runtime, not about
    /// different answers.
    fn real_serve(&self, n: usize, conc: usize) -> String {
        use qt_core::{run_qt_serve_real, ServeConfig};
        let mix = match self.demo {
            Demo::Telecom => qt_workload::telecom_mix(&self.catalog.dict),
            Demo::Synthetic => qt_workload::synthetic_mix(&self.catalog.dict, 4, 1),
        };
        let arrivals = qt_workload::gen_arrivals(
            &mix,
            &qt_workload::ArrivalSpec {
                n_queries: n,
                mean_interarrival: 0.0,
                seed: 1,
            },
        );
        let sellers: BTreeMap<NodeId, SellerEngine> = self
            .catalog
            .nodes
            .iter()
            .map(|&node| {
                (
                    node,
                    SellerEngine::new(self.catalog.holdings_of(node), self.config.clone()),
                )
            })
            .collect();
        let cfg = QtConfig {
            // Admission-queued sessions must not trip response deadlines.
            seller_timeout: self.config.seller_timeout.max(300.0),
            ..self.config.clone()
        };
        let out = run_qt_serve_real(
            self.buyer,
            self.catalog.dict.clone(),
            arrivals,
            sellers,
            &cfg,
            &ServeConfig {
                concurrency: conc,
                batch_rfbs: true,
                result_cache: Some(std::sync::Arc::clone(&self.result_cache)),
            },
            qt_net::RealConfig::default(),
        );
        let planned = out.reports.iter().filter(|r| r.plan.is_some()).count();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "served {n} queries at concurrency {conc} ({planned} planned) on {} node threads",
            self.catalog.nodes.len()
        );
        let _ = writeln!(
            s,
            "result cache: {} hits, {} misses this burst (\\cache for totals)",
            out.result_cache_hits, out.result_cache_misses
        );
        if self.fault_loss > 0.0 {
            let _ = writeln!(s, "note: \\faults applies to SQL runs, not \\real");
        }
        let _ = writeln!(
            s,
            "throughput: {:.2} queries/s over {:.4}s wall clock",
            out.qps, out.makespan
        );
        let _ = writeln!(
            s,
            "latency: p50 {:.4}s, p95 {:.4}s (wall clock)",
            out.p50_latency, out.p95_latency
        );
        let _ = write!(
            s,
            "messages: {} total, {:.1} per query, {} codec bytes on the wire",
            out.messages, out.messages_per_query, out.metrics.wire_bytes
        );
        s
    }

    /// The `\cache` report: lifetime counters of the session's shared
    /// semantic result cache. Exact hits reuse a cached plan verbatim;
    /// semantic hits answered a *different* query by compensating a
    /// subsuming entry (§3.5); invalidations are entries dropped when an
    /// adaptive seller's award moved its asks.
    fn cache_report(&self) -> String {
        let c = self.result_cache.lock().expect("result cache lock");
        let st = *c.stats();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "semantic result cache: {} entries (shared by \\serve and \\real)",
            c.len()
        );
        let _ = writeln!(
            s,
            "hits: {} exact + {} semantic (subsumption), {} misses — hit rate {:.1}%",
            st.hits_exact,
            st.hits_semantic,
            st.misses,
            st.hit_rate() * 100.0
        );
        let _ = write!(
            s,
            "admission: {} inserted, {} rejected, {} evicted, {} invalidated",
            st.insertions, st.rejected, st.evictions, st.invalidated
        );
        s
    }

    fn schema(&self) -> String {
        let mut out = String::new();
        for rel in self.catalog.dict.rel_ids() {
            let meta = self.catalog.dict.rel(rel);
            let cols: Vec<String> = meta
                .schema
                .attrs
                .iter()
                .map(|a| format!("{} {}", a.name, a.ty))
                .collect();
            let stats = self.catalog.relation_stats(rel);
            let _ = writeln!(
                out,
                "{}({}) — {} partitions, {} rows",
                meta.schema.name,
                cols.join(", "),
                meta.partitioning.num_partitions(),
                stats.rows,
            );
        }
        out.trim_end().to_string()
    }

    fn nodes(&self) -> String {
        let mut out = String::new();
        for &node in &self.catalog.nodes {
            let holdings = self.catalog.holdings_of(node);
            let parts: Vec<String> = holdings.held.keys().map(|p| p.to_string()).collect();
            let marker = if node == self.buyer { " (buyer)" } else { "" };
            let _ = writeln!(
                out,
                "{node}{marker}: {}",
                if parts.is_empty() {
                    "no data".into()
                } else {
                    parts.join(", ")
                }
            );
        }
        out.trim_end().to_string()
    }

    fn run_sql(&mut self, sql: &str, mode: RunMode) -> String {
        let query = match parse_query(&self.catalog.dict, sql) {
            Ok(q) => q,
            Err(e) => return format!("parse error: {e}"),
        };
        let mut sellers: BTreeMap<NodeId, SellerEngine> = self
            .catalog
            .nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    SellerEngine::new(self.catalog.holdings_of(n), self.config.clone()),
                )
            })
            .collect();
        let (out, fault_metrics) = if self.fault_loss > 0.0 {
            let (out, metrics) = run_qt_sim_with_faults(
                self.buyer,
                self.catalog.dict.clone(),
                &query,
                sellers,
                &self.config,
                Topology::Uniform(self.config.link),
                Some(FaultPlan::lossy(self.fault_seed, self.fault_loss)),
            );
            (out, Some(metrics))
        } else {
            let out = run_qt_direct(
                self.buyer,
                self.catalog.dict.clone(),
                &query,
                &mut sellers,
                &self.config,
            );
            (out, None)
        };
        let mut s = String::new();
        let _ = writeln!(
            s,
            "trading: {} iteration(s), {} messages, {:.3}s simulated",
            out.iterations, out.messages, out.optimization_time
        );
        if let Some(m) = &fault_metrics {
            let unreachable = if out.unreachable_sellers.is_empty() {
                "none".to_string()
            } else {
                out.unreachable_sellers
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                s,
                "faults:  {} dropped, {} retries, {} timeouts, {} degraded round(s), unreachable: {unreachable}",
                m.dropped, out.retries, out.timeouts, out.degraded_rounds
            );
        }
        let Some(plan) = out.plan else {
            let _ = write!(s, "no plan: the federation does not cover this query");
            return s.trim_end().to_string();
        };
        let _ = write!(s, "{}", plan.describe(&self.catalog.dict));
        if mode == RunMode::Explain {
            return s.trim_end().to_string();
        }
        if mode == RunMode::Analyze {
            match plan.execute_traced_on(&self.catalog.dict, &self.stores) {
                Ok((rows, traces)) => {
                    let _ = writeln!(s, "\nassembly row counts:");
                    for line in qt_exec::trace::render(&traces).lines() {
                        let _ = writeln!(s, "  {line}");
                    }
                    let _ = writeln!(s, "{} row(s) total", rows.len());
                }
                Err(e) => {
                    let _ = writeln!(s, "execution failed: {e}");
                }
            }
            return s.trim_end().to_string();
        }
        match plan.execute_on(&self.catalog.dict, &self.stores) {
            Ok(mut rows) => {
                if query.order_by.is_empty() {
                    rows.sort();
                }
                let _ = writeln!(s, "\n{} row(s):", rows.len());
                for row in rows.iter().take(20) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(s, "  {}", cells.join(" | "));
                }
                if rows.len() > 20 {
                    let _ = writeln!(s, "  ... {} more", rows.len() - 20);
                }
            }
            Err(e) => {
                let _ = writeln!(s, "execution failed: {e}");
            }
        }
        s.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(&Args::default())
    }

    #[test]
    fn banner_mentions_demo() {
        let s = session();
        assert!(s.banner().contains("Telecom"));
    }

    #[test]
    fn help_and_quit() {
        let mut s = session();
        assert!(matches!(s.eval("\\help"), Eval::Output(o) if o.contains("\\schema")));
        assert_eq!(s.eval("\\q"), Eval::Quit);
        assert_eq!(s.eval("\\quit"), Eval::Quit);
    }

    #[test]
    fn schema_lists_relations() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\schema") else {
            panic!()
        };
        assert!(o.contains("customer"), "{o}");
        assert!(o.contains("invoiceline"), "{o}");
    }

    #[test]
    fn nodes_marks_buyer() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\nodes") else {
            panic!()
        };
        assert!(o.contains("node0 (buyer)"), "{o}");
    }

    #[test]
    fn sql_round_trip_executes() {
        let mut s = session();
        let Eval::Output(o) = s.eval(
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        ) else {
            panic!()
        };
        assert!(o.contains("row(s):"), "{o}");
        assert!(o.contains("trading:"), "{o}");
    }

    #[test]
    fn explain_does_not_execute() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\explain SELECT custname FROM customer") else {
            panic!()
        };
        assert!(o.contains("DistributedPlan"), "{o}");
        assert!(!o.contains("row(s):"), "{o}");
    }

    #[test]
    fn analyze_shows_operator_rows() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\analyze SELECT custname FROM customer") else {
            panic!()
        };
        assert!(o.contains("assembly row counts:"), "{o}");
        assert!(o.contains("rows"), "{o}");
        assert!(o.contains("row(s) total"), "{o}");
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut s = session();
        let Eval::Output(o) = s.eval("SELECT nothing FROM nowhere") else {
            panic!()
        };
        assert!(o.contains("parse error"), "{o}");
    }

    #[test]
    fn settings_commands() {
        let mut s = session();
        assert!(matches!(s.eval("\\protocol vickrey"), Eval::Output(o) if o.contains("vickrey")));
        assert!(matches!(s.eval("\\protocol nope"), Eval::Output(o) if o.contains("unknown")));
        assert!(matches!(s.eval("\\markup 1.5"), Eval::Output(o) if o.contains("1.5x")));
        assert!(matches!(s.eval("\\markup 0.5"), Eval::Output(o) if o.contains("invalid")));
        assert!(matches!(s.eval("\\buyer 1"), Eval::Output(o) if o.contains("node1")));
        assert!(matches!(s.eval("\\buyer 99"), Eval::Output(o) if o.contains("no such")));
        assert!(matches!(s.eval("\\wat"), Eval::Output(o) if o.contains("unknown command")));
    }

    #[test]
    fn faults_command_toggles_and_validates() {
        let mut s = session();
        assert!(
            matches!(s.eval("\\faults 0.15"), Eval::Output(o) if o.contains("15% message loss"))
        );
        assert!(matches!(s.eval("\\faults 0.2 42"), Eval::Output(o) if o.contains("seed 42")));
        assert!(matches!(s.eval("\\faults off"), Eval::Output(o) if o.contains("faults off")));
        assert!(matches!(s.eval("\\faults 0"), Eval::Output(o) if o.contains("faults off")));
        assert!(matches!(s.eval("\\faults 1.5"), Eval::Output(o) if o.contains("invalid")));
        assert!(matches!(s.eval("\\faults nope"), Eval::Output(o) if o.contains("invalid")));
        assert!(matches!(s.eval("\\faults"), Eval::Output(o) if o.contains("invalid")));
    }

    #[test]
    fn sql_under_faults_reports_counters_and_still_plans() {
        let mut s = session();
        s.eval("\\faults 0.15");
        let Eval::Output(o) = s.eval(
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        ) else {
            panic!()
        };
        assert!(o.contains("faults:"), "{o}");
        assert!(o.contains("dropped"), "{o}");
        assert!(o.contains("retries"), "{o}");
        assert!(o.contains("row(s):"), "{o}");
        // Turning faults back off restores the direct driver (no fault line).
        s.eval("\\faults off");
        let Eval::Output(o) = s.eval("SELECT custname FROM customer") else {
            panic!()
        };
        assert!(!o.contains("faults:"), "{o}");
    }

    #[test]
    fn serve_reports_throughput() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\serve 6 3") else {
            panic!()
        };
        assert!(o.contains("served 6 queries at concurrency 3"), "{o}");
        assert!(o.contains("(6 planned)"), "{o}");
        assert!(o.contains("queries/s"), "{o}");
        assert!(o.contains("p95"), "{o}");
        assert!(o.contains("per query"), "{o}");
        // Default concurrency is 1; bad arguments are rejected.
        assert!(matches!(s.eval("\\serve 2"), Eval::Output(o) if o.contains("concurrency 1")));
        assert!(matches!(s.eval("\\serve"), Eval::Output(o) if o.contains("invalid")));
        assert!(matches!(s.eval("\\serve 4 0"), Eval::Output(o) if o.contains("invalid")));
    }

    #[test]
    fn cache_command_tracks_serve_bursts_across_commands() {
        let mut s = session();
        // A fresh session's cache is empty.
        let Eval::Output(o) = s.eval("\\cache") else {
            panic!()
        };
        assert!(o.contains("0 entries"), "{o}");
        // The first burst misses on each distinct query and fills the cache
        // (repeats within the burst may already hit); a repeat of the same
        // stream is served entirely from it — the cache persists across
        // \serve invocations, which is the whole point of the command.
        let Eval::Output(first) = s.eval("\\serve 6 3") else {
            panic!()
        };
        assert!(first.contains("misses this burst"), "{first}");
        assert!(!first.contains("0 misses"), "{first}");
        let Eval::Output(second) = s.eval("\\serve 6 3") else {
            panic!()
        };
        assert!(
            second.contains("result cache: 6 hits, 0 misses"),
            "{second}"
        );
        let Eval::Output(o) = s.eval("\\cache") else {
            panic!()
        };
        assert!(!o.contains("0 entries"), "{o}");
        assert!(o.contains("hit rate"), "{o}");
        // Clearing drops the entries but keeps the lifetime counters.
        assert!(matches!(s.eval("\\cache clear"), Eval::Output(o) if o.contains("cleared")));
        let Eval::Output(o) = s.eval("\\cache") else {
            panic!()
        };
        assert!(o.contains("0 entries"), "{o}");
        assert!(matches!(s.eval("\\cache nope"), Eval::Output(o) if o.contains("invalid")));
    }

    #[test]
    fn real_command_serves_on_threads_with_wall_clock_figures() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\real 4 2") else {
            panic!()
        };
        assert!(o.contains("served 4 queries at concurrency 2"), "{o}");
        assert!(o.contains("(4 planned)"), "{o}");
        assert!(o.contains("node threads"), "{o}");
        assert!(o.contains("wall clock"), "{o}");
        assert!(o.contains("codec bytes on the wire"), "{o}");
        assert!(matches!(s.eval("\\real 2"), Eval::Output(o) if o.contains("concurrency 1")));
        assert!(matches!(s.eval("\\real"), Eval::Output(o) if o.contains("invalid")));
        assert!(matches!(s.eval("\\real 4 0"), Eval::Output(o) if o.contains("invalid")));
    }

    #[test]
    fn exec_command_compares_executors_and_prints_timings() {
        let mut s = session();
        let Eval::Output(o) = s.eval("\\exec 2000 64") else {
            panic!()
        };
        assert!(o.contains("input rows"), "{o}");
        assert!(o.contains("row executor:"), "{o}");
        assert!(o.contains("columnar executor:"), "{o}");
        assert!(o.contains("batch 64"), "{o}");
        assert!(o.contains("results identical: yes"), "{o}");
        assert!(o.contains("operator timings (columnar):"), "{o}");
        assert!(o.contains("spill:"), "{o}");
        // The default batch is DEFAULT_BATCH_ROWS; bad args are rejected.
        assert!(matches!(s.eval("\\exec 1000"), Eval::Output(o) if o.contains("batch 1024")));
        assert!(matches!(s.eval("\\exec"), Eval::Output(o) if o.contains("invalid")));
        assert!(matches!(s.eval("\\exec 100 0"), Eval::Output(o) if o.contains("invalid")));
    }

    #[test]
    fn contracts_command_crashes_and_repairs_the_winner() {
        let mut s = Session::new(&Args {
            demo: crate::Demo::Synthetic,
            nodes: 8,
            relations: 3,
            partitions: 2,
            replicas: 3,
            seed: 3,
        });
        let Eval::Output(o) = s.eval(
            "\\contracts SELECT r0.b, r2.c FROM r0, r1, r2 \
             WHERE r0.a = r1.a AND r1.a = r2.a",
        ) else {
            panic!()
        };
        assert!(o.contains("fault-free contracts:"), "{o}");
        assert!(o.contains("[completed]"), "{o}");
        assert!(o.contains("crashing winner"), "{o}");
        assert!(o.contains("repaired plan executes on:"), "{o}");
        assert!(o.contains("(replacement)"), "{o}");
        assert!(matches!(s.eval("\\contracts"), Eval::Output(o) if o.contains("usage")));
        assert!(
            matches!(s.eval("\\contracts nonsense"), Eval::Output(o) if o.contains("parse error"))
        );
    }

    #[test]
    fn synthetic_demo_works() {
        let mut s = Session::new(&Args {
            demo: crate::Demo::Synthetic,
            nodes: 4,
            relations: 2,
            partitions: 2,
            replicas: 1,
            seed: 3,
        });
        let Eval::Output(o) =
            s.eval("SELECT r0.b, r1.c FROM r0, r1 WHERE r0.a = r1.a AND r0.b < 10")
        else {
            panic!()
        };
        assert!(o.contains("row(s):"), "{o}");
    }
}
