//! Traditional distributed-optimization baselines.
//!
//! The paper compares QT against "some of the currently most efficient
//! techniques for distributed query optimization" — exhaustive System-R-style
//! dynamic programming and Kossmann & Stocker's IDP — run the classical way:
//! one site with *global knowledge* optimizes everything centrally.
//!
//! To keep the comparison apples-to-apples, the baselines search **the same
//! plan space** as QT (sub-plans execute at data-holding nodes; cross-node
//! joins execute at the buyer; no third-site shipping) and emit the same
//! [`qt_core::DistributedPlan`]; they differ in *how the knowledge and work are
//! obtained*:
//!
//! * **Knowledge**: the baseline site first collects the full catalog
//!   (statistics of every partition) from every node — the messages/bytes
//!   that autonomy makes unreliable in practice, and that the experiments
//!   charge to the baseline.
//! * **Work**: all enumeration happens serially at the central site, so its
//!   optimization time is the *sum* of what QT's sellers do in parallel.
//! * **Honesty**: sub-plan costs are computed from true statistics with no
//!   strategic markup — the baseline is the best case for classical
//!   optimization. Quality ratios against it are therefore conservative for
//!   QT.

use qt_catalog::{Catalog, NodeId};
use qt_core::buyer::IterationStats;
use qt_core::plangen::PlanGenerator;
use qt_core::{Offer, QtConfig, QtOutcome, SellerEngine};
use qt_cost::NodeResources;
use qt_optimizer::JoinEnumerator;
use qt_query::Query;
use qt_trade::SellerStrategy;

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Centralized exhaustive dynamic programming over the full catalog.
    TradDp,
    /// Centralized IDP-M(k,m) (the paper evaluates IDP-M(2,5)).
    TradIdp {
        /// Pruning size.
        k: usize,
        /// Plans kept at size `k`.
        m: usize,
    },
    /// Naive: fetch every base fragment raw and do all joins at the buyer.
    ShipAll,
}

impl BaselineKind {
    /// Display label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            BaselineKind::TradDp => "TradDP".into(),
            BaselineKind::TradIdp { k, m } => format!("TradIDP({k},{m})"),
            BaselineKind::ShipAll => "ShipAll".into(),
        }
    }
}

/// Approximate serialized size of one partition's statistics in the catalog
/// collection phase (rows + per-column ndv/min/max/width).
pub const STATS_BYTES_PER_PARTITION: f64 = 256.0;

/// Run a baseline optimizer with global knowledge. Returns a [`QtOutcome`]
/// so the experiment harness treats all algorithms uniformly.
pub fn run_baseline(
    kind: BaselineKind,
    catalog: &Catalog,
    resources: &std::collections::BTreeMap<NodeId, qt_cost::NodeResources>,
    buyer_node: NodeId,
    query: &Query,
    config: &QtConfig,
) -> QtOutcome {
    // The baseline's "offers" are what each node's data can contribute,
    // computed centrally from true statistics, exhaustively (full k), with
    // no markup. Reuse the seller machinery with a truthful config.
    let enumerator = match kind {
        BaselineKind::TradDp => JoinEnumerator::Exhaustive,
        BaselineKind::TradIdp { k, m } => JoinEnumerator::IdpM { k, m },
        BaselineKind::ShipAll => JoinEnumerator::Exhaustive,
    };
    let central_cfg = QtConfig {
        seller_strategy: SellerStrategy::Truthful,
        enumerator,
        max_partial_k: match kind {
            BaselineKind::ShipAll => 1,
            _ => query.num_relations().max(1),
        },
        enable_views: false,
        enable_partial_agg: !matches!(kind, BaselineKind::ShipAll),
        ..config.clone()
    };

    let mut offers: Vec<Offer> = Vec::new();
    let mut effort = 0u64;
    let mut collected_bytes = 0.0f64;
    let mut messages = 0u64;
    let mut data_holders = 0u64;
    for &node in &catalog.nodes {
        let holdings = catalog.holdings_of(node);
        let parts = holdings.held.len();
        if parts > 0 {
            data_holders += 1;
        }
        if node != buyer_node {
            // Catalog collection round-trip.
            messages += 2;
            collected_bytes += parts as f64 * STATS_BYTES_PER_PARTITION;
        }
        if parts == 0 {
            continue;
        }
        let mut seller = SellerEngine::new(holdings, central_cfg.clone());
        if let Some(r) = resources.get(&node) {
            seller.resources = r.clone();
        }
        let resp = seller.respond(
            0,
            &[qt_core::RfbItem {
                query: query.clone(),
                ref_value: f64::INFINITY,
            }],
        );
        effort += resp.effort;
        offers.extend(resp.offers);
    }
    if matches!(kind, BaselineKind::ShipAll) {
        offers.retain(|o| o.query.num_relations() == 1);
    }

    // Collection is serialized at the central site: every node is polled
    // (autonomy means even apparently-empty nodes must answer) and the
    // responses arrive over one inbound link.
    let collect_time = config.link.latency
        + collected_bytes / config.link.bandwidth
        + (catalog.nodes.len().saturating_sub(1)) as f64 * config.per_offer_seconds;

    // What the central site really pays for: one global join-order
    // enumeration over the full catalog. A classical R*-style optimizer
    // keeps one memo entry per (sub-plan, candidate execution site), so the
    // enumeration effort scales with the number of data-holding sites. The
    // per-node responses above are plan-construction scaffolding, not
    // charged. ShipAll skips enumeration entirely — it has nothing to
    // decide.
    let global_effort = if matches!(kind, BaselineKind::ShipAll) {
        0
    } else {
        let lo = qt_optimizer::LocalOptimizer::new(catalog).with_enumerator(enumerator);
        lo.optimize(query).effort * data_holders.max(1)
    };

    let pg = PlanGenerator {
        dict: &catalog.dict,
        query,
        config: &central_cfg,
        buyer_resources: NodeResources::reference(),
    };
    let gen = pg.generate(&offers);

    // Dispatch the chosen fragments to their executing sites.
    if let Some(plan) = &gen.plan {
        for p in &plan.purchases {
            if p.offer.seller != buyer_node {
                messages += 1;
                collected_bytes += config.query_msg_bytes;
            }
        }
    }

    // Serial central work: collection + global enumeration + plan
    // generation (all at one site, nothing parallel).
    let time = collect_time
        + global_effort as f64 * config.per_subplan_seconds
        + gen.considered as f64 * config.per_offer_seconds;
    let _ = effort;

    let best_cost = gen
        .plan
        .as_ref()
        .map(|p| p.est.additive_cost)
        .unwrap_or(f64::INFINITY);
    QtOutcome {
        plan: gen.plan,
        iterations: 1,
        messages,
        bytes: collected_bytes,
        optimization_time: time,
        seller_effort: global_effort,
        buyer_considered: gen.considered,
        offer_cache_hits: 0,
        offer_cache_misses: 0,
        retries: 0,
        timeouts: 0,
        degraded_rounds: 0,
        unreachable_sellers: Vec::new(),
        contracts_awarded: 0,
        contracts_repaired: 0,
        reawards: 0,
        rescoped_trades: 0,
        contracts: Vec::new(),
        history: vec![IterationStats {
            round: 0,
            offers_received: offers.len(),
            queries_asked: 1,
            best_cost,
            considered: gen.considered,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{
        AttrType, CatalogBuilder, PartId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_query::parse_query;

    /// r partitioned over nodes 1,2; s on node 3; buyer is node 0.
    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
            Partitioning::Hash { attr: 0, parts: 2 },
        );
        let s = b.add_relation(
            RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
            Partitioning::Single,
        );
        for i in 0..2u16 {
            b.set_stats(
                PartId::new(r, i),
                PartitionStats::synthetic(10_000, &[5_000, 100]),
            );
            b.place(PartId::new(r, i), NodeId(1 + i as u32));
        }
        b.set_stats(
            PartId::new(s, 0),
            PartitionStats::synthetic(2_000, &[2_000, 50]),
        );
        b.place(PartId::new(s, 0), NodeId(3));
        b.add_node(NodeId(0));
        b.build()
    }

    #[test]
    fn traddp_produces_a_plan_with_collection_messages() {
        let cat = catalog();
        let q = parse_query(&cat.dict, "SELECT b, c FROM r, s WHERE r.a = s.a").unwrap();
        let out = run_baseline(
            BaselineKind::TradDp,
            &cat,
            &Default::default(),
            NodeId(0),
            &q,
            &QtConfig::default(),
        );
        let plan = out.plan.expect("plan");
        assert!(plan.purchases.len() >= 2, "fragments from multiple nodes");
        // 2 messages per remote node (3 remote nodes) + dispatches.
        assert!(out.messages >= 6);
        assert!(out.bytes > 0.0);
        assert!(out.optimization_time > 0.0);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn ship_all_is_never_cheaper_than_traddp() {
        let cat = catalog();
        let q = parse_query(&cat.dict, "SELECT b, c FROM r, s WHERE r.a = s.a").unwrap();
        let cfg = QtConfig::default();
        let dp = run_baseline(
            BaselineKind::TradDp,
            &cat,
            &Default::default(),
            NodeId(0),
            &q,
            &cfg,
        );
        let ship = run_baseline(
            BaselineKind::ShipAll,
            &cat,
            &Default::default(),
            NodeId(0),
            &q,
            &cfg,
        );
        let dp_cost = dp.plan.unwrap().est.additive_cost;
        let ship_cost = ship.plan.unwrap().est.additive_cost;
        assert!(
            dp_cost <= ship_cost + 1e-9,
            "dp {dp_cost} vs ship {ship_cost}"
        );
        // ShipAll plans only buy single-relation fragments.
        let ship_out = run_baseline(
            BaselineKind::ShipAll,
            &cat,
            &Default::default(),
            NodeId(0),
            &q,
            &cfg,
        );
        for p in ship_out.plan.unwrap().purchases {
            assert_eq!(p.offer.query.num_relations(), 1);
        }
    }

    #[test]
    fn idp_reduces_effort_on_larger_joins() {
        // 6-relation chain spread over nodes.
        let mut b = CatalogBuilder::new();
        let mut rels = Vec::new();
        for i in 0..6u32 {
            let r = b.add_relation(
                RelationSchema::new(
                    format!("r{i}"),
                    vec![("k", AttrType::Int), ("v", AttrType::Int)],
                ),
                Partitioning::Single,
            );
            b.set_stats(
                PartId::new(r, 0),
                PartitionStats::synthetic(1_000, &[500, 100]),
            );
            b.place(PartId::new(r, 0), NodeId(1)); // all on one node → big local DP
            rels.push(r);
        }
        b.add_node(NodeId(0));
        let cat = b.build();
        let sql = "SELECT r0.v, r5.v FROM r0, r1, r2, r3, r4, r5 WHERE \
                   r0.k = r1.k AND r1.k = r2.k AND r2.k = r3.k AND r3.k = r4.k AND r4.k = r5.k";
        let q = parse_query(&cat.dict, sql).unwrap();
        let cfg = QtConfig::default();
        let dp = run_baseline(
            BaselineKind::TradDp,
            &cat,
            &Default::default(),
            NodeId(0),
            &q,
            &cfg,
        );
        let idp = run_baseline(
            BaselineKind::TradIdp { k: 2, m: 5 },
            &cat,
            &Default::default(),
            NodeId(0),
            &q,
            &cfg,
        );
        assert!(
            idp.seller_effort < dp.seller_effort,
            "IDP prunes: {} vs {}",
            idp.seller_effort,
            dp.seller_effort
        );
        assert!(idp.plan.is_some());
        // IDP quality can be worse but never better than exhaustive DP
        // (both search the same space with the same cost model).
        let dpc = dp.plan.unwrap().est.additive_cost;
        let idpc = idp.plan.unwrap().est.additive_cost;
        assert!(idpc >= dpc - 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(BaselineKind::TradDp.label(), "TradDP");
        assert_eq!(BaselineKind::TradIdp { k: 2, m: 5 }.label(), "TradIDP(2,5)");
        assert_eq!(BaselineKind::ShipAll.label(), "ShipAll");
    }
}
