//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses. The build container has no crates.io access, so the workspace
//! renames this crate to `proptest`; the property tests keep their upstream
//! syntax (`proptest! { fn f(x in 0..10i64, ...) { ... } }`).
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case panics with the raw assertion message;
//! * cases are generated from a fixed per-test seed (derived from the test
//!   name), so runs are fully deterministic;
//! * only the strategy combinators the repo uses exist: ranges, tuples,
//!   [`Just`], `prop_map`, [`prop_oneof!`], `any::<bool>()`, and
//!   `prop::collection::vec`.

use rand::{Rng, SeedableRng};

/// Deterministic per-test randomness source for strategies.
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    /// A generator seeded from the test's name (stable across runs).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::rngs::SmallRng::seed_from_u64(h),
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Run configuration: how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union of `options` (picked uniformly).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Marker for `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_range(0u8..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// `Vec`s of `element` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi_exclusive: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.random_range(self.lo..self.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Bounds accepted by [`vec`].
        pub trait SizeRange {
            /// Normalize to `[lo, hi)` half-open bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeRange for core::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        /// A strategy for `Vec`s of `element` values, sized by `size`.
        pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
            let (lo, hi_exclusive) = size.bounds();
            assert!(lo < hi_exclusive, "empty size range");
            VecStrategy {
                element,
                lo,
                hi_exclusive,
            }
        }

        /// `BTreeSet`s of `element` with a *target* size drawn from `size`.
        ///
        /// As in upstream proptest, duplicate draws collapse, so the realized
        /// set may be smaller than the drawn length.
        pub struct BTreeSetStrategy<S> {
            element: S,
            lo: usize,
            hi_exclusive: usize,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> std::collections::BTreeSet<S::Value> {
                let len = rng.random_range(self.lo..self.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy for `BTreeSet`s of `element` values, sized by `size`.
        pub fn btree_set<S: Strategy>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            let (lo, hi_exclusive) = size.bounds();
            assert!(lo < hi_exclusive, "empty size range");
            BTreeSetStrategy {
                element,
                lo,
                hi_exclusive,
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// The property-test entry macro. Expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` running [`ProptestConfig::cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = ($strat).generate(&mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` under a property (no shrinking; panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current generated case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -10i64..10, y in 1usize..4, b in any::<bool>()) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((1..4).contains(&y));
            let _ = b;
        }

        #[test]
        fn mapped_tuples_work(
            p in (0u32..5, 10.0f64..20.0).prop_map(|(a, f)| (a * 2, f / 2.0)),
            v in prop::collection::vec(0i32..3, 1..5),
        ) {
            prop_assert!(p.0 % 2 == 0);
            prop_assert!(p.1 < 10.0);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|e| (0..3).contains(e)));
        }

        #[test]
        fn oneof_and_assume(choice in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assume!(choice != 2);
            prop_assert!(choice == 1 || (3..5).contains(&choice));
        }
    }

    #[test]
    fn config_controls_case_count() {
        use std::sync::atomic::{AtomicU32, Ordering};
        // Indirect: a config of 3 cases runs the body exactly three times.
        static RUNS: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            #[allow(unused)]
            fn three_cases(x in 0i64..100) {
                RUNS.fetch_add(1, Ordering::Relaxed);
            }
        }
        three_cases();
        assert_eq!(RUNS.load(Ordering::Relaxed), 3);
    }
}
