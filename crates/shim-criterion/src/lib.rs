//! Offline stand-in for the subset of the `criterion` benchmark harness this
//! workspace uses (`bench_function`, benchmark groups, `bench_with_input`,
//! the `criterion_group!`/`criterion_main!` macros). The build container has
//! no crates.io access, so the workspace renames this crate to `criterion`.
//!
//! Measurement model: per benchmark, a short warm-up then timed batches
//! until the measurement budget is spent; the reported figure is the best
//! (minimum) per-iteration time, which is the stable statistic for
//! throughput-style micro-benches. Budgets honor two env vars so `cargo
//! test` stays fast while `cargo bench` measures properly:
//!
//! * `QT_BENCH_WARMUP_MS` — warm-up per bench (default 50).
//! * `QT_BENCH_MEASURE_MS` — measurement per bench (default 300).
//! * `QT_BENCH_OUT` — if set, append one JSON line per bench to this file.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully-qualified benchmark name (`group/label` when grouped).
    pub name: String,
    /// Best observed seconds per iteration.
    pub secs_per_iter: f64,
    /// Iterations per second implied by the best time.
    pub ops_per_sec: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// The per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    best_secs: f64,
    iterations: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record the best per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also sizes the batch so each timed batch is ~1ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.measure;
        let mut best = f64::INFINITY;
        let mut total = 0u64;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let secs = t.elapsed().as_secs_f64() / batch as f64;
            best = best.min(secs);
            total += batch;
        }
        self.best_secs = best;
        self.iterations = total;
    }
}

/// The benchmark registry/driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    /// Everything measured so far (read by snapshot writers).
    pub results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("QT_BENCH_WARMUP_MS", 50),
            measure: env_ms("QT_BENCH_MEASURE_MS", 300),
            results: Vec::new(),
        }
    }
}

fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

impl Criterion {
    /// Measure one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            best_secs: f64::NAN,
            iterations: 0,
        };
        f(&mut b);
        let m = Measurement {
            name: name.to_string(),
            secs_per_iter: b.best_secs,
            ops_per_sec: 1.0 / b.best_secs,
            iterations: b.iterations,
        };
        println!(
            "{:<44} time: {:>12}/iter   {:>14.1} ops/s   ({} iters)",
            m.name,
            human(m.secs_per_iter),
            m.ops_per_sec,
            m.iterations
        );
        append_json(&m);
        self.results.push(m);
        self
    }

    /// Open a named group; member benches report as `group/label`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.to_string(),
        }
    }
}

fn append_json(m: &Measurement) {
    let Ok(path) = std::env::var("QT_BENCH_OUT") else {
        return;
    };
    let mut line = String::new();
    let _ = writeln!(
        line,
        "{{\"name\":\"{}\",\"secs_per_iter\":{:e},\"ops_per_sec\":{:.3},\"iterations\":{}}}",
        m.name.replace('"', "'"),
        m.secs_per_iter,
        m.ops_per_sec,
        m.iterations
    );
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// A parameterized benchmark id (`BenchmarkId::new("DP", 4)` → `DP/4`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter (`from_parameter(4)` → `4`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Labels accepted by group benches: strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Measure one member bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.into_label());
        self.c.bench_function(&name, f);
        self
    }

    /// Measure one member bench that takes an input by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id.into_label());
        self.c.bench_function(&name, |b| f(b, input));
        self
    }

    /// End the group (retained for API compatibility).
    pub fn finish(&mut self) {}
}

/// Build the registration function `criterion_main!` calls.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Build `fn main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench targets with libtest-style
            // flags; a bench binary invoked that way only needs to smoke-run,
            // so shrink the budgets to keep the suite fast.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                std::env::set_var("QT_BENCH_WARMUP_MS", "1");
                std::env::set_var("QT_BENCH_MEASURE_MS", "5");
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        std::env::set_var("QT_BENCH_WARMUP_MS", "1");
        std::env::set_var("QT_BENCH_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop_loop", |b| b.iter(|| black_box(3u64) * 7));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("x", 4), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[1].name, "grp/x/4");
        for m in &c.results {
            assert!(m.secs_per_iter > 0.0 && m.secs_per_iter.is_finite());
            assert!(m.ops_per_sec > 0.0);
            assert!(m.iterations > 0);
        }
    }
}
