//! Strategy modules.
//!
//! Strategies are the *private policies* of the trading parties (§2): given a
//! party's true valuation, what does it announce? Cooperative strategies
//! maximize joint surplus (truth-telling); competitive strategies maximize
//! private surplus (markups, adapted from outcomes).

use qt_cost::AnswerProperties;
use std::collections::HashMap;

/// The seller-side strategy: turn a true cost estimate into an asking offer.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SellerStrategy {
    /// Cooperative: ask exactly the true cost (parts of one organization —
    /// the paper's telecom company).
    #[default]
    Truthful,
    /// Competitive: multiply the true cost by `markup` (>= 1). With
    /// `adaptive`, the markup moves by `step` after each outcome — up after
    /// a win (extract more surplus), down after a loss (price back in) —
    /// clamped to `[1, max_markup]`.
    Markup {
        /// Current markup factor.
        markup: f64,
        /// Whether outcomes adjust the markup.
        adaptive: bool,
        /// Adjustment step per outcome.
        step: f64,
        /// Upper clamp for the markup.
        max_markup: f64,
    },
}

impl SellerStrategy {
    /// A fixed, non-adaptive markup.
    pub fn fixed_markup(markup: f64) -> Self {
        SellerStrategy::Markup {
            markup,
            adaptive: false,
            step: 0.0,
            max_markup: markup,
        }
    }

    /// A standard adaptive competitor.
    pub fn adaptive_markup(initial: f64) -> Self {
        SellerStrategy::Markup {
            markup: initial,
            adaptive: true,
            step: 0.05,
            max_markup: 3.0,
        }
    }

    /// Whether trade outcomes move this strategy's asks — if so, prices
    /// cached before an award may be stale after it (cache-invalidation
    /// consumers key off this).
    pub fn adapts(&self) -> bool {
        matches!(self, SellerStrategy::Markup { adaptive: true, .. })
    }

    /// The asking properties announced for a true-cost estimate.
    pub fn ask_for(&self, true_cost: &AnswerProperties) -> AnswerProperties {
        match self {
            SellerStrategy::Truthful => true_cost.clone(),
            SellerStrategy::Markup { markup, .. } => {
                let mut p = true_cost.clone();
                p.total_time *= markup;
                p.first_row_time *= markup;
                p.price *= markup;
                if p.total_time > 0.0 {
                    p.rows_per_sec = p.rows / p.total_time;
                }
                p
            }
        }
    }

    /// Feed back a negotiation outcome so adaptive strategies can learn.
    pub fn observe_outcome(&mut self, won: bool) {
        if let SellerStrategy::Markup {
            markup,
            adaptive: true,
            step,
            max_markup,
        } = self
        {
            if won {
                *markup = (*markup + *step).min(*max_markup);
            } else {
                *markup = (*markup - *step).max(1.0);
            }
        }
    }

    /// Current markup factor (1.0 for truthful).
    pub fn current_markup(&self) -> f64 {
        match self {
            SellerStrategy::Truthful => 1.0,
            SellerStrategy::Markup { markup, .. } => *markup,
        }
    }
}

/// The buyer-side value book (step B1): the buyer's running estimates of what
/// each traded item should cost, used as the RFB reference value and the
/// walk-away reserve of the nested negotiation.
///
/// Keys are opaque item fingerprints so this crate stays query-agnostic.
#[derive(Debug, Clone, Default)]
pub struct BuyerValueBook {
    estimates: HashMap<u64, f64>,
    /// Reserve multiplier: the buyer walks away above `reserve_factor × est`.
    pub reserve_factor: f64,
    /// Default estimate for never-seen items (the paper's "predefined
    /// constant" initial value).
    pub default_estimate: f64,
}

impl BuyerValueBook {
    /// Fresh book with the given defaults.
    pub fn new(default_estimate: f64, reserve_factor: f64) -> Self {
        BuyerValueBook {
            estimates: HashMap::new(),
            reserve_factor,
            default_estimate,
        }
    }

    /// Current estimate for an item.
    pub fn estimate(&self, item: u64) -> f64 {
        self.estimates
            .get(&item)
            .copied()
            .unwrap_or(self.default_estimate)
    }

    /// The buyer's walk-away value for an item.
    pub fn reserve(&self, item: u64) -> f64 {
        let est = self.estimate(item);
        if est.is_finite() {
            est * self.reserve_factor
        } else {
            f64::INFINITY
        }
    }

    /// Record an observed market value (best received ask), moving the
    /// estimate by exponential smoothing.
    pub fn observe(&mut self, item: u64, value: f64) {
        let e = self.estimates.entry(item).or_insert(value);
        *e = 0.5 * *e + 0.5 * value;
    }

    /// Number of items tracked.
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Is the book empty?
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(t: f64) -> AnswerProperties {
        AnswerProperties::timed(t, 100.0, 800.0)
    }

    #[test]
    fn truthful_asks_cost() {
        let s = SellerStrategy::Truthful;
        assert_eq!(s.ask_for(&cost(10.0)).total_time, 10.0);
        assert_eq!(s.current_markup(), 1.0);
    }

    #[test]
    fn markup_scales_time_and_price() {
        let s = SellerStrategy::fixed_markup(1.5);
        let a = s.ask_for(&cost(10.0).priced(4.0));
        assert!((a.total_time - 15.0).abs() < 1e-12);
        assert!((a.price - 6.0).abs() < 1e-12);
        assert!((a.rows_per_sec - 100.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_markup_moves_with_outcomes() {
        let mut s = SellerStrategy::adaptive_markup(1.2);
        s.observe_outcome(true);
        assert!((s.current_markup() - 1.25).abs() < 1e-12);
        for _ in 0..20 {
            s.observe_outcome(false);
        }
        assert!((s.current_markup() - 1.0).abs() < 1e-12, "clamped at 1");
        for _ in 0..100 {
            s.observe_outcome(true);
        }
        assert!(s.current_markup() <= 3.0 + 1e-12, "clamped at max");
    }

    #[test]
    fn truthful_ignores_outcomes() {
        let mut s = SellerStrategy::Truthful;
        s.observe_outcome(true);
        assert_eq!(s, SellerStrategy::Truthful);
    }

    #[test]
    fn value_book_defaults_and_learning() {
        let mut b = BuyerValueBook::new(100.0, 2.0);
        assert_eq!(b.estimate(1), 100.0);
        assert_eq!(b.reserve(1), 200.0);
        b.observe(1, 40.0);
        assert_eq!(b.estimate(1), 40.0);
        b.observe(1, 20.0);
        assert_eq!(b.estimate(1), 30.0);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn infinite_default_keeps_reserve_open() {
        let b = BuyerValueBook::new(f64::INFINITY, 2.0);
        assert_eq!(b.reserve(7), f64::INFINITY);
    }
}
