//! Semantic cache with view subsumption (ROADMAP item 3).
//!
//! The PR-1 offer cache keyed entries on exact [`Query::fingerprint`]
//! equality, so near-duplicate queries — the common case under
//! template-heavy, Zipf-skewed traffic — re-traded from scratch. This
//! module promotes that cache to a *semantic* index: a cached value for
//! `Q'` can serve any request `Q ⊑ Q'` found by the §3.5
//! answering-queries-using-views matcher ([`match_view`]), with the
//! caller attaching a compensation step (residual filter / re-aggregation
//! / projection) described by the returned [`ViewMatch`].
//!
//! The cache is generic over the cached value `V` so the same structure
//! backs both integration layers:
//!
//! * **seller-side** (`qt_core::seller`): `V = Vec<Offer>` — cached RFB
//!   replies, where a semantic hit derives offers for `Q` from the offers
//!   priced for `Q'`;
//! * **serving-side** (`qt_core::session`): `V = DistributedPlan` — a
//!   session-shared result cache where a semantic hit wraps the cached
//!   assembly in a compensation plan.
//!
//! ## Determinism
//!
//! All probe results are deterministic functions of the cache contents:
//! candidate enumeration walks a `BTreeMap`/`BTreeSet` index (never a
//! `HashMap` iteration order) and ties are broken by a total order
//! (exactness, residual work, benefit bits, entry key). [`SemCache::probe`]
//! takes `&self` only, so parallel seller shards may probe concurrently
//! while all mutation happens in the deterministic serial merge — the same
//! split the PR-1 cache used.
//!
//! ## Admission and eviction
//!
//! Entries carry a `benefit` — the effort the entry saves per hit (sellers
//! pass the metered offer-construction effort; the serving layer passes a
//! trading-round/message count). When a capacity is configured, a full
//! cache admits a new entry only by evicting the minimum-benefit entry,
//! and only if the newcomer's benefit is at least that minimum (ties broken
//! by insertion stamp, then key — oldest goes first). Capacity `0` means
//! unbounded, which preserves the PR-1 behaviour.

use qt_catalog::RelId;
use qt_query::views::{match_view, ViewMatch};
use qt_query::Query;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One cached entry: the query it answers, the cached value, and the
/// admission metadata.
#[derive(Debug, Clone)]
pub struct SemEntry<V> {
    /// The query this entry answers exactly.
    pub query: Query,
    /// The cached value (offers, a plan, …).
    pub value: V,
    /// Effort saved per hit; the eviction weight.
    pub benefit: f64,
    /// Insertion order stamp (monotone per cache).
    pub stamp: u64,
    /// May this entry serve *subsuming* (non-exact) probes? Entries whose
    /// key mixes in non-query state (e.g. subcontract hint digests) answer
    /// only exact probes.
    pub subsumable: bool,
}

/// Monotone hit/miss/churn counters, surfaced by `qtsh \cache` and the
/// serving-layer outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered by an exact-key entry.
    pub hits_exact: u64,
    /// Probes answered by a subsuming entry via [`match_view`].
    pub hits_semantic: u64,
    /// Probes answered by neither.
    pub misses: u64,
    /// Entries admitted (including replacements).
    pub insertions: u64,
    /// Entries denied admission by the benefit policy.
    pub rejected: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped by [`SemCache::invalidate_rels`] / [`SemCache::clear`].
    pub invalidated: u64,
}

impl CacheStats {
    /// Total hits, exact plus semantic.
    pub fn hits(&self) -> u64 {
        self.hits_exact + self.hits_semantic
    }

    /// Total probes recorded.
    pub fn probes(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when nothing was probed.
    pub fn hit_rate(&self) -> f64 {
        if self.probes() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.probes() as f64
        }
    }

    /// Fold another stats block into this one (for federation-wide totals).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits_exact += other.hits_exact;
        self.hits_semantic += other.hits_semantic;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.rejected += other.rejected;
        self.evictions += other.evictions;
        self.invalidated += other.invalidated;
    }
}

/// Result of a [`SemCache::probe`].
#[derive(Debug, Clone)]
pub enum Probe {
    /// The key itself is cached: the value answers the query verbatim.
    Exact,
    /// No exact entry, but subsuming candidates exist — ranked best-first.
    /// Each carries the entry key and the [`ViewMatch`] describing the
    /// compensation the caller must apply.
    Semantic(Vec<(u64, ViewMatch)>),
    /// Nothing applicable.
    Miss,
}

/// A semantic, subsumption-aware cache from query keys to values.
///
/// Probing is read-only and deterministic; all mutation (insertion,
/// eviction, invalidation, stats) happens through `&mut self` so callers
/// can keep it in their serial merge phase.
#[derive(Debug, Clone)]
pub struct SemCache<V> {
    entries: HashMap<u64, SemEntry<V>>,
    /// Inverted index: sorted relation-id set → entry keys over it. The
    /// matcher requires equal `FROM` lists, so only the bucket of the
    /// probe's own relation set can contain candidates; invalidation by
    /// mutated relation scans bucket keys, not entries.
    by_rels: BTreeMap<Vec<RelId>, BTreeSet<u64>>,
    /// Max entries; `0` = unbounded.
    capacity: usize,
    /// When false, probes never consult the matcher regardless of the
    /// caller's flag — the exact-fingerprint baseline the experiments
    /// compare the semantic cache against.
    semantic: bool,
    /// Next insertion stamp.
    clock: u64,
    stats: CacheStats,
}

impl<V> Default for SemCache<V> {
    fn default() -> Self {
        SemCache::new(0)
    }
}

impl<V> SemCache<V> {
    /// An empty cache holding at most `capacity` entries (`0` = unbounded).
    pub fn new(capacity: usize) -> Self {
        SemCache {
            entries: HashMap::new(),
            by_rels: BTreeMap::new(),
            capacity,
            semantic: true,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// A cache that only ever hits on exact fingerprints (the PR-1
    /// behaviour): the baseline arm of the semantic-cache experiments.
    pub fn exact_only(capacity: usize) -> Self {
        SemCache {
            semantic: false,
            ..SemCache::new(capacity)
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The entry stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&SemEntry<V>> {
        self.entries.get(&key)
    }

    fn rels_of(query: &Query) -> Vec<RelId> {
        // BTreeMap keys iterate sorted, so this vec is canonical.
        query.rel_ids().collect()
    }

    /// Look up `key` / `query`. Read-only — record the outcome afterwards
    /// with [`SemCache::record`] from the serial phase.
    ///
    /// With `semantic` false this degrades to the PR-1 exact probe. With it
    /// true, a key miss falls back to the §3.5 matcher over the entries
    /// sharing the query's relation set, returning all candidates ranked:
    /// exact rewritings first, then fewest residual steps, then highest
    /// benefit, then smallest key. Callers take the first candidate they
    /// can actually compensate for.
    pub fn probe(&self, key: u64, query: &Query, semantic: bool) -> Probe {
        if self.entries.contains_key(&key) {
            return Probe::Exact;
        }
        if !semantic || !self.semantic {
            return Probe::Miss;
        }
        let Some(bucket) = self.by_rels.get(&Self::rels_of(query)) else {
            return Probe::Miss;
        };
        let mut candidates: Vec<(u64, ViewMatch)> = Vec::new();
        for &k in bucket {
            let e = &self.entries[&k];
            if !e.subsumable {
                continue;
            }
            if let Some(m) = match_view(&e.query, query) {
                candidates.push((k, m));
            }
        }
        if candidates.is_empty() {
            return Probe::Miss;
        }
        let weight = |k: u64, m: &ViewMatch| {
            let work = m.residual_predicates.len() + usize::from(m.needs_reaggregation);
            let benefit = self.entries[&k].benefit;
            // Sort ascending: exact first, least residual work, highest
            // benefit, smallest key.
            (
                u8::from(!m.exact),
                work,
                std::cmp::Reverse(FloatOrd(benefit)),
                k,
            )
        };
        candidates.sort_by_key(|a| weight(a.0, &a.1));
        Probe::Semantic(candidates)
    }

    /// Record a probe outcome in the counters.
    pub fn record(&mut self, outcome: ProbeOutcome) {
        match outcome {
            ProbeOutcome::HitExact => self.stats.hits_exact += 1,
            ProbeOutcome::HitSemantic => self.stats.hits_semantic += 1,
            ProbeOutcome::Miss => self.stats.misses += 1,
        }
    }

    /// Insert `value` for `query` under `key`, evicting per the benefit
    /// policy if at capacity. Returns `false` when the policy denies
    /// admission (cache full of strictly more beneficial entries).
    ///
    /// Entries whose `key` is exactly `query.fingerprint()` may serve
    /// subsuming probes; entries under derived keys (hint digests) answer
    /// only exact probes.
    pub fn insert(&mut self, key: u64, query: Query, value: V, benefit: f64) -> bool {
        let replacing = self.entries.contains_key(&key);
        if !replacing && self.capacity > 0 && self.entries.len() >= self.capacity {
            // Victim: minimum (benefit, stamp, key) — the least valuable,
            // oldest entry. Deterministic: the scan order doesn't matter
            // because the ordering is total.
            let victim = self
                .entries
                .iter()
                .map(|(&k, e)| (FloatOrd(e.benefit), e.stamp, k))
                .min()
                .expect("capacity > 0 and cache full");
            if FloatOrd(benefit) < victim.0 {
                self.stats.rejected += 1;
                return false;
            }
            self.remove_key(victim.2);
            self.stats.evictions += 1;
        }
        if replacing {
            self.remove_key(key);
        }
        let subsumable = key == query.fingerprint();
        let rels = Self::rels_of(&query);
        self.by_rels.entry(rels).or_default().insert(key);
        let stamp = self.clock;
        self.clock += 1;
        self.entries.insert(
            key,
            SemEntry {
                query,
                value,
                benefit,
                stamp,
                subsumable,
            },
        );
        self.stats.insertions += 1;
        true
    }

    fn remove_key(&mut self, key: u64) -> Option<SemEntry<V>> {
        let e = self.entries.remove(&key)?;
        let rels = Self::rels_of(&e.query);
        if let Some(bucket) = self.by_rels.get_mut(&rels) {
            bucket.remove(&key);
            if bucket.is_empty() {
                self.by_rels.remove(&rels);
            }
        }
        Some(e)
    }

    /// Drop every entry whose relation set intersects `rels`; returns how
    /// many were dropped. This is the *selective* invalidation hook: an
    /// award or view/resource/stats mutation touching relation `R` only
    /// stales entries reading `R` — unrelated entries survive.
    pub fn invalidate_rels(&mut self, rels: &BTreeSet<RelId>) -> usize {
        let keys: Vec<u64> = self
            .by_rels
            .iter()
            .filter(|(bucket_rels, _)| bucket_rels.iter().any(|r| rels.contains(r)))
            .flat_map(|(_, keys)| keys.iter().copied())
            .collect();
        for k in &keys {
            self.remove_key(*k);
        }
        self.stats.invalidated += keys.len() as u64;
        keys.len()
    }

    /// Drop everything; returns how many entries were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.by_rels.clear();
        self.stats.invalidated += n as u64;
        n
    }
}

/// What a probe turned out to be, for [`SemCache::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Exact-key hit.
    HitExact,
    /// Subsumption hit.
    HitSemantic,
    /// Miss.
    Miss,
}

/// Total order over non-NaN f64 benefits (`total_cmp` wrapper).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FloatOrd(f64);

impl Eq for FloatOrd {}

impl PartialOrd for FloatOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FloatOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{AttrType, CatalogBuilder, PartitionStats, Partitioning, RelationSchema};
    use qt_catalog::{NodeId, PartId, RelId};
    use qt_query::predicate::{Col, CompOp, Predicate};
    use qt_query::query::SelectItem;

    fn dict() -> std::sync::Arc<qt_catalog::SchemaDict> {
        let mut b = CatalogBuilder::new();
        for name in ["alpha", "beta"] {
            let r = b.add_relation(
                RelationSchema::new(name, vec![("id", AttrType::Int), ("v", AttrType::Int)]),
                Partitioning::Single,
            );
            b.set_stats(
                PartId::new(r, 0),
                PartitionStats::synthetic(100, &[100, 10]),
            );
            b.place(PartId::new(r, 0), NodeId(0));
        }
        b.build().dict
    }

    fn wide(rel: RelId) -> Query {
        Query::over_full(&dict(), [rel]).with_select(vec![
            SelectItem::Col(Col::new(rel, 0)),
            SelectItem::Col(Col::new(rel, 1)),
        ])
    }

    fn narrow(rel: RelId, cut: i64) -> Query {
        Query::over_full(&dict(), [rel])
            .with_predicates(vec![Predicate::with_const(
                Col::new(rel, 0),
                CompOp::Gt,
                cut,
            )])
            .with_select(vec![SelectItem::Col(Col::new(rel, 1))])
    }

    #[test]
    fn exact_probe_hits_only_same_key() {
        let mut c: SemCache<u32> = SemCache::new(0);
        let q = wide(RelId(0));
        assert!(c.insert(q.fingerprint(), q.clone(), 7, 1.0));
        assert!(matches!(c.probe(q.fingerprint(), &q, false), Probe::Exact));
        let other = narrow(RelId(0), 5);
        assert!(matches!(
            c.probe(other.fingerprint(), &other, false),
            Probe::Miss
        ));
    }

    #[test]
    fn semantic_probe_finds_subsuming_entry() {
        let mut c: SemCache<u32> = SemCache::new(0);
        let q = wide(RelId(0));
        c.insert(q.fingerprint(), q.clone(), 7, 1.0);
        let sub = narrow(RelId(0), 5);
        match c.probe(sub.fingerprint(), &sub, true) {
            Probe::Semantic(cands) => {
                assert_eq!(cands.len(), 1);
                assert_eq!(cands[0].0, q.fingerprint());
                assert_eq!(cands[0].1.residual_predicates.len(), 1);
            }
            p => panic!("expected semantic hit, got {p:?}"),
        }
    }

    #[test]
    fn unrelated_relation_set_never_matches() {
        let mut c: SemCache<u32> = SemCache::new(0);
        let q = wide(RelId(0));
        c.insert(q.fingerprint(), q, 7, 1.0);
        let sub = narrow(RelId(1), 5);
        assert!(matches!(
            c.probe(sub.fingerprint(), &sub, true),
            Probe::Miss
        ));
    }

    #[test]
    fn hint_keyed_entries_serve_only_exact_probes() {
        let mut c: SemCache<u32> = SemCache::new(0);
        let q = wide(RelId(0));
        let hinted_key = q.fingerprint() ^ 0xdead_beef;
        c.insert(hinted_key, q.clone(), 7, 1.0);
        assert!(matches!(c.probe(hinted_key, &q, true), Probe::Exact));
        let sub = narrow(RelId(0), 5);
        assert!(matches!(
            c.probe(sub.fingerprint(), &sub, true),
            Probe::Miss
        ));
    }

    #[test]
    fn ranking_prefers_exact_then_least_residual_work() {
        let mut c: SemCache<u32> = SemCache::new(0);
        let rel = RelId(0);
        let wide_q = wide(rel);
        // A closer superset: already enforces id > 3, so serving id > 5
        // leaves the same residual count — but an *exact* entry for the
        // probe query itself must outrank both.
        let closer = Query::over_full(&dict(), [rel])
            .with_predicates(vec![Predicate::with_const(
                Col::new(rel, 0),
                CompOp::Gt,
                3i64,
            )])
            .with_select(vec![
                SelectItem::Col(Col::new(rel, 0)),
                SelectItem::Col(Col::new(rel, 1)),
            ]);
        c.insert(wide_q.fingerprint(), wide_q.clone(), 1, 1.0);
        c.insert(closer.fingerprint(), closer.clone(), 2, 9.0);
        let sub = narrow(rel, 5);
        match c.probe(sub.fingerprint(), &sub, true) {
            Probe::Semantic(cands) => {
                assert_eq!(cands.len(), 2);
                // Equal residual work (1 residual each) → higher benefit wins.
                assert_eq!(cands[0].0, closer.fingerprint());
            }
            p => panic!("expected semantic candidates, got {p:?}"),
        }
    }

    #[test]
    fn invalidate_rels_is_selective() {
        let mut c: SemCache<u32> = SemCache::new(0);
        let a = wide(RelId(0));
        let b = wide(RelId(1));
        c.insert(a.fingerprint(), a.clone(), 1, 1.0);
        c.insert(b.fingerprint(), b.clone(), 2, 1.0);
        let dropped = c.invalidate_rels(&BTreeSet::from([RelId(0)]));
        assert_eq!(dropped, 1);
        assert!(matches!(c.probe(a.fingerprint(), &a, false), Probe::Miss));
        assert!(matches!(c.probe(b.fingerprint(), &b, false), Probe::Exact));
        assert_eq!(c.stats().invalidated, 1);
    }

    #[test]
    fn capacity_evicts_minimum_benefit_and_rejects_worse() {
        let mut c: SemCache<u32> = SemCache::new(2);
        let a = wide(RelId(0));
        let b = wide(RelId(1));
        let s = narrow(RelId(0), 5);
        assert!(c.insert(a.fingerprint(), a.clone(), 1, 5.0));
        assert!(c.insert(b.fingerprint(), b.clone(), 2, 1.0));
        // Worse than both → rejected.
        assert!(!c.insert(s.fingerprint(), s.clone(), 3, 0.5));
        assert_eq!(c.stats().rejected, 1);
        // Better than the minimum → evicts b (benefit 1.0).
        assert!(c.insert(s.fingerprint(), s.clone(), 3, 2.0));
        assert_eq!(c.len(), 2);
        assert!(matches!(c.probe(b.fingerprint(), &b, false), Probe::Miss));
        assert!(matches!(c.probe(a.fingerprint(), &a, false), Probe::Exact));
        assert_eq!(c.stats().evictions, 1);
        // Replacing an existing key never needs an eviction.
        assert!(c.insert(a.fingerprint(), a.clone(), 9, 6.0));
        assert_eq!(c.get(a.fingerprint()).unwrap().value, 9);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stats_record_and_merge() {
        let mut c: SemCache<u32> = SemCache::new(0);
        c.record(ProbeOutcome::HitExact);
        c.record(ProbeOutcome::HitSemantic);
        c.record(ProbeOutcome::Miss);
        assert_eq!(c.stats().hits(), 2);
        assert_eq!(c.stats().probes(), 3);
        let mut total = CacheStats::default();
        total.merge(c.stats());
        total.merge(c.stats());
        assert_eq!(total.hits_semantic, 2);
        assert!((total.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
