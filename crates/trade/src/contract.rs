//! Contract lifecycle types: the award that ends a trade is itself a small
//! negotiation with acknowledgment, leases, and deterministic failover.
//!
//! The paper's framework ends each iteration with the buyer *awarding
//! contracts* to the winning sellers (§2.4). A one-way award is fragile:
//! under message loss or a crash of the winner the buyer holds a plan that
//! references a dead node. The lifecycle below makes failure recovery one
//! more deterministic step of the trade:
//!
//! ```text
//! Proposed ── award sent ──▶ Awarded ── AwardAck ──▶ Acked ──▶ Leased
//!                              │ │                               │
//!                 AwardDecline │ │ retries exhausted             │ heartbeats
//!                              ▼ ▼                               ▼
//!                       Declined  Expired ◀── lease misses ── Completed
//!                              │ │
//!            runner-up re-award / scoped re-trade (new contract), or
//!                              ▼
//!                          Abandoned
//! ```
//!
//! This module holds only the protocol-level pieces — the id and the state
//! machine with its legal transitions. The buyer-side controller that drives
//! the machine (bid book, re-awards, scoped re-trades) lives in `qt-core`,
//! which knows about offers and plans.

/// Identifies one contract — one purchased offer under lifecycle management.
/// Ids are allocated by the buyer; the serving layer namespaces them per
/// session (`(session + 1) << 32 | n`, mirroring its request-id encoding) so
/// one seller can hold contracts from many concurrent sessions without
/// collision and release a whole session's leases at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ContractId(pub u64);

impl std::fmt::Display for ContractId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Where a contract stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractState {
    /// Created, award not yet on the wire.
    Proposed,
    /// Award sent, acknowledgment pending (retransmitted with capped
    /// exponential backoff until acked, declined, or retries run out).
    Awarded,
    /// The seller acknowledged the award.
    Acked,
    /// The seller holds an execution lease the buyer refreshes with
    /// heartbeat timers; consecutive missed renewals expire it.
    Leased,
    /// The lease ran its probation and the contract stands. Terminal.
    Completed,
    /// The winner was lost (ack retries exhausted or lease expired); the
    /// slot moves to a runner-up re-award or a scoped re-trade. Terminal
    /// for *this* contract — the repair is a new one.
    Expired,
    /// The seller refused the award. Terminal; repaired like `Expired`.
    Declined,
    /// No runner-up and the scoped re-trades ran dry. Terminal.
    Abandoned,
}

impl ContractState {
    /// Short lowercase label for reports and the `qtsh \contracts` dump.
    pub fn label(self) -> &'static str {
        match self {
            ContractState::Proposed => "proposed",
            ContractState::Awarded => "awarded",
            ContractState::Acked => "acked",
            ContractState::Leased => "leased",
            ContractState::Completed => "completed",
            ContractState::Expired => "expired",
            ContractState::Declined => "declined",
            ContractState::Abandoned => "abandoned",
        }
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            ContractState::Completed
                | ContractState::Expired
                | ContractState::Declined
                | ContractState::Abandoned
        )
    }

    /// Whether `self → to` is a legal lifecycle step.
    pub fn may_transition(self, to: ContractState) -> bool {
        use ContractState::*;
        match (self, to) {
            (Proposed, Awarded) | (Proposed, Completed) => true,
            (Awarded, Acked) | (Awarded, Declined) | (Awarded, Expired) => true,
            (Acked, Leased) => true,
            (Leased, Completed) | (Leased, Expired) => true,
            // Abandonment may strike any live contract when repairs run dry.
            (s, Abandoned) => !s.is_terminal(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ContractState::*;

    #[test]
    fn happy_path_is_legal() {
        let path = [Proposed, Awarded, Acked, Leased, Completed];
        for w in path.windows(2) {
            assert!(w[0].may_transition(w[1]), "{:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn failure_paths_are_legal() {
        assert!(Awarded.may_transition(Declined));
        assert!(Awarded.may_transition(Expired));
        assert!(Leased.may_transition(Expired));
        assert!(Awarded.may_transition(Abandoned));
        // A buyer-local purchase completes without ever hitting the wire.
        assert!(Proposed.may_transition(Completed));
    }

    #[test]
    fn terminal_states_stay_terminal() {
        for s in [Completed, Expired, Declined, Abandoned] {
            assert!(s.is_terminal());
            for t in [Proposed, Awarded, Acked, Leased, Completed, Expired] {
                assert!(!s.may_transition(t), "{s:?} must not move to {t:?}");
            }
        }
    }

    #[test]
    fn no_skipping_the_ack() {
        assert!(!Awarded.may_transition(Leased));
        assert!(!Proposed.may_transition(Acked));
        assert!(!Acked.may_transition(Completed));
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(ContractId(7).to_string(), "c7");
        assert_eq!(ContractState::Leased.label(), "leased");
    }
}
