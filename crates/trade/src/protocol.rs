//! Negotiation protocols.
//!
//! Each protocol takes the bid list for one item and produces a
//! [`NegotiationOutcome`] — the winner, the agreed value, and the message /
//! round overhead the protocol would have cost on the wire. The QT layer
//! charges those overheads to the simulated network, which is how experiment
//! E7 measures the paper's claim that "using a nested bargaining within a
//! bargaining will only increase the number of exchanged messages".

use crate::offer::{Bid, NegotiationOutcome};

/// Identifies one negotiation — one buyer query traded end-to-end — within a
/// federation that multiplexes many concurrent negotiations over the same
/// sellers. Sessions are numbered in arrival order by the serving layer, so
/// the id doubles as the deterministic tie-break for same-instant events:
/// batched protocol messages list their per-session entries in ascending
/// `SessionId`, and every piece of per-session state (buyer engines, seller
/// offer-id counters, reply memos) is keyed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Hard cap on descending-clock auction rounds: a zero or near-zero opening
/// ask used to make `step` collapse to `f64::MIN_POSITIVE` and the round
/// count astronomical (billions of phantom messages charged to the network).
pub const MAX_ENGLISH_ROUNDS: u64 = 10_000;

/// Which negotiation protocol runs the nested winner selection.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ProtocolKind {
    /// Sealed-bid first-price (Contract-Net style bidding): every seller
    /// bids once, the lowest ask wins and is paid its ask. One award message.
    #[default]
    SealedBid,
    /// Sealed-bid second-price (Vickrey): lowest ask wins, paid the
    /// second-lowest ask. Truth-telling is dominant; one award message.
    Vickrey,
    /// Reverse English (descending-price) auction: the price falls by
    /// `decrement` (a fraction of the best ask) per round; sellers drop out
    /// below their reserve; the last seller standing wins at the price where
    /// the runner-up quit. Costs one message per active seller per round.
    English {
        /// Per-round price decrement as a fraction of the opening price.
        decrement: f64,
    },
    /// One-on-one alternating-offers bargaining with the best-ask seller:
    /// the parties split the ask/reserve gap over up to `max_rounds`
    /// concession rounds. Two messages per round.
    Bargaining {
        /// Maximum concession rounds.
        max_rounds: u32,
    },
}

impl ProtocolKind {
    /// Run the protocol over `bids` (lower ask = better). `reserve_value` is
    /// the buyer's walk-away value: bids above it cannot win.
    ///
    /// ```
    /// use qt_catalog::NodeId;
    /// use qt_trade::{Bid, ProtocolKind};
    ///
    /// let bids = vec![
    ///     Bid::new(NodeId(1), 30.0, 25.0),
    ///     Bid::new(NodeId(2), 40.0, 20.0),
    /// ];
    /// let sealed = ProtocolKind::SealedBid.negotiate(&bids, f64::INFINITY);
    /// assert_eq!(sealed.winner, Some(0));          // lowest ask
    /// assert_eq!(sealed.agreed_value, 30.0);       // pays its ask
    /// let vickrey = ProtocolKind::Vickrey.negotiate(&bids, f64::INFINITY);
    /// assert_eq!(vickrey.agreed_value, 40.0);      // pays the second price
    /// ```
    pub fn negotiate(&self, bids: &[Bid], reserve_value: f64) -> NegotiationOutcome {
        let admissible: Vec<usize> = (0..bids.len())
            .filter(|&i| bids[i].ask <= reserve_value && bids[i].ask.is_finite())
            .collect();
        if admissible.is_empty() {
            return NegotiationOutcome::no_deal();
        }
        let best = *admissible
            .iter()
            .min_by(|&&a, &&b| bids[a].ask.total_cmp(&bids[b].ask))
            .expect("nonempty");
        match self {
            ProtocolKind::SealedBid => NegotiationOutcome {
                winner: Some(best),
                agreed_value: bids[best].ask,
                extra_messages: 1, // award notice
                extra_round_trips: 1,
            },
            ProtocolKind::Vickrey => {
                let second = admissible
                    .iter()
                    .filter(|&&i| i != best)
                    .map(|&i| bids[i].ask)
                    .fold(f64::INFINITY, f64::min);
                NegotiationOutcome {
                    winner: Some(best),
                    agreed_value: if second.is_finite() {
                        second
                    } else {
                        bids[best].ask
                    },
                    extra_messages: 1,
                    extra_round_trips: 1,
                }
            }
            ProtocolKind::English { decrement } => {
                // Descending clock: price starts at the worst admissible ask
                // and falls; a seller stays while price >= its reserve. The
                // winner is the seller with the lowest reserve, paying the
                // price at which the runner-up dropped out.
                let opening = admissible
                    .iter()
                    .map(|&i| bids[i].ask)
                    .fold(0.0f64, f64::max)
                    .min(reserve_value);
                // Clamp the clock step away from denormal territory: a zero
                // opening (free asks) or a tiny decrement must not yield an
                // astronomical round count. The floor is relative to the
                // opening price when it is meaningful, absolute otherwise.
                let step = (opening * decrement).max(opening.abs() * 1e-6).max(1e-12);
                let win = *admissible
                    .iter()
                    .min_by(|&&a, &&b| bids[a].reserve.total_cmp(&bids[b].reserve))
                    .expect("nonempty");
                let runner_up_reserve = admissible
                    .iter()
                    .filter(|&&i| i != win)
                    .map(|&i| bids[i].reserve)
                    .fold(f64::INFINITY, f64::min)
                    .min(opening);
                let clearing = if runner_up_reserve.is_finite() {
                    runner_up_reserve.max(bids[win].reserve)
                } else {
                    bids[win].ask
                };
                let rounds = (((opening - clearing) / step).ceil().max(1.0))
                    .min(MAX_ENGLISH_ROUNDS as f64) as u64;
                // Per round every still-active seller receives/acks the clock
                // tick; approximate with the admissible count.
                NegotiationOutcome {
                    winner: Some(win),
                    agreed_value: clearing,
                    extra_messages: rounds * admissible.len() as u64 + 1,
                    extra_round_trips: rounds,
                }
            }
            ProtocolKind::Bargaining { max_rounds } => {
                // Alternate concessions with the best-ask seller: each round
                // the seller concedes half the remaining gap to its reserve.
                let b = &bids[best];
                let mut price = b.ask;
                let mut rounds = 0u64;
                while rounds < *max_rounds as u64 {
                    let next = b.reserve + (price - b.reserve) * 0.5;
                    if (price - next).abs() < 1e-9 {
                        break;
                    }
                    price = next;
                    rounds += 1;
                }
                NegotiationOutcome {
                    winner: Some(best),
                    agreed_value: price.max(b.reserve),
                    extra_messages: rounds * 2 + 1,
                    extra_round_trips: rounds + 1,
                }
            }
        }
    }

    /// Display label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::SealedBid => "sealed-bid",
            ProtocolKind::Vickrey => "vickrey",
            ProtocolKind::English { .. } => "english",
            ProtocolKind::Bargaining { .. } => "bargaining",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::NodeId;

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(NodeId(1), 30.0, 25.0),
            Bid::new(NodeId(2), 40.0, 20.0),
            Bid::new(NodeId(3), 55.0, 50.0),
        ]
    }

    #[test]
    fn sealed_bid_takes_lowest_ask() {
        let out = ProtocolKind::SealedBid.negotiate(&bids(), f64::INFINITY);
        assert_eq!(out.winner, Some(0));
        assert_eq!(out.agreed_value, 30.0);
        assert_eq!(out.extra_messages, 1);
    }

    #[test]
    fn vickrey_pays_second_price() {
        let out = ProtocolKind::Vickrey.negotiate(&bids(), f64::INFINITY);
        assert_eq!(out.winner, Some(0));
        assert_eq!(out.agreed_value, 40.0);
    }

    #[test]
    fn vickrey_single_bid_pays_own_ask() {
        let one = vec![Bid::new(NodeId(1), 30.0, 25.0)];
        let out = ProtocolKind::Vickrey.negotiate(&one, f64::INFINITY);
        assert_eq!(out.agreed_value, 30.0);
    }

    #[test]
    fn english_winner_has_lowest_reserve() {
        let out = ProtocolKind::English { decrement: 0.05 }.negotiate(&bids(), f64::INFINITY);
        assert_eq!(out.winner, Some(1)); // reserve 20 beats 25
                                         // Clearing price ≈ runner-up reserve (25).
        assert!(
            (out.agreed_value - 25.0).abs() < 1e-9,
            "{}",
            out.agreed_value
        );
        assert!(out.extra_messages > 3, "auction costs rounds of messages");
    }

    #[test]
    fn english_zero_opening_is_bounded() {
        // Free asks used to yield step = f64::MIN_POSITIVE and ~1e308
        // rounds; the clamp keeps the auction finite.
        let free = vec![Bid::new(NodeId(1), 0.0, 0.0), Bid::new(NodeId(2), 0.0, 0.0)];
        let out = ProtocolKind::English { decrement: 0.05 }.negotiate(&free, f64::INFINITY);
        assert!(out.winner.is_some());
        assert!(out.extra_round_trips <= MAX_ENGLISH_ROUNDS);
        assert!(out.extra_messages <= MAX_ENGLISH_ROUNDS * free.len() as u64 + 1);
    }

    #[test]
    fn english_tiny_decrement_is_bounded() {
        let out = ProtocolKind::English { decrement: 1e-300 }.negotiate(&bids(), f64::INFINITY);
        assert!(out.extra_round_trips <= MAX_ENGLISH_ROUNDS);
    }

    #[test]
    fn bargaining_lands_between_reserve_and_ask() {
        let out = ProtocolKind::Bargaining { max_rounds: 4 }.negotiate(&bids(), f64::INFINITY);
        assert_eq!(out.winner, Some(0));
        assert!(out.agreed_value >= 25.0 && out.agreed_value <= 30.0);
        assert!(out.extra_messages >= 2);
        // More rounds → closer to the reserve.
        let long = ProtocolKind::Bargaining { max_rounds: 16 }.negotiate(&bids(), f64::INFINITY);
        assert!(long.agreed_value <= out.agreed_value);
    }

    #[test]
    fn buyer_reserve_filters_bids() {
        let out = ProtocolKind::SealedBid.negotiate(&bids(), 20.0);
        assert_eq!(out.winner, None);
        let out = ProtocolKind::SealedBid.negotiate(&bids(), 35.0);
        assert_eq!(out.winner, Some(0));
    }

    #[test]
    fn empty_bids_no_deal() {
        for p in [
            ProtocolKind::SealedBid,
            ProtocolKind::Vickrey,
            ProtocolKind::English { decrement: 0.1 },
            ProtocolKind::Bargaining { max_rounds: 3 },
        ] {
            assert_eq!(p.negotiate(&[], 100.0).winner, None, "{}", p.label());
        }
    }

    #[test]
    fn truthful_bidding_never_loses_money_under_vickrey() {
        // Property: paying the second price >= winner's reserve when asks
        // equal reserves (truthful).
        let truthful = vec![
            Bid::new(NodeId(1), 25.0, 25.0),
            Bid::new(NodeId(2), 20.0, 20.0),
            Bid::new(NodeId(3), 50.0, 50.0),
        ];
        let out = ProtocolKind::Vickrey.negotiate(&truthful, f64::INFINITY);
        let w = out.winner.unwrap();
        assert!(out.agreed_value >= truthful[w].reserve);
        assert!(out.seller_surplus(&truthful) >= 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProtocolKind::SealedBid.label(), "sealed-bid");
        assert_eq!(ProtocolKind::Vickrey.label(), "vickrey");
        assert_eq!(ProtocolKind::English { decrement: 0.1 }.label(), "english");
        assert_eq!(
            ProtocolKind::Bargaining { max_rounds: 1 }.label(),
            "bargaining"
        );
    }
}
