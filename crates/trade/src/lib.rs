//! Generic trading-negotiation framework (§2 of the paper).
//!
//! A trading framework has two orthogonal pieces per party:
//!
//! * a **negotiation protocol** — the rules of the exchange (bidding,
//!   bargaining, auctions) deciding who wins and at what value;
//! * a **strategy module** — the party's private policy choosing what to
//!   offer/ask given its true valuation and what it knows about the others.
//!
//! QT reuses this machinery unchanged for the *nested* winner-selection
//! negotiation of each iteration (steps B3/S3); what QT changes is only that
//! the negotiated item set differs per iteration. Hence this crate knows
//! nothing about queries — it negotiates abstract items whose buyer-side
//! scores and seller-side costs are already known.

pub mod contract;
pub mod offer;
pub mod protocol;
pub mod strategy;
pub mod wire;

pub use contract::{ContractId, ContractState};
pub use offer::{Bid, NegotiationOutcome};
pub use protocol::{ProtocolKind, SessionId, MAX_ENGLISH_ROUNDS};
pub use strategy::{BuyerValueBook, SellerStrategy};
pub use wire::{Wire, WireError};
