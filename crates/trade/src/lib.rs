//! Generic trading-negotiation framework (§2 of the paper).
//!
//! A trading framework has two orthogonal pieces per party:
//!
//! * a **negotiation protocol** — the rules of the exchange (bidding,
//!   bargaining, auctions) deciding who wins and at what value;
//! * a **strategy module** — the party's private policy choosing what to
//!   offer/ask given its true valuation and what it knows about the others.
//!
//! QT reuses this machinery unchanged for the *nested* winner-selection
//! negotiation of each iteration (steps B3/S3); what QT changes is only that
//! the negotiated item set differs per iteration. The negotiation machinery
//! itself knows nothing about queries — it trades abstract items whose
//! buyer-side scores and seller-side costs are already known. The one
//! query-aware piece here is [`semcache`], the federation-wide semantic
//! cache both trading layers share (it lives here so seller and serving
//! integrations reuse one index structure).

pub mod contract;
pub mod offer;
pub mod protocol;
pub mod semcache;
pub mod strategy;
pub mod wire;

pub use contract::{ContractId, ContractState};
pub use offer::{Bid, NegotiationOutcome};
pub use protocol::{ProtocolKind, SessionId, MAX_ENGLISH_ROUNDS};
pub use semcache::{CacheStats, Probe, ProbeOutcome, SemCache, SemEntry};
pub use strategy::{BuyerValueBook, SellerStrategy};
pub use wire::{Wire, WireError};
