//! Bids and negotiation outcomes.

use qt_catalog::NodeId;

/// One seller's position in a negotiation for a single item, as the
/// *protocol* sees it: an asking value and (held privately in simulation) the
/// seller's true reservation value. Values are in the buyer's valuation unit
/// (seconds of response time by default), lower = better.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    /// The bidding seller.
    pub seller: NodeId,
    /// Asking value announced to the buyer.
    pub ask: f64,
    /// The seller's true cost (reservation value). In a real federation this
    /// is private; the simulator uses it to drive auction dynamics
    /// (drop-outs, concessions) faithfully.
    pub reserve: f64,
}

impl Bid {
    /// Convenience constructor.
    pub fn new(seller: NodeId, ask: f64, reserve: f64) -> Self {
        Bid {
            seller,
            ask,
            reserve,
        }
    }
}

/// The result of a winner-selection negotiation.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiationOutcome {
    /// Index (into the bid list) of the winning bid, `None` if no bid was
    /// acceptable.
    pub winner: Option<usize>,
    /// Value agreed with the winner (what the buyer "pays" — enters the plan
    /// cost under monetary valuations; equals the promised cost otherwise).
    pub agreed_value: f64,
    /// Messages exchanged by the protocol *beyond* the initial RFB/offer
    /// round (award notices, auction rounds, bargaining counter-offers).
    pub extra_messages: u64,
    /// Virtual round-trips consumed beyond the initial round.
    pub extra_round_trips: u64,
}

impl NegotiationOutcome {
    /// The empty outcome (no bids).
    pub fn no_deal() -> Self {
        NegotiationOutcome {
            winner: None,
            agreed_value: f64::INFINITY,
            extra_messages: 0,
            extra_round_trips: 0,
        }
    }

    /// Seller surplus for the winning bid: agreed value minus true cost.
    pub fn seller_surplus(&self, bids: &[Bid]) -> f64 {
        match self.winner {
            Some(i) => self.agreed_value - bids[i].reserve,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surplus_is_agreed_minus_reserve() {
        let bids = vec![Bid::new(NodeId(1), 12.0, 10.0)];
        let out = NegotiationOutcome {
            winner: Some(0),
            agreed_value: 12.0,
            extra_messages: 1,
            extra_round_trips: 1,
        };
        assert!((out.seller_surplus(&bids) - 2.0).abs() < 1e-12);
        assert_eq!(NegotiationOutcome::no_deal().seller_surplus(&bids), 0.0);
    }
}
