//! Hand-rolled length-prefixed binary codec for trading messages.
//!
//! The real transport (`qt_net::real`) moves protocol messages between
//! threads and across TCP sockets, so every message needs an explicit,
//! versionless byte encoding — no serde, no reflection, crates.io is out of
//! reach. The format is deliberately boring:
//!
//! * fixed-width little-endian integers;
//! * `f64` as its IEEE-754 bit pattern (`to_bits`), so round-trips are
//!   **bit-exact** — the conformance oracle compares cost bits, not
//!   approximate floats;
//! * enums as a one-byte tag followed by the variant's fields;
//! * collections and strings as a `u32` length prefix followed by the
//!   elements.
//!
//! Decoding is total: any input — truncated frames, garbage bytes, trailing
//! junk — yields a [`WireError`], never a panic. Collection lengths are
//! validated against the remaining buffer before any allocation so a
//! corrupted length prefix cannot cause an absurd reservation.
//!
//! This module owns the [`Wire`] trait and the implementations for every
//! `protocol.rs`, `offer.rs`, and `contract.rs` type plus the catalog/cost
//! primitives they embed. Frame *boundaries* (the outer `u32` length prefix
//! on a socket) belong to the transport, not to the codec.

use crate::{Bid, ContractId, ContractState, NegotiationOutcome, ProtocolKind, SessionId};
use qt_catalog::{NodeId, RelId, Value};
use qt_cost::AnswerProperties;
use std::fmt;
use std::sync::Arc;

/// Why a decode failed. All failure paths return this; none panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// A complete value was decoded but bytes remained (this many).
    Trailing(usize),
    /// An enum tag byte was out of range for the named type.
    BadTag(&'static str, u8),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A length or index did not fit the platform's `usize`.
    BadLen,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            WireError::BadTag(what, tag) => write!(f, "bad tag {tag} for {what}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            WireError::BadLen => write!(f, "length out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over an immutable byte buffer. Every read checks bounds.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take exactly `n` bytes or fail.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its bit pattern (bit-exact, including inf/NaN).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u16` stored little-endian.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a bool encoded as 0/1; other bytes are bad tags.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag("bool", t)),
        }
    }

    /// Read a collection length and validate it against the remaining bytes
    /// (each element needs at least `min_elem_bytes`), so a corrupt prefix
    /// can neither over-allocate nor loop long.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = usize::try_from(self.u32()?).map_err(|_| WireError::BadLen)?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Assert the value consumed the whole buffer.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a bool as 0/1.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append a collection length (panics only if a collection exceeds `u32`,
/// which no protocol message can reach).
pub fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u32(out, u32::try_from(n).expect("collection fits u32 length"));
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// A self-describing binary encoding: `decode(encode(x)) == x`, bit-exact.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `out`.
    fn put(&self, out: &mut Vec<u8>);

    /// Parse one value from the reader, leaving the cursor after it.
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.put(&mut out);
        out
    }

    /// Decode a complete value; trailing bytes are an error.
    fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::get(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl Wire for u32 {
    fn put(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn put(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.f64()
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        put_bool(out, *self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.bool()
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        put_str(out, self);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.string()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for v in self {
            v.put(out);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.len(1)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::get(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => put_u8(out, 0),
            Some(v) => {
                put_u8(out, 1);
                v.put(out);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::get(r)?)),
            t => Err(WireError::BadTag("Option", t)),
        }
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn put(&self, out: &mut Vec<u8>) {
        T::put(self, out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::get(r)?))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::get(r)?, B::get(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
        self.2.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::get(r)?, B::get(r)?, C::get(r)?))
    }
}

impl Wire for NodeId {
    fn put(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.u32()?))
    }
}

impl Wire for RelId {
    fn put(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RelId(r.u32()?))
    }
}

impl Wire for Value {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                put_u8(out, 0);
                put_i64(out, *i);
            }
            Value::Float(x) => {
                put_u8(out, 1);
                put_f64(out, *x);
            }
            Value::Str(s) => {
                put_u8(out, 2);
                put_str(out, s);
            }
            Value::Null => put_u8(out, 3),
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Value::Int(r.i64()?)),
            1 => Ok(Value::Float(r.f64()?)),
            2 => Ok(Value::str(&r.string()?)),
            3 => Ok(Value::Null),
            t => Err(WireError::BadTag("Value", t)),
        }
    }
}

impl Wire for AnswerProperties {
    fn put(&self, out: &mut Vec<u8>) {
        put_f64(out, self.total_time);
        put_f64(out, self.first_row_time);
        put_f64(out, self.rows_per_sec);
        put_f64(out, self.rows);
        put_f64(out, self.bytes);
        put_f64(out, self.freshness);
        put_f64(out, self.completeness);
        put_f64(out, self.price);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AnswerProperties {
            total_time: r.f64()?,
            first_row_time: r.f64()?,
            rows_per_sec: r.f64()?,
            rows: r.f64()?,
            bytes: r.f64()?,
            freshness: r.f64()?,
            completeness: r.f64()?,
            price: r.f64()?,
        })
    }
}

impl Wire for SessionId {
    fn put(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SessionId(r.u64()?))
    }
}

impl Wire for ContractId {
    fn put(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ContractId(r.u64()?))
    }
}

impl Wire for ContractState {
    fn put(&self, out: &mut Vec<u8>) {
        let tag = match self {
            ContractState::Proposed => 0,
            ContractState::Awarded => 1,
            ContractState::Acked => 2,
            ContractState::Leased => 3,
            ContractState::Completed => 4,
            ContractState::Expired => 5,
            ContractState::Declined => 6,
            ContractState::Abandoned => 7,
        };
        put_u8(out, tag);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ContractState::Proposed,
            1 => ContractState::Awarded,
            2 => ContractState::Acked,
            3 => ContractState::Leased,
            4 => ContractState::Completed,
            5 => ContractState::Expired,
            6 => ContractState::Declined,
            7 => ContractState::Abandoned,
            t => return Err(WireError::BadTag("ContractState", t)),
        })
    }
}

impl Wire for ProtocolKind {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            ProtocolKind::SealedBid => put_u8(out, 0),
            ProtocolKind::Vickrey => put_u8(out, 1),
            ProtocolKind::English { decrement } => {
                put_u8(out, 2);
                put_f64(out, *decrement);
            }
            ProtocolKind::Bargaining { max_rounds } => {
                put_u8(out, 3);
                put_u32(out, *max_rounds);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ProtocolKind::SealedBid,
            1 => ProtocolKind::Vickrey,
            2 => ProtocolKind::English {
                decrement: r.f64()?,
            },
            3 => ProtocolKind::Bargaining {
                max_rounds: r.u32()?,
            },
            t => return Err(WireError::BadTag("ProtocolKind", t)),
        })
    }
}

impl Wire for Bid {
    fn put(&self, out: &mut Vec<u8>) {
        self.seller.put(out);
        put_f64(out, self.ask);
        put_f64(out, self.reserve);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Bid {
            seller: NodeId::get(r)?,
            ask: r.f64()?,
            reserve: r.f64()?,
        })
    }
}

impl Wire for NegotiationOutcome {
    fn put(&self, out: &mut Vec<u8>) {
        match self.winner {
            None => put_u8(out, 0),
            Some(i) => {
                put_u8(out, 1);
                put_u64(out, i as u64);
            }
        }
        put_f64(out, self.agreed_value);
        put_u64(out, self.extra_messages);
        put_u64(out, self.extra_round_trips);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let winner = match r.u8()? {
            0 => None,
            1 => Some(usize::try_from(r.u64()?).map_err(|_| WireError::BadLen)?),
            t => return Err(WireError::BadTag("winner", t)),
        };
        Ok(NegotiationOutcome {
            winner,
            agreed_value: r.f64()?,
            extra_messages: r.u64()?,
            extra_round_trips: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode();
        let back = T::decode(&bytes).expect("decode(encode(v))");
        assert_eq!(&back, v);
        // Every strict prefix must error (never panic, never mis-decode).
        for cut in 0..bytes.len() {
            assert!(T::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
        // Trailing garbage must be rejected.
        let mut extended = bytes.clone();
        extended.push(0xAB);
        assert!(T::decode(&extended).is_err());
    }

    #[test]
    fn contract_state_all_variants_roundtrip() {
        use ContractState::*;
        for s in [
            Proposed, Awarded, Acked, Leased, Completed, Expired, Declined, Abandoned,
        ] {
            roundtrip(&s);
        }
        assert_eq!(
            ContractState::decode(&[99]),
            Err(WireError::BadTag("ContractState", 99))
        );
    }

    #[test]
    fn protocol_kind_all_variants_roundtrip() {
        roundtrip(&ProtocolKind::SealedBid);
        roundtrip(&ProtocolKind::Vickrey);
        roundtrip(&ProtocolKind::English { decrement: 0.05 });
        roundtrip(&ProtocolKind::Bargaining { max_rounds: 7 });
        assert!(matches!(
            ProtocolKind::decode(&[9]),
            Err(WireError::BadTag("ProtocolKind", 9))
        ));
    }

    #[test]
    fn infinity_and_nan_bits_survive() {
        let v = NegotiationOutcome::no_deal();
        let back = NegotiationOutcome::decode(&v.encode()).unwrap();
        assert_eq!(back.agreed_value.to_bits(), f64::INFINITY.to_bits());
        let bits = f64::NAN.to_bits();
        let mut out = Vec::new();
        put_f64(&mut out, f64::NAN);
        let mut r = Reader::new(&out);
        assert_eq!(r.f64().unwrap().to_bits(), bits);
    }

    #[test]
    fn corrupt_length_prefix_errors_without_allocating() {
        // A Vec<u64> claiming 4 billion elements in a 12-byte buffer.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(&[0u8; 8]);
        assert_eq!(Vec::<u64>::decode(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn empty_and_tiny_buffers_error() {
        assert_eq!(Bid::decode(&[]), Err(WireError::Truncated));
        assert_eq!(SessionId::decode(&[1, 2]), Err(WireError::Truncated));
        assert!(Vec::<Bid>::decode(&[]).is_err());
    }

    proptest! {
        #[test]
        fn session_and_contract_ids_roundtrip(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            roundtrip(&SessionId(a));
            roundtrip(&ContractId(b));
        }

        #[test]
        fn bids_roundtrip(seller in 0u32..64, ask in -1e9f64..1e9, reserve in -1e9f64..1e9) {
            roundtrip(&Bid::new(NodeId(seller), ask, reserve));
            roundtrip(&vec![Bid::new(NodeId(seller), ask, reserve); 3]);
        }

        #[test]
        fn outcomes_roundtrip(
            won in any::<bool>(),
            idx in 0u64..1024,
            val in -1e9f64..1e9,
            msgs in 0u64..1000,
            rts in 0u64..1000,
        ) {
            roundtrip(&NegotiationOutcome {
                winner: if won { Some(idx as usize) } else { None },
                agreed_value: val,
                extra_messages: msgs,
                extra_round_trips: rts,
            });
        }

        #[test]
        fn english_and_bargaining_roundtrip(dec in 0.0f64..1.0, rounds in 0u32..1000) {
            roundtrip(&ProtocolKind::English { decrement: dec });
            roundtrip(&ProtocolKind::Bargaining { max_rounds: rounds });
        }

        #[test]
        fn values_roundtrip(i in -1000i64..1000, x in -1e6f64..1e6) {
            roundtrip(&Value::Int(i));
            roundtrip(&Value::Float(x));
            roundtrip(&Value::str("corfu"));
            roundtrip(&Value::Null);
        }

        #[test]
        fn props_roundtrip(t in 0.0f64..1e6, rows in 0.0f64..1e9) {
            roundtrip(&AnswerProperties {
                total_time: t,
                first_row_time: t / 2.0,
                rows_per_sec: rows.max(1.0),
                rows,
                bytes: rows * 64.0,
                freshness: 1.0,
                completeness: 1.0,
                price: 0.0,
            });
        }

        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..64)) {
            // Any of these may Ok or Err; none may panic.
            let _ = ContractState::decode(&bytes);
            let _ = ProtocolKind::decode(&bytes);
            let _ = Bid::decode(&bytes);
            let _ = NegotiationOutcome::decode(&bytes);
            let _ = Vec::<Bid>::decode(&bytes);
            let _ = Value::decode(&bytes);
            let _ = AnswerProperties::decode(&bytes);
            let _ = Option::<SessionId>::decode(&bytes);
        }
    }
}
