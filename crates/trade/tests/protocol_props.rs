//! Property-based tests of the negotiation protocols: winner admissibility,
//! payment bounds, and incentive sanity.

use proptest::prelude::*;
use qt_catalog::NodeId;
use qt_trade::{Bid, ProtocolKind, MAX_ENGLISH_ROUNDS};

fn bids_strategy() -> impl Strategy<Value = Vec<Bid>> {
    prop::collection::vec((1.0f64..100.0, 0.5f64..1.0), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (ask, reserve_frac))| {
                // Reserve (true cost) never exceeds the ask.
                Bid::new(NodeId(i as u32), ask, ask * reserve_frac)
            })
            .collect()
    })
}

fn protocols() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::SealedBid),
        Just(ProtocolKind::Vickrey),
        (0.01f64..0.3).prop_map(|d| ProtocolKind::English { decrement: d }),
        (1u32..10).prop_map(|r| ProtocolKind::Bargaining { max_rounds: r }),
    ]
}

proptest! {
    /// Whoever wins, the agreed value never dips below the winner's true
    /// cost (no protocol forces a seller to sell at a loss) and never
    /// exceeds the worst admissible ask.
    #[test]
    fn agreed_value_is_individually_rational(
        bids in bids_strategy(),
        proto in protocols(),
        reserve in 1.0f64..200.0,
    ) {
        let out = proto.negotiate(&bids, reserve);
        if let Some(w) = out.winner {
            prop_assert!(bids[w].ask <= reserve + 1e-9, "winner must be admissible");
            prop_assert!(
                out.agreed_value >= bids[w].reserve - 1e-9,
                "{}: agreed {} below winner reserve {}",
                proto.label(), out.agreed_value, bids[w].reserve
            );
            let max_ask = bids
                .iter()
                .filter(|b| b.ask <= reserve)
                .map(|b| b.ask)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                out.agreed_value <= max_ask + 1e-9,
                "{}: agreed {} above worst admissible ask {}",
                proto.label(), out.agreed_value, max_ask
            );
        }
    }

    /// With no admissible bids, every protocol reports no deal.
    #[test]
    fn hopeless_reserve_means_no_deal(bids in bids_strategy(), proto in protocols()) {
        let min_ask = bids.iter().map(|b| b.ask).fold(f64::INFINITY, f64::min);
        let out = proto.negotiate(&bids, min_ask * 0.5);
        prop_assert_eq!(out.winner, None);
    }

    /// Sealed-bid and Vickrey pick the same winner (lowest ask); Vickrey
    /// never charges more than sealed-bid... in reverse auctions it pays
    /// MORE (second price), rewarding truthfulness.
    #[test]
    fn vickrey_pays_at_least_sealed_bid(bids in bids_strategy()) {
        let sb = ProtocolKind::SealedBid.negotiate(&bids, f64::INFINITY);
        let vk = ProtocolKind::Vickrey.negotiate(&bids, f64::INFINITY);
        prop_assert_eq!(sb.winner, vk.winner);
        prop_assert!(vk.agreed_value >= sb.agreed_value - 1e-9);
    }

    /// The English (descending) auction always selects a lowest-reserve
    /// seller — the efficient allocation.
    #[test]
    fn english_is_allocatively_efficient(bids in bids_strategy()) {
        let out = ProtocolKind::English { decrement: 0.05 }.negotiate(&bids, f64::INFINITY);
        let w = out.winner.unwrap();
        let min_reserve = bids.iter().map(|b| b.reserve).fold(f64::INFINITY, f64::min);
        prop_assert!((bids[w].reserve - min_reserve).abs() < 1e-9);
    }

    /// Bargaining always lands in the [reserve, ask] interval of the best
    /// bidder, and more rounds never increase the price.
    #[test]
    fn bargaining_monotone_in_rounds(bids in bids_strategy(), r1 in 1u32..5, extra in 1u32..5) {
        let short = ProtocolKind::Bargaining { max_rounds: r1 }.negotiate(&bids, f64::INFINITY);
        let long = ProtocolKind::Bargaining { max_rounds: r1 + extra }
            .negotiate(&bids, f64::INFINITY);
        prop_assert_eq!(short.winner, long.winner);
        prop_assert!(long.agreed_value <= short.agreed_value + 1e-9);
    }

    /// Message accounting: every protocol reports at least one extra message
    /// when a deal happens, and extra messages grow with English rounds.
    #[test]
    fn protocols_account_messages(bids in bids_strategy(), proto in protocols()) {
        let out = proto.negotiate(&bids, f64::INFINITY);
        if out.winner.is_some() {
            prop_assert!(out.extra_messages >= 1);
            prop_assert!(out.extra_round_trips >= 1);
        }
    }

    /// Degenerate bids — zero asks, equal reserves, tiny decrements — must
    /// never blow the English round count past the hard cap. (Pre-fix, a
    /// zero opening collapsed the step to `f64::MIN_POSITIVE` and charged
    /// ~1e308 phantom messages to the network.)
    #[test]
    fn english_degenerate_bids_stay_bounded(
        n in 1usize..8,
        ask in prop_oneof![Just(0.0f64), 1e-300f64..1e-290, 1.0f64..10.0],
        decrement in prop_oneof![Just(1e-300f64), 1e-12f64..0.3],
    ) {
        // Every seller quotes the same degenerate ask with ask == reserve
        // (equal reserves: nobody can be undercut).
        let bids: Vec<Bid> = (0..n)
            .map(|i| Bid::new(NodeId(i as u32), ask, ask))
            .collect();
        let out = ProtocolKind::English { decrement }.negotiate(&bids, f64::INFINITY);
        let w = out.winner.unwrap();
        prop_assert!(out.extra_round_trips <= MAX_ENGLISH_ROUNDS);
        prop_assert!(out.extra_messages <= MAX_ENGLISH_ROUNDS * n as u64 + 1);
        prop_assert!(out.agreed_value >= bids[w].reserve - 1e-9);
    }

    /// A single bidder wins immediately at a bounded cost, whatever its ask.
    #[test]
    fn english_single_bidder_is_cheap(
        ask in prop_oneof![Just(0.0f64), 0.0f64..100.0],
        decrement in 1e-9f64..0.5,
    ) {
        let bids = vec![Bid::new(NodeId(0), ask, ask * 0.8)];
        let out = ProtocolKind::English { decrement }.negotiate(&bids, f64::INFINITY);
        prop_assert_eq!(out.winner, Some(0));
        prop_assert!(out.extra_round_trips <= MAX_ENGLISH_ROUNDS);
    }
}
