//! Sim-conformance oracle for the real transport (`qt_net::real`).
//!
//! The simulator is the deterministic oracle: under the same federation,
//! query, and configuration, the thread-per-node runtime — both in-process
//! channels and loopback TCP — must produce **bit-identical** trading
//! outcomes. "Bit-identical" means the full plan Debug rendering (purchase
//! offer ids, sellers, assembly skeleton), the plan cost *bits*
//! (`f64::to_bits`), the purchased offer ids, and the trading aggregates
//! (iterations, seller effort, offers considered). Wall-clock timing,
//! message batching, and byte accounting are allowed to differ and are
//! deliberately not compared.
//!
//! CI runs this suite under `QT_THREADS=1` and `QT_THREADS=4` and two
//! fault-free seeds; the seeds below keep both loops covered even in a
//! single local run.

use qt_catalog::NodeId;
use qt_core::{
    run_qt_direct, run_qt_real, run_qt_serve, run_qt_serve_real, run_qt_sim, QtConfig, QtOutcome,
    SellerEngine, ServeConfig, ServeOutcome,
};
use qt_net::{RealConfig, RealTransport};
use qt_query::Query;
use qt_workload::{
    build_federation, gen_arrivals, gen_join_query, synthetic_mix, ArrivalSpec, Federation,
    FederationSpec, QueryShape,
};
use std::collections::BTreeMap;

fn spec(nodes: u32, seed: u64) -> FederationSpec {
    FederationSpec {
        nodes,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed,
        with_data: false,
        speed_spread: 2.0,
        data_skew: 0.0,
    }
}

fn engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

fn threads() -> RealConfig {
    RealConfig {
        transport: RealTransport::Threads,
        ..RealConfig::default()
    }
}

fn tcp() -> RealConfig {
    RealConfig {
        transport: RealTransport::Tcp,
        ..RealConfig::default()
    }
}

/// Everything the transport must not perturb.
fn digest(out: &QtOutcome) -> (String, Vec<u64>, Option<u64>, u32, u64, u64) {
    let offer_ids: Vec<u64> = out
        .plan
        .iter()
        .flat_map(|p| p.purchases.iter().map(|pu| pu.offer.id))
        .collect();
    let cost_bits = out.plan.as_ref().map(|p| p.est.additive_cost.to_bits());
    (
        format!("{:?}", out.plan),
        offer_ids,
        cost_bits,
        out.iterations,
        out.seller_effort,
        out.buyer_considered,
    )
}

fn assert_conforms(sim: &QtOutcome, real: &QtOutcome, ctx: &str) {
    assert_eq!(digest(sim), digest(real), "real transport diverged ({ctx})");
    assert!(real.plan.is_some(), "no plan produced ({ctx})");
}

/// Per-session observables must be bit-identical between the simulated and
/// the real serving layer; latency/makespan are wall clock on the real
/// transport and deliberately excluded.
fn assert_sessions_conform(sim: &ServeOutcome, real: &ServeOutcome, ctx: &str) {
    assert_eq!(
        sim.reports.len(),
        real.reports.len(),
        "session count ({ctx})"
    );
    for (x, y) in sim.reports.iter().zip(&real.reports) {
        assert_eq!(x.session, y.session, "session order ({ctx})");
        assert_eq!(
            format!("{:?}", x.plan),
            format!("{:?}", y.plan),
            "plan for session {:?} ({ctx})",
            x.session
        );
        let bits = |p: &Option<qt_core::DistributedPlan>| {
            p.as_ref().map(|p| p.est.additive_cost.to_bits())
        };
        assert_eq!(
            bits(&x.plan),
            bits(&y.plan),
            "cost bits for session {:?} ({ctx})",
            x.session
        );
        assert_eq!(
            x.iterations, y.iterations,
            "iterations for session {:?} ({ctx})",
            x.session
        );
    }
    assert_eq!(sim.seller_effort, real.seller_effort, "effort ({ctx})");
}

#[test]
fn threads_runtime_matches_sim_and_direct_across_seeds() {
    for seed in [11u64, 42] {
        let cfg = QtConfig::default();
        let fed = build_federation(&spec(8, seed));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, seed % 2 == 0, seed);
        let (sim_out, _) = run_qt_sim(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
        );
        let (real_out, metrics) = run_qt_real(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
            threads(),
        );
        assert_conforms(&sim_out, &real_out, &format!("threads, seed {seed}"));
        assert!(metrics.wire_bytes > 0, "codec bytes not counted");
        // The analytic direct driver is the third leg of the oracle.
        let direct_out = run_qt_direct(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            &mut engines(&fed, &cfg),
            &cfg,
        );
        assert_conforms(&direct_out, &real_out, &format!("direct, seed {seed}"));
    }
}

#[test]
fn tcp_runtime_matches_sim_across_seeds() {
    for seed in [11u64, 42] {
        let cfg = QtConfig::default();
        let fed = build_federation(&spec(8, seed));
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Star, 3, seed % 2 == 0, seed);
        let (sim_out, _) = run_qt_sim(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
        );
        let (real_out, metrics) = run_qt_real(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
            tcp(),
        );
        assert_conforms(&sim_out, &real_out, &format!("tcp, seed {seed}"));
        // On the socket path every frame is actually encoded and decoded.
        assert!(metrics.wire_bytes > 0, "codec bytes not counted");
    }
}

#[test]
fn contract_lifecycle_settles_identically_on_real_transport() {
    let cfg = QtConfig {
        enable_contracts: true,
        ..QtConfig::default()
    };
    let fed = build_federation(&spec(8, 7));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 7);
    let (sim_out, _) = run_qt_sim(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
    );
    let (real_out, _) = run_qt_real(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        threads(),
    );
    assert_conforms(&sim_out, &real_out, "contracts on");
    assert_eq!(sim_out.contracts_awarded, real_out.contracts_awarded);
    assert_eq!(sim_out.reawards, real_out.reawards);
}

fn burst_arrivals(fed: &Federation, n: usize, seed: u64) -> Vec<(f64, Query)> {
    let mix = synthetic_mix(&fed.catalog.dict, 4, seed);
    gen_arrivals(
        &mix,
        &ArrivalSpec {
            n_queries: n,
            mean_interarrival: 0.0,
            seed,
        },
    )
}

#[test]
fn serving_layer_matches_sim_on_threads_and_tcp() {
    for seed in [5u64, 42] {
        let cfg = QtConfig::default();
        let serve_cfg = ServeConfig {
            concurrency: 4,
            batch_rfbs: true,
            result_cache: None,
        };
        let fed = build_federation(&spec(8, seed));
        let stream = burst_arrivals(&fed, 6, seed);
        let sim_out = run_qt_serve(
            NodeId(0),
            fed.catalog.dict.clone(),
            stream.clone(),
            engines(&fed, &cfg),
            &cfg,
            &serve_cfg,
        );
        let threads_out = run_qt_serve_real(
            NodeId(0),
            fed.catalog.dict.clone(),
            stream.clone(),
            engines(&fed, &cfg),
            &cfg,
            &serve_cfg,
            threads(),
        );
        assert_sessions_conform(
            &sim_out,
            &threads_out,
            &format!("serve threads, seed {seed}"),
        );
        if seed == 5 {
            let tcp_out = run_qt_serve_real(
                NodeId(0),
                fed.catalog.dict.clone(),
                stream.clone(),
                engines(&fed, &cfg),
                &cfg,
                &serve_cfg,
                tcp(),
            );
            assert_sessions_conform(&sim_out, &tcp_out, &format!("serve tcp, seed {seed}"));
        }
    }
}
