//! The semantic-cache contract, end to end.
//!
//! Three properties under test:
//!
//! 1. **Determinism** — with the semantic offer cache on, trading outcomes
//!    (plans, cost bits, offer ids) are bit-identical between serial and
//!    parallel seller fan-out and between the sim and both real transports.
//!    CI runs this binary under `QT_THREADS=1` and `QT_THREADS=4`.
//! 2. **Soundness** — every semantic hit's compensated answer equals the
//!    row-executor reference, both at the offer layer (warm-seller plans
//!    execute to the reference rows) and at the compensation layer (a
//!    proptest over near-matching query pairs: whatever `match_view`
//!    accepts, compensation must reproduce exactly; the near misses it
//!    rejects are sound by construction and need no check).
//! 3. **Sharing with isolation** — the serve-layer result cache lets later
//!    sessions reuse earlier sessions' finished plans (fewer messages,
//!    zero-iteration reports) without perturbing the sessions that miss,
//!    and adaptive-markup awards selectively invalidate stale entries.

use proptest::prelude::*;
use qt_catalog::NodeId;
use qt_core::{
    compensate_assembly, new_result_cache, run_qt_direct, run_qt_serve, run_qt_serve_real,
    QtConfig, QtOutcome, SellerEngine, ServeConfig,
};
use qt_exec::reference::approx_same_rows;
use qt_exec::{evaluate_query, execute, DataStore, PhysPlan};
use qt_net::{RealConfig, RealTransport};
use qt_query::views::match_view;
use qt_query::{parse_query, Query};
use qt_workload::{telecom_federation, TelecomSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

fn fed() -> (qt_catalog::Catalog, BTreeMap<NodeId, DataStore>) {
    telecom_federation(&TelecomSpec {
        offices: 4,
        invoice_replicas: 2,
        ..TelecomSpec::default()
    })
}

fn union(stores: &BTreeMap<NodeId, DataStore>) -> DataStore {
    let mut all = DataStore::new();
    for s in stores.values() {
        all.merge_from(s);
    }
    all
}

fn cfg(parallel: bool) -> QtConfig {
    QtConfig {
        parallel,
        enable_semantic_cache: true,
        ..QtConfig::default()
    }
}

fn engines(cat: &qt_catalog::Catalog, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    cat.nodes
        .iter()
        .map(|&n| (n, SellerEngine::new(cat.holdings_of(n), cfg.clone())))
        .collect()
}

fn digest(out: &QtOutcome) -> (String, Vec<u64>, Option<u64>, u32) {
    let offer_ids: Vec<u64> = out
        .plan
        .iter()
        .flat_map(|p| p.purchases.iter().map(|pu| pu.offer.id))
        .collect();
    (
        format!("{:?}", out.plan),
        offer_ids,
        out.plan.as_ref().map(|p| p.est.additive_cost.to_bits()),
        out.iterations,
    )
}

const WIDE: &str = "SELECT custname, office, charge FROM customer, invoiceline \
                    WHERE customer.custid = invoiceline.custid";
const NARROW: &str = "SELECT custname, charge FROM customer, invoiceline \
                      WHERE customer.custid = invoiceline.custid AND charge > 100";
const AGG: &str = "SELECT office, SUM(charge) FROM customer, invoiceline \
                   WHERE customer.custid = invoiceline.custid GROUP BY office";

/// Warm sellers with `warm_sql`, then trade `sql` — the second run hits the
/// semantic offer cache. The resulting plan must be bit-identical whether
/// the fan-out is serial or parallel, and must execute to the reference.
#[test]
fn warm_subsumption_trades_are_deterministic_and_sound() {
    let (cat, stores) = fed();
    let all = union(&stores);
    for (warm_sql, sql) in [(WIDE, NARROW), (WIDE, AGG), (WIDE, WIDE)] {
        let warm_q = parse_query(&cat.dict, warm_sql).unwrap();
        let q = parse_query(&cat.dict, sql).unwrap();
        let mut digests = Vec::new();
        for parallel in [false, true] {
            let c = cfg(parallel);
            let mut sellers = engines(&cat, &c);
            run_qt_direct(NodeId(0), cat.dict.clone(), &warm_q, &mut sellers, &c);
            let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &c);
            let hits: u64 = sellers.values().map(|s| s.cache_stats().hits()).sum();
            assert!(hits > 0, "warm {warm_sql} then {sql}: no cache hit");
            let plan = out.plan.as_ref().expect("trading converged");
            let got = plan.execute_on(&cat.dict, &stores).unwrap();
            let want = evaluate_query(&q, &all).unwrap();
            assert!(
                approx_same_rows(&got, &want, 1e-9),
                "warm plan rows diverge for {sql} (parallel={parallel})"
            );
            digests.push(digest(&out));
        }
        assert_eq!(
            digests[0], digests[1],
            "parallel fan-out changed a warm trade for {sql}"
        );
    }
}

/// A semantic hit and a cold trade may price differently (the hit reuses
/// cached estimates) but must answer identically: the row executor is the
/// oracle.
#[test]
fn semantic_hit_plans_answer_like_cold_plans() {
    let (cat, stores) = fed();
    let all = union(&stores);
    let c = cfg(true);
    let warm_q = parse_query(&cat.dict, WIDE).unwrap();
    for sql in [NARROW, AGG] {
        let q = parse_query(&cat.dict, sql).unwrap();
        let mut warm = engines(&cat, &c);
        run_qt_direct(NodeId(0), cat.dict.clone(), &warm_q, &mut warm, &c);
        let hit = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut warm, &c);
        let cold = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut engines(&cat, &c), &c);
        let hit_rows = hit
            .plan
            .expect("warm plan")
            .execute_on(&cat.dict, &stores)
            .unwrap();
        let cold_rows = cold
            .plan
            .expect("cold plan")
            .execute_on(&cat.dict, &stores)
            .unwrap();
        let want = evaluate_query(&q, &all).unwrap();
        assert!(
            approx_same_rows(&hit_rows, &want, 1e-9),
            "hit vs oracle: {sql}"
        );
        assert!(
            approx_same_rows(&cold_rows, &want, 1e-9),
            "cold vs oracle: {sql}"
        );
    }
}

/// The sim and both real transports agree on warm (cache-hitting) trades:
/// persistent sellers serve two queries back-to-back on every runtime, so
/// the second trade exercises the semantic cache over the wire as well.
#[test]
fn warm_trades_conform_across_transports() {
    let (cat, _) = fed();
    let c = cfg(true);
    let warm_q = parse_query(&cat.dict, WIDE).unwrap();
    let q = parse_query(&cat.dict, NARROW).unwrap();
    // The direct driver is the reference leg.
    let direct = {
        let mut sellers = engines(&cat, &c);
        run_qt_direct(NodeId(0), cat.dict.clone(), &warm_q, &mut sellers, &c);
        run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &c)
    };
    let direct_plan = direct.plan.as_ref().expect("direct warm plan");
    // Sim and real transports run the two trades as one serving stream over
    // the same persistent sellers (back-to-back arrivals, concurrency 1).
    let stream = vec![(0.0, warm_q.clone()), (0.0, q.clone())];
    let serve_cfg = ServeConfig::default();
    let sim_out = run_qt_serve(
        NodeId(0),
        cat.dict.clone(),
        stream.clone(),
        engines(&cat, &c),
        &c,
        &serve_cfg,
    );
    let sim_plan = sim_out.reports[1].plan.as_ref().expect("sim warm plan");
    // Serving sessions renumber offers per session, so the direct leg is
    // compared on the assembly and the cost bits, not the purchase ids.
    assert_eq!(
        format!("{:?}", direct_plan.assembly),
        format!("{:?}", sim_plan.assembly),
        "serving warm assembly diverged from the direct driver"
    );
    assert_eq!(
        direct_plan.est.additive_cost.to_bits(),
        sim_plan.est.additive_cost.to_bits(),
        "serving warm cost diverged from the direct driver"
    );
    for transport in [RealTransport::Threads, RealTransport::Tcp] {
        let real = RealConfig {
            transport,
            ..RealConfig::default()
        };
        let real_out = run_qt_serve_real(
            NodeId(0),
            cat.dict.clone(),
            stream.clone(),
            engines(&cat, &c),
            &c,
            &serve_cfg,
            real,
        );
        let real_plan = real_out.reports[1].plan.as_ref().expect("real warm plan");
        assert_eq!(
            format!("{sim_plan:?}"),
            format!("{real_plan:?}"),
            "warm plan diverged on {transport:?}"
        );
        assert_eq!(
            sim_plan.est.additive_cost.to_bits(),
            real_plan.est.additive_cost.to_bits(),
            "warm cost bits diverged on {transport:?}"
        );
    }
}

/// Serve-layer sharing: with a shared result cache, repeated and subsumed
/// arrivals complete with zero trading iterations and strictly less
/// protocol traffic; cold sessions are untouched (bit-identical to the
/// uncached run).
#[test]
fn result_cache_serves_repeats_across_sessions() {
    let (cat, stores) = fed();
    let all = union(&stores);
    let c = cfg(true);
    let wide = parse_query(&cat.dict, WIDE).unwrap();
    let narrow = parse_query(&cat.dict, NARROW).unwrap();
    let agg = parse_query(&cat.dict, AGG).unwrap();
    let stream = vec![
        (0.0, wide.clone()),
        (1.0, narrow.clone()), // semantic hit on session 0's plan
        (2.0, wide.clone()),   // exact hit
        (3.0, agg.clone()),    // semantic hit (aggregate compensation)
        (4.0, narrow.clone()), // exact hit on the compensated re-insert
    ];
    let uncached = run_qt_serve(
        NodeId(0),
        cat.dict.clone(),
        stream.clone(),
        engines(&cat, &c),
        &c,
        &ServeConfig::default(),
    );
    let cache = new_result_cache(0);
    let cached = run_qt_serve(
        NodeId(0),
        cat.dict.clone(),
        stream.clone(),
        engines(&cat, &c),
        &c,
        &ServeConfig {
            result_cache: Some(Arc::clone(&cache)),
            ..ServeConfig::default()
        },
    );
    assert_eq!(cached.result_cache_hits, 4, "one cold miss, four hits");
    assert_eq!(cached.result_cache_misses, 1);
    assert!(
        cached.messages < uncached.messages,
        "result hits must eliminate trading traffic: {} vs {}",
        cached.messages,
        uncached.messages
    );
    // The cold session is bit-identical to its uncached twin.
    let (a, b) = (&uncached.reports[0], &cached.reports[0]);
    assert_eq!(format!("{:?}", a.plan), format!("{:?}", b.plan));
    // Hit sessions report zero iterations and answer like the reference.
    for (i, q) in [(1usize, &narrow), (2, &wide), (3, &agg), (4, &narrow)] {
        let r = &cached.reports[i];
        assert_eq!(r.iterations, 0, "session {i} should be a cache hit");
        let rows = r
            .plan
            .as_ref()
            .expect("hit plan")
            .execute_on(&cat.dict, &stores)
            .unwrap();
        let want = evaluate_query(q, &all).unwrap();
        assert!(
            approx_same_rows(&rows, &want, 1e-9),
            "session {i} compensated rows diverge"
        );
    }
    // The shared cache outlives the run and carries its stats.
    let stats = *cache.lock().unwrap().stats();
    assert_eq!(stats.hits(), 4);
    assert_eq!(stats.misses, 1);
}

/// An adaptive-markup award stales cached prices over the traded relations;
/// the serving loop invalidates the overlap before publishing, so later
/// identical arrivals re-trade instead of reusing pre-award plans.
#[test]
fn adaptive_awards_invalidate_cached_results_selectively() {
    let (cat, _) = fed();
    let c = QtConfig {
        parallel: true,
        enable_semantic_cache: true,
        seller_strategy: qt_trade::SellerStrategy::adaptive_markup(1.5),
        ..QtConfig::default()
    };
    let wide = parse_query(&cat.dict, WIDE).unwrap();
    let cust_only = parse_query(&cat.dict, "SELECT custname FROM customer").unwrap();
    let stream = vec![
        (0.0, wide.clone()),
        (1.0, cust_only.clone()),
        (2.0, wide.clone()),
    ];
    let cache = new_result_cache(0);
    let out = run_qt_serve(
        NodeId(0),
        cat.dict.clone(),
        stream,
        engines(&cat, &c),
        &c,
        &ServeConfig {
            result_cache: Some(Arc::clone(&cache)),
            ..ServeConfig::default()
        },
    );
    // Session 0 trades cold and publishes its wide plan. Session 1 (customer
    // only) cannot reuse it (a join view never answers a single-relation
    // query), trades, and its adaptive award invalidates every entry
    // touching `customer` — killing session 0's cached plan. Session 2 must
    // therefore re-trade the wide query from scratch.
    assert_eq!(out.result_cache_hits, 0, "every award stales the overlap");
    assert_eq!(out.result_cache_misses, 3);
    assert!(out.reports.iter().all(|r| r.iterations > 0));
    let stats = *cache.lock().unwrap().stats();
    assert!(stats.invalidated > 0, "selective invalidation never fired");
}

/// One shape of a telecom-family query; near-matching pairs of shapes give
/// the matcher narrower views, stronger view predicates, missing columns,
/// and aggregate/non-aggregate mixes to accept or reject.
#[derive(Debug, Clone)]
struct Shape {
    join: bool,
    charge_floor: Option<i64>,
    custid_floor: Option<i64>,
    select_mask: u8,
    aggregate: bool,
}

fn query_of(dict: &Arc<qt_catalog::SchemaDict>, s: &Shape) -> Option<Query> {
    let mut preds = Vec::new();
    if s.join {
        preds.push("customer.custid = invoiceline.custid".to_string());
    }
    if let Some(f) = s.charge_floor {
        if !s.join {
            return None; // charge lives on invoiceline
        }
        preds.push(format!("charge > {f}"));
    }
    if let Some(f) = s.custid_floor {
        preds.push(format!("customer.custid > {f}"));
    }
    let mut sql = if s.aggregate {
        if !s.join {
            return None;
        }
        "SELECT office, SUM(charge) FROM customer, invoiceline".to_string()
    } else {
        let all_cols = ["custname", "office", "charge"];
        let cols: Vec<&str> = all_cols
            .iter()
            .enumerate()
            .filter(|(i, _)| s.select_mask & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        if cols.is_empty() || (!s.join && cols.contains(&"charge")) {
            return None;
        }
        format!(
            "SELECT {} FROM {}",
            cols.join(", "),
            if s.join {
                "customer, invoiceline"
            } else {
                "customer"
            }
        )
    };
    if !preds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&preds.join(" AND "));
    }
    if s.aggregate {
        sql.push_str(" GROUP BY office");
    }
    parse_query(dict, &sql).ok()
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        any::<bool>(),
        (any::<bool>(), 0i64..200),
        (any::<bool>(), 0i64..60),
        1u8..8,
        any::<bool>(),
    )
        .prop_map(|(join, charge, custid, select_mask, aggregate)| Shape {
            join,
            charge_floor: charge.0.then_some(charge.1),
            custid_floor: custid.0.then_some(custid.1),
            select_mask,
            aggregate,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compensation soundness: for near-matching (view, query) pairs drawn
    /// from a telecom-shaped family, whenever the matcher accepts, feeding
    /// the view's reference rows through the compensation plan must yield
    /// the query's reference rows.
    #[test]
    fn accepted_matches_compensate_to_the_reference(a in shape_strategy(), b in shape_strategy()) {
        let (cat, stores) = fed();
        let all = union(&stores);
        let (Some(view), Some(query)) = (query_of(&cat.dict, &a), query_of(&cat.dict, &b)) else {
            continue;
        };
        let Some(m) = match_view(&view, &query) else {
            continue; // rejection is always sound
        };
        let view_rows = evaluate_query(&view, &all).unwrap();
        let input = PhysPlan::Input {
            slot: 0,
            schema: qt_core::dist_plan::answer_schema(&view),
        };
        let plan = compensate_assembly(&view, &query, &m, input)
            .expect("accepted matches must be compensable");
        let empty = DataStore::new();
        let got = execute(&plan, &empty, &[view_rows]).unwrap();
        let want = evaluate_query(&query, &all).unwrap();
        prop_assert!(
            approx_same_rows(&got, &want, 1e-9),
            "unsound match: view={view:?} query={query:?} m={m:?}"
        );
    }
}
