//! Session isolation of the serving layer.
//!
//! The contract under test: serving M queries *concurrently* (several
//! sessions multiplexed over one federation, RFB batching on or off,
//! seller fan-out serial or parallel) must produce, for every session, the
//! *bit-identical* observables of serving the same arrival stream
//! one-at-a-time over the same persistent sellers — same winning plan, same
//! cost bits, same offer ids, same iteration count — because every
//! scheduling decision is ordered by (virtual time, arrival seq, session
//! id) and all per-session state (engines, offer-id counters, reply memos)
//! is keyed by session.
//!
//! CI runs this binary under both `QT_THREADS=1` and `QT_THREADS=4`; the
//! suite deliberately does not pin the variable itself.

use proptest::prelude::*;
use qt_catalog::NodeId;
use qt_core::{run_qt_serve, QtConfig, SellerEngine, ServeConfig, ServeOutcome};
use qt_query::Query;
use qt_workload::{
    build_federation, gen_arrivals, synthetic_mix, ArrivalSpec, Federation, FederationSpec,
};
use std::collections::BTreeMap;

fn spec(nodes: u32, seed: u64) -> FederationSpec {
    FederationSpec {
        nodes,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed,
        with_data: false,
        speed_spread: 2.0,
        data_skew: 0.0,
    }
}

fn engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

fn arrivals(fed: &Federation, n: usize, seed: u64) -> Vec<(f64, Query)> {
    let mix = synthetic_mix(&fed.catalog.dict, 4, seed);
    gen_arrivals(
        &mix,
        &ArrivalSpec {
            n_queries: n,
            mean_interarrival: 0.0,
            seed,
        },
    )
}

fn serve(
    fed: &Federation,
    stream: &[(f64, Query)],
    concurrency: usize,
    batch: bool,
    parallel: bool,
) -> ServeOutcome {
    let cfg = QtConfig {
        parallel,
        // Deep admission queues must not trip retransmission deadlines.
        seller_timeout: 300.0,
        ..QtConfig::default()
    };
    run_qt_serve(
        NodeId(0),
        fed.catalog.dict.clone(),
        stream.to_vec(),
        engines(fed, &cfg),
        &cfg,
        &ServeConfig {
            concurrency,
            batch_rfbs: batch,
            result_cache: None,
        },
    )
}

/// Per-session observables must be bit-identical: the full plan Debug
/// rendering covers purchase offer ids, sellers, assembly skeleton, and the
/// cost estimate; the cost bits are compared explicitly on top.
fn assert_sessions_identical(a: &ServeOutcome, b: &ServeOutcome, ctx: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "session count ({ctx})");
    for (x, y) in a.reports.iter().zip(&b.reports) {
        assert_eq!(x.session, y.session, "session order ({ctx})");
        assert_eq!(
            x.iterations, y.iterations,
            "iterations differ for {} ({ctx})",
            x.session
        );
        assert_eq!(
            format!("{:?}", x.plan),
            format!("{:?}", y.plan),
            "plan differs for {} ({ctx})",
            x.session
        );
        match (&x.plan, &y.plan) {
            (Some(p), Some(q)) => assert_eq!(
                p.est.additive_cost.to_bits(),
                q.est.additive_cost.to_bits(),
                "cost not bit-identical for {} ({ctx})",
                x.session
            ),
            (None, None) => {}
            _ => panic!("one run planned {}, the other did not ({ctx})", x.session),
        }
    }
}

#[test]
fn concurrent_serving_matches_sequential_for_6_and_10_sellers() {
    for nodes in [6u32, 10] {
        for seed in [1u64, 7] {
            let fed = build_federation(&spec(nodes, seed));
            let stream = arrivals(&fed, 8, seed);
            let seq = serve(&fed, &stream, 1, true, false);
            assert!(
                seq.reports.iter().all(|r| r.plan.is_some()),
                "nodes={nodes} seed={seed}: some session found no plan"
            );
            for conc in [4usize, 8] {
                for batch in [true, false] {
                    let out = serve(&fed, &stream, conc, batch, false);
                    assert_sessions_identical(
                        &seq,
                        &out,
                        &format!("nodes={nodes} seed={seed} conc={conc} batch={batch}"),
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_seller_fan_out_does_not_change_served_plans() {
    let fed = build_federation(&spec(8, 13));
    let stream = arrivals(&fed, 8, 13);
    let serial = serve(&fed, &stream, 4, true, false);
    let parallel = serve(&fed, &stream, 4, true, true);
    assert_sessions_identical(&serial, &parallel, "parallel fan-out, conc=4");
}

#[test]
fn batching_cuts_messages_without_changing_results() {
    let fed = build_federation(&spec(10, 5));
    let stream = arrivals(&fed, 12, 5);
    let batched = serve(&fed, &stream, 8, true, false);
    let unbatched = serve(&fed, &stream, 8, false, false);
    assert_sessions_identical(&batched, &unbatched, "batched vs unbatched, conc=8");
    assert!(
        (batched.messages as f64) < 0.7 * unbatched.messages as f64,
        "batching should cut messages >30%: {} vs {}",
        batched.messages,
        unbatched.messages
    );
    assert_eq!(
        batched.seller_effort, unbatched.seller_effort,
        "batching must not change seller work"
    );
    assert_eq!(
        (batched.offer_cache_hits, batched.offer_cache_misses),
        (unbatched.offer_cache_hits, unbatched.offer_cache_misses),
        "batching must not change cache accounting"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized streams: concurrency and batching never leak into any
    /// session's observables.
    #[test]
    fn serving_schedule_never_leaks_into_results(seed in 0u64..1_000, pick in 0usize..3) {
        let nodes = [5u32, 6, 8][pick];
        let fed = build_federation(&spec(nodes, seed));
        let stream = arrivals(&fed, 6, seed);
        let seq = serve(&fed, &stream, 1, true, false);
        let conc = serve(&fed, &stream, 4, true, false);
        let unbatched = serve(&fed, &stream, 4, false, false);
        assert_sessions_identical(&seq, &conc, &format!("nodes={nodes} seed={seed} conc=4"));
        assert_sessions_identical(
            &seq,
            &unbatched,
            &format!("nodes={nodes} seed={seed} conc=4 unbatched"),
        );
    }
}
