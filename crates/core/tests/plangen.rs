//! Focused tests of the buyer plan generator: offer classification, greedy
//! disjoint covers, DP joins, the partial-aggregate path, and the
//! whole-answer shortcut.

use qt_catalog::{
    AttrType, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelId, RelationSchema,
};
use qt_core::plangen::PlanGenerator;
use qt_core::{Offer, OfferKind, QtConfig};
use qt_cost::{AnswerProperties, NodeResources};
use qt_query::{parse_query, Col, PartSet, Predicate, Query, SelectItem};
use std::sync::Arc;

/// r(a,b) with 4 hash partitions, s(a,c) single partition.
fn dict() -> Arc<qt_catalog::SchemaDict> {
    let mut b = CatalogBuilder::new();
    let r = b.add_relation(
        RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
        Partitioning::Hash { attr: 0, parts: 4 },
    );
    let s = b.add_relation(
        RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
        Partitioning::Single,
    );
    for i in 0..4 {
        b.set_stats(
            PartId::new(r, i),
            PartitionStats::synthetic(100, &[100, 10]),
        );
        b.place(PartId::new(r, i), NodeId(1));
    }
    b.set_stats(PartId::new(s, 0), PartitionStats::synthetic(50, &[50, 5]));
    b.place(PartId::new(s, 0), NodeId(2));
    b.build().dict
}

fn join_query(d: &qt_catalog::SchemaDict) -> Query {
    parse_query(d, "SELECT b, c FROM r, s WHERE r.a = s.a").unwrap()
}

/// Hand-build a fragment offer for `subset` with the given partition sets
/// and time.
fn frag(id: u64, seller: u32, q: &Query, rel_parts: &[(RelId, PartSet)], time: f64) -> Offer {
    let subset: std::collections::BTreeSet<RelId> = rel_parts.iter().map(|(r, _)| *r).collect();
    let mut fq = q.strip_aggregation().restrict_to_rels(&subset);
    for (rel, parts) in rel_parts {
        fq.relations.insert(*rel, *parts);
    }
    Offer {
        id,
        seller: NodeId(seller),
        query: fq,
        props: AnswerProperties::timed(time, 10.0, 100.0),
        true_cost: time,
        kind: OfferKind::Rows,
        round: 0,
        subcontracts: vec![],
    }
}

fn generator<'a>(
    d: &'a qt_catalog::SchemaDict,
    q: &'a Query,
    cfg: &'a QtConfig,
) -> PlanGenerator<'a> {
    PlanGenerator {
        dict: d,
        query: q,
        config: cfg,
        buyer_resources: NodeResources::reference(),
    }
}

#[test]
fn no_offers_means_no_plan() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    let gen = generator(&d, &q, &cfg).generate(&[]);
    assert!(gen.plan.is_none());
    assert!(gen.join_sites.is_empty());
}

#[test]
fn incomplete_coverage_means_no_plan() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    // Only 3 of r's 4 partitions are covered; s is fully covered.
    let offers = vec![
        frag(
            1,
            1,
            &q,
            &[(RelId(0), PartSet::from_indices([0, 1, 2]))],
            1.0,
        ),
        frag(2, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    assert!(gen.plan.is_none(), "missing partition 3 of r");
}

#[test]
fn disjoint_fragments_union_and_join() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    let offers = vec![
        frag(1, 1, &q, &[(RelId(0), PartSet::from_indices([0, 1]))], 1.0),
        frag(2, 3, &q, &[(RelId(0), PartSet::from_indices([2, 3]))], 1.0),
        frag(3, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("cover exists");
    assert_eq!(plan.purchases.len(), 3);
    assert_eq!(
        gen.join_sites.len(),
        1,
        "one buyer-side join between r and s"
    );
    // The assembly joins a union of the two r fragments with s.
    let pretty = plan.assembly.pretty();
    assert!(pretty.contains("HashJoin"), "{pretty}");
    assert!(pretty.contains("Union"), "{pretty}");
}

#[test]
fn overlapping_fragments_resolved_by_singletons() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    // Two overlapping big fragments cannot tile; the per-partition
    // singletons (as real sellers emit) make the cover possible.
    let mut offers = vec![
        frag(
            1,
            1,
            &q,
            &[(RelId(0), PartSet::from_indices([0, 1, 2]))],
            1.5,
        ),
        frag(
            2,
            3,
            &q,
            &[(RelId(0), PartSet::from_indices([1, 2, 3]))],
            1.5,
        ),
        frag(9, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    for (i, idx) in [0u16, 1, 2, 3].iter().enumerate() {
        offers.push(frag(
            10 + i as u64,
            1,
            &q,
            &[(RelId(0), PartSet::single(*idx))],
            0.6,
        ));
    }
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("tiling exists via singletons");
    // Coverage of r must be exactly {0,1,2,3} with no partition bought twice.
    let mut covered = PartSet::EMPTY;
    for p in &plan.purchases {
        if let Some(parts) = p.offer.query.relations.get(&RelId(0)) {
            assert!(covered.is_disjoint(parts), "no double-buying");
            covered = covered.union(parts);
        }
    }
    assert_eq!(covered, PartSet::all(4));
}

#[test]
fn cheapest_offer_wins_per_coverage_box() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    let offers = vec![
        frag(1, 1, &q, &[(RelId(0), PartSet::all(4))], 5.0),
        frag(2, 3, &q, &[(RelId(0), PartSet::all(4))], 1.0), // same box, cheaper
        frag(3, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("plan");
    let r_buy = plan
        .purchases
        .iter()
        .find(|p| p.offer.query.relations.contains_key(&RelId(0)))
        .unwrap();
    assert_eq!(r_buy.offer.id, 2, "cheaper duplicate box must win");
}

#[test]
fn whole_join_offer_beats_expensive_fragments() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    let offers = vec![
        frag(1, 1, &q, &[(RelId(0), PartSet::all(4))], 10.0),
        frag(2, 2, &q, &[(RelId(1), PartSet::all(1))], 10.0),
        // Node 5 offers the whole 2-way join cheaply.
        frag(
            3,
            5,
            &q,
            &[(RelId(0), PartSet::all(4)), (RelId(1), PartSet::all(1))],
            2.0,
        ),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("plan");
    assert_eq!(plan.purchases.len(), 1);
    assert_eq!(plan.purchases[0].offer.id, 3);
    assert!(gen.join_sites.is_empty(), "no buyer-side join needed");
}

#[test]
fn foreign_offers_are_ignored() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    // An offer whose select list does not match the expected fragment (extra
    // predicate → different fragment semantics) must be rejected.
    let mut wrong = frag(1, 1, &q, &[(RelId(0), PartSet::all(4))], 0.1);
    wrong.query.predicates.push(Predicate::with_const(
        Col::new(RelId(0), 1),
        qt_query::CompOp::Gt,
        5i64,
    ));
    wrong.query.canonicalize();
    let offers = vec![
        wrong,
        frag(2, 1, &q, &[(RelId(0), PartSet::all(4))], 3.0),
        frag(3, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("plan");
    let r_buy = plan
        .purchases
        .iter()
        .find(|p| p.offer.query.relations.contains_key(&RelId(0)))
        .unwrap();
    assert_eq!(r_buy.offer.id, 2, "over-filtered offer must not be used");
}

#[test]
fn partial_aggregates_require_matching_shape() {
    let d = dict();
    let q = parse_query(&d, "SELECT b, SUM(c) FROM r, s WHERE r.a = s.a GROUP BY b").unwrap();
    let cfg = QtConfig::default();
    // A valid partial-aggregate pair covering r's partitions {0,1} and {2,3}.
    let mk_agg = |id: u64, parts: PartSet, time: f64| Offer {
        id,
        seller: NodeId(id as u32),
        query: q.clone().with_partset(RelId(0), parts),
        props: AnswerProperties::timed(time, 5.0, 40.0),
        true_cost: time,
        kind: OfferKind::PartialAggregate,
        round: 0,
        subcontracts: vec![],
    };
    let offers = vec![
        mk_agg(1, PartSet::from_indices([0, 1]), 0.5),
        mk_agg(2, PartSet::from_indices([2, 3]), 0.5),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("partial aggregates tile");
    assert_eq!(plan.purchases.len(), 2);
    assert!(
        plan.assembly.pretty().contains("HashAggregate"),
        "re-aggregation present"
    );

    // An AVG query cannot be assembled from *partial-coverage* aggregates
    // (a full-coverage one is simply the exact answer and stays usable).
    let avg_q = parse_query(&d, "SELECT b, AVG(c) FROM r, s WHERE r.a = s.a GROUP BY b").unwrap();
    let mk_avg = |id: u64, parts: PartSet| Offer {
        id,
        seller: NodeId(id as u32),
        query: avg_q.clone().with_partset(RelId(0), parts),
        props: AnswerProperties::timed(0.5, 5.0, 40.0),
        true_cost: 0.5,
        kind: OfferKind::PartialAggregate,
        round: 0,
        subcontracts: vec![],
    };
    let partials = vec![
        mk_avg(3, PartSet::from_indices([0, 1])),
        mk_avg(4, PartSet::from_indices([2, 3])),
    ];
    let gen = generator(&d, &avg_q, &cfg).generate(&partials);
    assert!(gen.plan.is_none(), "AVG partials are not re-aggregable");
    let full = vec![mk_avg(5, PartSet::all(4))];
    let gen = generator(&d, &avg_q, &cfg).generate(&full);
    assert!(
        gen.plan.is_some(),
        "a full-coverage aggregate is the exact answer"
    );
}

#[test]
fn considered_effort_is_reported() {
    let d = dict();
    let q = join_query(&d);
    let cfg = QtConfig::default();
    let offers = vec![
        frag(1, 1, &q, &[(RelId(0), PartSet::all(4))], 1.0),
        frag(2, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    assert!(gen.considered >= offers.len() as u64);
}

#[test]
fn select_items_drive_output_schema() {
    // The plan's final projection matches the query's SELECT arity/order.
    let d = dict();
    let q = parse_query(&d, "SELECT c, b FROM r, s WHERE r.a = s.a").unwrap();
    let cfg = QtConfig::default();
    let offers = vec![
        frag(1, 1, &q, &[(RelId(0), PartSet::all(4))], 1.0),
        frag(2, 2, &q, &[(RelId(1), PartSet::all(1))], 1.0),
    ];
    let gen = generator(&d, &q, &cfg).generate(&offers);
    let plan = gen.plan.expect("plan");
    let schema = plan.assembly.schema();
    assert_eq!(schema.len(), 2);
    assert_eq!(schema[0], Col::new(RelId(1), 1), "c first");
    assert_eq!(schema[1], Col::new(RelId(0), 1), "b second");
    let _ = q.select.iter().map(SelectItem::col).count();
}
