//! Contract-lifecycle integration: two-phase awards, execution leases, and
//! deterministic failover to runner-up offers — end-to-end on the simulator.
//!
//! Three invariants from the PR contract:
//! 1. Fault-free runs with the lifecycle on are bit-identical to lifecycle-off
//!    runs in everything the lifecycle must not touch (plan, cost bits, offer
//!    ids, trading message counts) — the lifecycle only *adds* its own
//!    award-ack/release traffic and zero-byte lease heartbeats.
//! 2. Crashing the awarded winner after trading finishes triggers a repair
//!    whose outcome (re-awarded plan, repair counters) is bit-identical
//!    across `parallel` on/off and across delivery-order perturbations.
//! 3. In the serving layer a mid-session winner crash degrades only that
//!    session; every other session's report stays bit-identical.

use proptest::prelude::*;
use qt_catalog::NodeId;
use qt_core::{
    run_qt_serve_with_faults, run_qt_sim_with_faults, QtConfig, QtOutcome, SellerEngine,
    ServeConfig,
};
use qt_net::{FaultPlan, Metrics, Topology};
use qt_query::Query;
use qt_workload::{build_federation, gen_join_query, Federation, FederationSpec, QueryShape};
use std::collections::BTreeMap;

fn spec(nodes: u32, seed: u64) -> FederationSpec {
    FederationSpec {
        nodes,
        relations: 3,
        partitions_per_relation: 2,
        replication: 3,
        rows_per_partition: 100_000,
        scale: 1,
        seed,
        with_data: false,
        speed_spread: 2.0,
        data_skew: 0.0,
    }
}

fn engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

fn run(
    fed: &Federation,
    q: &Query,
    cfg: &QtConfig,
    faults: Option<FaultPlan>,
) -> (QtOutcome, Metrics) {
    run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        q,
        engines(fed, cfg),
        cfg,
        Topology::Uniform(cfg.link),
        faults,
    )
}

/// Everything the inert lifecycle must not perturb.
fn trading_digest(out: &QtOutcome) -> (String, u64, u64, u32, u64) {
    let offer_ids: Vec<u64> = out
        .plan
        .iter()
        .flat_map(|p| p.purchases.iter().map(|pu| pu.offer.id))
        .collect();
    (
        format!("{:?}", out.plan),
        out.plan
            .as_ref()
            .map(|p| p.est.additive_cost.to_bits())
            .unwrap_or(0),
        out.optimization_time.to_bits(),
        out.iterations,
        offer_ids.iter().fold(0u64, |h, id| h ^ id.rotate_left(17)),
    )
}

/// The full repair outcome, for bit-identity across schedules.
fn repair_digest(out: &QtOutcome) -> (String, u64, u64, u64, u64, u64) {
    (
        format!("{:?}", out.plan),
        out.contracts_awarded,
        out.contracts_repaired,
        out.reawards,
        out.rescoped_trades,
        out.plan
            .as_ref()
            .map(|p| p.est.additive_cost.to_bits())
            .unwrap_or(0),
    )
}

#[test]
fn inert_lifecycle_is_bit_identical_in_everything_it_must_not_touch() {
    let fed = build_federation(&spec(8, 31));
    let off = QtConfig::default();
    let on = QtConfig {
        enable_contracts: true,
        ..QtConfig::default()
    };
    for qseed in 0..4u64 {
        let shape = if qseed % 2 == 0 {
            QueryShape::Chain
        } else {
            QueryShape::Star
        };
        let q = gen_join_query(&fed.catalog.dict, shape, 3, qseed % 2 == 0, 31 + qseed);
        let (base, base_m) = run(&fed, &q, &off, None);
        let (life, life_m) = run(&fed, &q, &on, None);
        assert!(base.plan.is_some());
        assert_eq!(trading_digest(&base), trading_digest(&life));
        // Same award fan-out; the lifecycle adds exactly one ack and one
        // release per award, plus heartbeats that are not data messages.
        assert_eq!(base_m.kind_count("award"), life_m.kind_count("award"));
        assert_eq!(
            life_m.messages - life_m.kind_count("award-ack") - life_m.kind_count("release"),
            base_m.messages,
        );
        assert_eq!(life_m.kind_count("award-ack"), life_m.kind_count("award"));
        assert!(life_m.lease_events > 0 || life_m.kind_count("award") == 0);
        assert_eq!(base_m.lease_events, 0);
        // Every contract settles cleanly fault-free.
        assert_eq!(
            life.contracts_awarded,
            life.plan.as_ref().unwrap().purchases.len() as u64
        );
        assert_eq!(life.contracts_repaired, 0);
        assert_eq!(life.reawards, 0);
        assert_eq!(life.rescoped_trades, 0);
        assert!(life.contracts.iter().all(|c| c.state == "completed"));
    }
}

/// Crash the fault-free winner right after trading finishes and check the
/// repair: a valid plan referencing only live nodes, counters accounting for
/// the failover, bit-identical across `parallel` on/off and jittered
/// delivery orders.
#[test]
fn post_award_winner_crash_repairs_deterministically() {
    let fed = build_federation(&spec(8, 17));
    let cfg = QtConfig {
        enable_contracts: true,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 17);
    let (clean, _) = run(&fed, &q, &cfg, None);
    let plan = clean.plan.as_ref().expect("fault-free plan");
    let winner = plan
        .purchases
        .iter()
        .map(|p| p.offer.seller)
        .find(|&s| s != NodeId(0))
        .expect("a remote winner to crash");
    let t0 = clean.optimization_time;
    let crash = move |extra: FaultPlan| extra.with_crash(winner, t0 + 1e-6, 1e12);

    let (repaired, m) = run(&fed, &q, &cfg, Some(crash(FaultPlan::default())));
    let rplan = repaired
        .plan
        .as_ref()
        .expect("replication 3 must cover the crashed winner");
    for p in &rplan.purchases {
        assert_ne!(
            p.offer.seller, winner,
            "repaired plan references the crashed node"
        );
    }
    // The failover is visible and accounted for.
    assert!(m.lost_awards + m.lease_expiries >= 1);
    assert!(repaired.reawards + repaired.rescoped_trades >= 1);
    assert!(repaired.contracts_repaired >= 1);
    assert!(
        repaired
            .contracts
            .iter()
            .any(|c| c.replacement && c.state == "completed"),
        "{:?}",
        repaired.contracts
    );
    // Every expired/declined contract has a terminal state.
    for c in &repaired.contracts {
        assert!(
            matches!(c.state, "completed" | "expired" | "declined" | "abandoned"),
            "non-terminal contract at drain: {c:?}"
        );
    }

    // Bit-identical repair across compute parallelism…
    let serial = QtConfig {
        parallel: false,
        ..cfg.clone()
    };
    let (repaired_serial, _) = run(&fed, &q, &serial, Some(crash(FaultPlan::default())));
    assert_eq!(repair_digest(&repaired), repair_digest(&repaired_serial));
    // …and across perturbed delivery schedules: heavy duplication re-delivers
    // every award ack, lease ack, and re-trade reply in a different
    // interleaving, and the lifecycle's dedup must absorb all of it.
    let (repaired_dup, _) = run(
        &fed,
        &q,
        &cfg,
        Some(crash(FaultPlan::default().with_duplicates(1.0))),
    );
    assert_eq!(repair_digest(&repaired), repair_digest(&repaired_dup));
    // And the whole thing is reproducible bit-for-bit.
    let (again, _) = run(&fed, &q, &cfg, Some(crash(FaultPlan::default())));
    assert_eq!(repair_digest(&repaired), repair_digest(&again));
}

/// CI runs this under `QT_FAULT_SEED` ∈ {7, 99} with `QT_THREADS=4`: a lossy
/// network *plus* a post-award winner crash, and the whole run — trading,
/// award retries, lease expiry, failover — must be bit-identical between
/// serial and parallel seller fan-out.
#[test]
fn fault_seeded_crash_repair_is_deterministic_across_thread_counts() {
    std::env::set_var("QT_THREADS", "4");
    let fault_seed: u64 = std::env::var("QT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let fed = build_federation(&spec(8, fault_seed));
    let cfg = QtConfig {
        enable_contracts: true,
        seller_timeout: 5.0,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, fault_seed);
    let loss = || FaultPlan::lossy(fault_seed, 0.05).with_duplicates(0.05);
    // Reference run under the same loss pattern, no crash: its winner and
    // finish time tell us where "post-award" is for this seed.
    let (reference, _) = run(&fed, &q, &cfg, Some(loss()));
    let Some((winner, t_fin)) = reference.plan.as_ref().and_then(|p| {
        p.purchases
            .iter()
            .map(|pu| pu.offer.seller)
            .find(|&s| s != NodeId(0))
            .map(|w| (w, reference.optimization_time))
    }) else {
        return; // all-local plan under this seed: nothing to crash
    };
    let faults = || loss().with_crash(winner, t_fin + 1e-6, 1e12);
    let digest = |cfg: &QtConfig| {
        let (out, m) = run(&fed, &q, cfg, Some(faults()));
        if let Some(p) = &out.plan {
            for pu in &p.purchases {
                assert_ne!(pu.offer.seller, winner, "plan references the crashed node");
            }
        }
        (
            repair_digest(&out),
            out.optimization_time.to_bits(),
            m.dropped,
            m.duplicated,
            m.awards_sent,
            m.award_retries,
        )
    };
    let serial = digest(&QtConfig {
        parallel: false,
        ..cfg.clone()
    });
    let parallel = digest(&cfg);
    assert_eq!(serial, parallel, "seed {fault_seed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized federations/queries: crashing the fault-free winner right
    /// after trading always yields a deterministic repair that references
    /// only live nodes, identically under serial and parallel fan-out.
    #[test]
    fn post_award_crash_repair_is_deterministic(seed in 0u64..200) {
        let fed = build_federation(&spec(8, seed));
        let cfg = QtConfig {
            enable_contracts: true,
            ..QtConfig::default()
        };
        let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, seed % 2 == 0, seed);
        let (clean, _) = run(&fed, &q, &cfg, None);
        let plan = clean.plan.as_ref().expect("fault-free plan");
        let Some(winner) = plan
            .purchases
            .iter()
            .map(|p| p.offer.seller)
            .find(|&s| s != NodeId(0))
        else {
            return; // all-local plan: nothing to crash
        };
        let crash = FaultPlan::default().with_crash(winner, clean.optimization_time + 1e-6, 1e12);
        let (a, _) = run(&fed, &q, &cfg, Some(crash.clone()));
        if let Some(p) = &a.plan {
            for pu in &p.purchases {
                assert_ne!(pu.offer.seller, winner);
            }
        }
        let serial = QtConfig { parallel: false, ..cfg.clone() };
        let (b, _) = run(&fed, &q, &serial, Some(crash));
        assert_eq!(repair_digest(&a), repair_digest(&b));
        // Losing the winner is always accounted for, one way or the other.
        assert!(a.reawards + a.rescoped_trades + a.contracts_repaired >= 1 || a.plan.is_none());
    }
}

#[test]
fn serve_mid_session_winner_crash_degrades_only_that_session() {
    let fed = build_federation(&spec(8, 23));
    let cfg = QtConfig {
        enable_contracts: true,
        ..QtConfig::default()
    };
    let serve = ServeConfig::default();
    // Arrivals far apart: each session's trading *and* contract phase fit
    // in its own window, so a bounded crash cannot leak across sessions.
    let arrivals: Vec<(f64, Query)> = (0..5)
        .map(|i| {
            let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 2, i % 2 == 0, 23 + i);
            (i as f64 * 500.0, q)
        })
        .collect();
    let baseline = run_qt_serve_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        arrivals.clone(),
        engines(&fed, &cfg),
        &cfg,
        &serve,
        None,
    );
    assert_eq!(baseline.reports.len(), 5);
    // Pick a mid-stream session with a remote winner and crash that winner
    // for a bounded window starting just after its trading finished.
    let (target, winner, t_fin) = baseline
        .reports
        .iter()
        .skip(1)
        .find_map(|r| {
            let plan = r.plan.as_ref()?;
            let w = plan
                .purchases
                .iter()
                .map(|p| p.offer.seller)
                .find(|&s| s != NodeId(0))?;
            Some((r.session, w, r.finished))
        })
        .expect("a mid-stream session with a remote winner");
    let faulted = run_qt_serve_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        arrivals,
        engines(&fed, &cfg),
        &cfg,
        &serve,
        Some(FaultPlan::default().with_crash(winner, t_fin + 1e-6, t_fin + 400.0)),
    );
    assert_eq!(faulted.reports.len(), 5, "every session still completes");
    for (b, f) in baseline.reports.iter().zip(&faulted.reports) {
        assert_eq!(b.session, f.session);
        if f.session == target {
            let plan = f.plan.as_ref().expect("target session must be repaired");
            for p in &plan.purchases {
                assert_ne!(p.offer.seller, winner);
            }
            assert!(f.repaired);
            assert!(f.reawards + f.rescoped_trades >= 1);
        } else {
            // Untouched sessions are bit-identical: same plan, same timings.
            assert_eq!(format!("{:?}", b.plan), format!("{:?}", f.plan));
            assert_eq!(b.finished.to_bits(), f.finished.to_bits());
            assert_eq!(b.iterations, f.iterations);
            assert!(!f.repaired);
        }
    }
    assert!(faulted.contracts.lease_expiries + faulted.contracts.lost_awards >= 1);
    assert_eq!(baseline.contracts.reawards, 0);
}
