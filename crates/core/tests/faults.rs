//! End-to-end fault injection: the QT trading loop over a lossy, crashing,
//! partitioned network must stay deterministic, degrade gracefully, and —
//! with an inert plan — be bit-identical to the fault-free driver.

use qt_catalog::NodeId;
use qt_core::{run_qt_sim_with_faults, run_qt_sim_with_topology, QtConfig, SellerEngine};
use qt_net::{FaultPlan, Metrics, Topology};
use qt_workload::{build_federation, gen_join_query, Federation, FederationSpec, QueryShape};
use std::collections::BTreeMap;

fn spec(nodes: u32, seed: u64) -> FederationSpec {
    FederationSpec {
        nodes,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed,
        with_data: false,
        speed_spread: 2.0,
        data_skew: 0.0,
    }
}

fn engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

/// A compact, comparable digest of one simulated run.
fn digest(out: &qt_core::QtOutcome, m: &Metrics) -> (String, u64, u64, u64, u64, u64, u64, u64) {
    (
        format!("{:?}", out.plan),
        out.plan
            .as_ref()
            .map(|p| p.est.additive_cost.to_bits())
            .unwrap_or(0),
        out.messages,
        out.optimization_time.to_bits(),
        m.dropped,
        m.duplicated,
        m.retries,
        m.timeouts,
    )
}

#[test]
fn inert_fault_plane_is_bit_identical_to_no_plan() {
    // Loss rate 0, no crashes: the fault-plane code path must not perturb
    // plans, costs, or message counts in any way.
    let fed = build_federation(&spec(8, 21));
    let cfg = QtConfig::default();
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 21);
    let baseline = run_qt_sim_with_topology(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
    );
    let with_inert = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        Some(FaultPlan::lossy(99, 0.0)),
    );
    assert!(baseline.0.plan.is_some());
    assert_eq!(
        digest(&baseline.0, &baseline.1),
        digest(&with_inert.0, &with_inert.1)
    );
    assert_eq!(with_inert.0.retries, 0);
    assert_eq!(with_inert.0.degraded_rounds, 0);
    assert!(with_inert.0.unreachable_sellers.is_empty());
}

#[test]
fn lossy_network_still_yields_a_valid_plan() {
    // ≥10% message loss: retransmission with backoff keeps the market
    // alive, and the buyer still produces a plan.
    let fed = build_federation(&spec(8, 21));
    let cfg = QtConfig {
        seller_timeout: 5.0,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 21);
    let (out, metrics) = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        Some(FaultPlan::lossy(7, 0.15)),
    );
    let plan = out.plan.expect("trading must survive 15% loss");
    assert!(plan.est.additive_cost.is_finite());
    assert!(metrics.dropped > 0, "15% loss must drop something");
    assert_eq!(metrics.dropped_by_cause.get("loss"), Some(&metrics.dropped));
    // The driver surfaces its robustness counters in both places.
    assert_eq!(metrics.retries, out.retries);
    assert_eq!(metrics.timeouts, out.timeouts);
    assert!(
        out.timeouts > 0,
        "lost replies must trip the response deadline"
    );
    assert!(out.retries > 0, "deadlines must trigger retransmission");
}

#[test]
fn duplicated_deliveries_are_idempotent() {
    // Heavy duplication: the buyer's reply dedup and the sellers' request
    // dedup must keep the outcome identical to a clean run — duplicates
    // change nothing but the metrics.
    let fed = build_federation(&spec(8, 21));
    let cfg = QtConfig::default();
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 21);
    let clean = run_qt_sim_with_topology(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
    );
    let dup = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        Some(FaultPlan::default().with_duplicates(1.0)),
    );
    assert!(dup.1.duplicated > 0);
    assert_eq!(
        format!("{:?}", clean.0.plan),
        format!("{:?}", dup.0.plan),
        "duplicates must not change the winning plan"
    );
    assert_eq!(
        clean.0.iterations, dup.0.iterations,
        "duplicates must not add trading rounds"
    );
    assert_eq!(clean.0.buyer_considered, dup.0.buyer_considered);
}

#[test]
fn crashed_seller_degrades_the_round_and_is_reported() {
    let fed = build_federation(&spec(8, 21));
    let cfg = QtConfig {
        seller_timeout: 2.0,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 21);
    let (out, metrics) = run_qt_sim_with_faults(
        NodeId(0),
        fed.catalog.dict.clone(),
        &q,
        engines(&fed, &cfg),
        &cfg,
        Topology::Uniform(cfg.link),
        // Node 3 is down for the whole run.
        Some(FaultPlan::default().with_crash(NodeId(3), 0.0, 1e12)),
    );
    assert!(
        out.unreachable_sellers.contains(&NodeId(3)),
        "{:?}",
        out.unreachable_sellers
    );
    assert!(out.degraded_rounds >= 1);
    assert_eq!(metrics.degraded_rounds, out.degraded_rounds as u64);
    assert!(metrics.dropped_by_cause.get("crash").copied().unwrap_or(0) > 0);
    // Replication 2: every fragment lives somewhere else too, so trading
    // still finds a (possibly degraded) plan.
    assert!(
        out.plan.is_some(),
        "replication must cover the crashed node"
    );
}

#[test]
fn same_fault_seed_is_bit_reproducible() {
    let fed = build_federation(&spec(8, 5));
    let cfg = QtConfig {
        seller_timeout: 5.0,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Star, 3, false, 5);
    let run = || {
        let (out, m) = run_qt_sim_with_faults(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
            Topology::Uniform(cfg.link),
            Some(
                FaultPlan::lossy(13, 0.2)
                    .with_duplicates(0.1)
                    .with_jitter(0.5),
            ),
        );
        digest(&out, &m)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_fault_seeds_usually_differ() {
    // Not a hard guarantee, but with 20% loss two seeds agreeing on every
    // counter would suggest the seed is ignored.
    let fed = build_federation(&spec(8, 5));
    let cfg = QtConfig {
        seller_timeout: 5.0,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Star, 3, false, 5);
    let run = |seed: u64| {
        let (out, m) = run_qt_sim_with_faults(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
            Topology::Uniform(cfg.link),
            Some(FaultPlan::lossy(seed, 0.2)),
        );
        (m.dropped, m.retries, out.optimization_time.to_bits())
    };
    let outcomes: std::collections::BTreeSet<_> = (0..4).map(run).collect();
    assert!(outcomes.len() > 1, "fault seeds appear to be ignored");
}
