//! Determinism of the parallel seller fan-out and observability of the
//! cross-round offer cache.
//!
//! The contract under test: a parallel run (`QtConfig::parallel = true`,
//! several workers) must produce the *bit-identical* outcome of a serial run
//! — same winning plan, same additive cost, same offer ids inside the plan's
//! purchases, same message/effort accounting — because the driver and the
//! sellers both merge concurrent results in deterministic input order.

use proptest::prelude::*;
use qt_catalog::NodeId;
use qt_core::{run_qt_direct, QtConfig, QtOutcome, SellerEngine};
use qt_workload::{build_federation, gen_join_query, Federation, FederationSpec, QueryShape};
use std::collections::BTreeMap;

fn spec(nodes: u32, seed: u64) -> FederationSpec {
    FederationSpec {
        nodes,
        relations: 3,
        partitions_per_relation: 2,
        replication: 2,
        rows_per_partition: 100_000,
        scale: 1,
        seed,
        with_data: false,
        speed_spread: 2.0,
        data_skew: 0.0,
    }
}

fn engines(fed: &Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    fed.catalog
        .nodes
        .iter()
        .map(|&n| {
            let mut e = SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone());
            if let Some(r) = fed.resources.get(&n) {
                e.resources = r.clone();
            }
            (n, e)
        })
        .collect()
}

/// Ensure the parallel arm really uses several workers even on a 1-core CI
/// host. Tests in this binary may run concurrently, so every caller sets the
/// same value — the writes are idempotent.
fn force_workers() {
    std::env::set_var("QT_THREADS", "4");
}

fn run(fed: &Federation, seed: u64, parallel: bool) -> QtOutcome {
    let cfg = QtConfig {
        parallel,
        ..QtConfig::default()
    };
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, seed);
    let mut sellers = engines(fed, &cfg);
    run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg)
}

fn assert_identical(serial: &QtOutcome, parallel: &QtOutcome, ctx: &str) {
    assert_eq!(
        serial.iterations, parallel.iterations,
        "iterations differ ({ctx})"
    );
    assert_eq!(
        serial.messages, parallel.messages,
        "messages differ ({ctx})"
    );
    assert_eq!(
        serial.seller_effort, parallel.seller_effort,
        "effort differs ({ctx})"
    );
    assert_eq!(
        serial.buyer_considered, parallel.buyer_considered,
        "considered differs ({ctx})"
    );
    // The Debug rendering covers the whole plan: purchase offer ids, sellers,
    // skeleton, and cost estimate — any nondeterminism shows up here.
    assert_eq!(
        format!("{:?}", serial.plan),
        format!("{:?}", parallel.plan),
        "winning plan differs ({ctx})"
    );
    match (&serial.plan, &parallel.plan) {
        (Some(a), Some(b)) => {
            assert_eq!(
                a.est.additive_cost.to_bits(),
                b.est.additive_cost.to_bits(),
                "cost not bit-identical ({ctx})"
            );
        }
        (None, None) => {}
        _ => panic!("one run planned, the other did not ({ctx})"),
    }
}

#[test]
fn parallel_fan_out_matches_serial_for_4_8_16_sellers() {
    force_workers();
    for nodes in [4u32, 8, 16] {
        for seed in [1u64, 7, 42] {
            let fed = build_federation(&spec(nodes, seed));
            let serial = run(&fed, seed, false);
            let parallel = run(&fed, seed, true);
            assert!(
                serial.plan.is_some(),
                "no plan for nodes={nodes} seed={seed}"
            );
            assert_identical(&serial, &parallel, &format!("nodes={nodes} seed={seed}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized federations: parallel == serial for arbitrary seeds.
    #[test]
    fn parallel_fan_out_is_deterministic(seed in 0u64..1_000, pick in 0usize..3) {
        force_workers();
        let nodes = [4u32, 8, 16][pick];
        let fed = build_federation(&spec(nodes, seed));
        let serial = run(&fed, seed, false);
        let parallel = run(&fed, seed, true);
        assert_identical(&serial, &parallel, &format!("nodes={nodes} seed={seed}"));
    }
}

/// Determinism under faults: the fault plane rolls per message sequence
/// number inside the single-threaded simulator, so the same `FaultPlan`
/// seed must give a bit-identical outcome whatever `QT_THREADS` says and
/// whether seller fan-out runs serial or parallel. CI runs this suite under
/// several fixed seeds via `QT_FAULT_SEED`.
#[test]
fn fault_injection_is_deterministic_across_thread_counts() {
    use qt_core::run_qt_sim_with_faults;
    use qt_net::{FaultPlan, Topology};
    force_workers();
    let fault_seed: u64 = std::env::var("QT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let fed = build_federation(&spec(8, 17));
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 17);
    let run = |parallel: bool| {
        let cfg = QtConfig {
            parallel,
            seller_timeout: 5.0,
            ..QtConfig::default()
        };
        let (out, m) = run_qt_sim_with_faults(
            NodeId(0),
            fed.catalog.dict.clone(),
            &q,
            engines(&fed, &cfg),
            &cfg,
            Topology::Uniform(cfg.link),
            Some(
                FaultPlan::lossy(fault_seed, 0.15)
                    .with_duplicates(0.05)
                    .with_jitter(0.25),
            ),
        );
        (out, m)
    };
    let (serial, sm) = run(false);
    let (parallel, pm) = run(true);
    assert_identical(&serial, &parallel, &format!("faults, seed={fault_seed}"));
    assert_eq!(
        serial.optimization_time.to_bits(),
        parallel.optimization_time.to_bits(),
        "virtual finish time not bit-identical"
    );
    assert_eq!(
        (sm.dropped, sm.duplicated, sm.retries, sm.timeouts),
        (pm.dropped, pm.duplicated, pm.retries, pm.timeouts),
        "fault metrics differ between serial and parallel fan-out"
    );
    assert_eq!(
        serial.unreachable_sellers, parallel.unreachable_sellers,
        "degradation bookkeeping differs"
    );
}

#[test]
fn repeated_runs_hit_the_offer_cache() {
    force_workers();
    let fed = build_federation(&spec(8, 11));
    let cfg = QtConfig::default();
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Chain, 3, true, 11);
    let mut sellers = engines(&fed, &cfg);

    let first = run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
    assert_eq!(first.offer_cache_hits, 0, "cold caches cannot hit");
    assert!(first.offer_cache_misses > 0);
    assert!(first.seller_effort > 0);

    // Re-optimizing the same query against the *same* (persistent) sellers:
    // the buyer re-asks the identical RFB sequence, so every item is served
    // from the memoized replies at zero seller effort.
    let second = run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
    assert!(second.offer_cache_hits > 0, "warm run must hit the cache");
    assert_eq!(
        second.offer_cache_misses, 0,
        "nothing changed, nothing re-evaluated"
    );
    assert_eq!(
        second.seller_effort, 0,
        "cache hits cost no optimization effort"
    );

    // Hit rate is observable and the warm plan is cost-identical (offer ids
    // advance, so compare the estimate, not the full Debug rendering).
    let a = first.plan.expect("cold plan");
    let b = second.plan.expect("warm plan");
    assert_eq!(a.est.additive_cost.to_bits(), b.est.additive_cost.to_bits());
}

#[test]
fn cache_survives_awards_under_truthful_default() {
    force_workers();
    let fed = build_federation(&spec(4, 3));
    let cfg = QtConfig::default();
    let q = gen_join_query(&fed.catalog.dict, QueryShape::Star, 3, false, 3);
    let mut sellers = engines(&fed, &cfg);
    run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
    // run_qt_direct already delivered awards; the default Truthful strategy
    // is award-independent so the memoized replies stay valid.
    let hits_before: u64 = sellers.values().map(|s| s.cache_hits).sum();
    let second = run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &q, &mut sellers, &cfg);
    let hits_after: u64 = sellers.values().map(|s| s.cache_hits).sum();
    assert!(hits_after > hits_before);
    assert_eq!(second.offer_cache_misses, 0);
}
