//! End-to-end tests of the QT trading loop: optimize with `run_qt_direct` /
//! `run_qt_sim`, execute the resulting distributed plans on per-node data
//! stores, and compare against the reference evaluator.

use qt_catalog::{
    AttrType, Catalog, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelId,
    RelationSchema, Value,
};
use qt_core::{run_qt_direct, run_qt_sim, QtConfig, SellerEngine};
use qt_exec::reference::approx_same_rows;
use qt_exec::{evaluate_query, DataStore};
use qt_query::{parse_query, MaterializedView};
use std::collections::BTreeMap;

/// The paper's telecom scenario with materialized data.
///
/// * `customer(custid, custname, office)` list-partitioned by office over
///   nodes 0 (Athens), 1 (Corfu), 2 (Myconos);
/// * `invoiceline(invid, linenum, custid, charge)` held fully by nodes 0
///   and 2.
fn telecom() -> (Catalog, BTreeMap<NodeId, DataStore>) {
    let mut b = CatalogBuilder::new();
    let cust = b.add_relation(
        RelationSchema::new(
            "customer",
            vec![
                ("custid", AttrType::Int),
                ("custname", AttrType::Str),
                ("office", AttrType::Str),
            ],
        ),
        Partitioning::List {
            attr: 2,
            groups: vec![
                vec![Value::str("Athens")],
                vec![Value::str("Corfu")],
                vec![Value::str("Myconos")],
            ],
        },
    );
    let inv = b.add_relation(
        RelationSchema::new(
            "invoiceline",
            vec![
                ("invid", AttrType::Int),
                ("linenum", AttrType::Int),
                ("custid", AttrType::Int),
                ("charge", AttrType::Float),
            ],
        ),
        Partitioning::Single,
    );

    // Data: 30 customers across 3 offices, 120 invoice lines.
    let offices = ["Athens", "Corfu", "Myconos"];
    let customers: Vec<Vec<Value>> = (0..30)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::str(format!("cust{i}")),
                Value::str(offices[(i % 3) as usize]),
            ]
        })
        .collect();
    let invoices: Vec<Vec<Value>> = (0..120)
        .map(|i| {
            vec![
                Value::Int(i / 4),
                Value::Int(i % 4),
                Value::Int(i % 30),
                Value::Float(((i * 7) % 100) as f64 + 0.5),
            ]
        })
        .collect();

    // A throwaway catalog to get the dict for loading.
    let mut loader = DataStore::new();
    let dict_probe = {
        let mut pb = CatalogBuilder::new();
        pb.add_relation(
            RelationSchema::new(
                "customer",
                vec![
                    ("custid", AttrType::Int),
                    ("custname", AttrType::Str),
                    ("office", AttrType::Str),
                ],
            ),
            Partitioning::List {
                attr: 2,
                groups: vec![
                    vec![Value::str("Athens")],
                    vec![Value::str("Corfu")],
                    vec![Value::str("Myconos")],
                ],
            },
        );
        pb.add_relation(
            RelationSchema::new(
                "invoiceline",
                vec![
                    ("invid", AttrType::Int),
                    ("linenum", AttrType::Int),
                    ("custid", AttrType::Int),
                    ("charge", AttrType::Float),
                ],
            ),
            Partitioning::Single,
        );
        for i in 0..3 {
            pb.set_stats(
                PartId::new(RelId(0), i),
                PartitionStats::synthetic(1, &[1, 1, 1]),
            );
            pb.place(PartId::new(RelId(0), i), NodeId(0));
        }
        pb.set_stats(
            PartId::new(RelId(1), 0),
            PartitionStats::synthetic(1, &[1, 1, 1, 1]),
        );
        pb.place(PartId::new(RelId(1), 0), NodeId(0));
        pb.build().dict
    };
    loader.load_relation(&dict_probe, cust, customers);
    loader.load_relation(&dict_probe, inv, invoices);

    // Real stats, placement, and per-node stores.
    let mut stores: BTreeMap<NodeId, DataStore> = BTreeMap::new();
    for i in 0..3u16 {
        let part = PartId::new(cust, i);
        b.set_stats(part, loader.stats_of(&dict_probe, part).unwrap());
        b.place(part, NodeId(i as u32));
        stores
            .entry(NodeId(i as u32))
            .or_default()
            .merge_from(&loader.subset(&[part]));
    }
    let inv_part = PartId::new(inv, 0);
    b.set_stats(inv_part, loader.stats_of(&dict_probe, inv_part).unwrap());
    for node in [NodeId(0), NodeId(2)] {
        b.place(inv_part, node);
        stores
            .entry(node)
            .or_default()
            .merge_from(&loader.subset(&[inv_part]));
    }
    (b.build(), stores)
}

fn engines(cat: &Catalog, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
    cat.nodes
        .iter()
        .map(|&n| (n, SellerEngine::new(cat.holdings_of(n), cfg.clone())))
        .collect()
}

fn union_store(stores: &BTreeMap<NodeId, DataStore>) -> DataStore {
    let mut all = DataStore::new();
    for s in stores.values() {
        all.merge_from(s);
    }
    all
}

#[test]
fn motivating_query_optimizes_and_executes_correctly() {
    let (cat, stores) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    assert!(out.messages > 0);
    assert!(out.optimization_time > 0.0);

    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert!(
        approx_same_rows(&got, &want, 1e-9),
        "got {:?}\nwant {:?}",
        got,
        want
    );
    // Three office groups in the answer.
    assert_eq!(got.len(), 3);
}

#[test]
fn restricted_motivating_query_buys_from_the_right_offices() {
    let (cat, stores) = telecom();
    // The paper's actual manager query: only Corfu and Myconos bills.
    let q = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap()
    .with_partset(RelId(0), qt_query::PartSet::from_indices([1, 2]));
    let cfg = QtConfig::default();
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
    assert_eq!(got.len(), 2, "only Corfu and Myconos groups");
}

#[test]
fn spj_join_plan_is_correct() {
    let (cat, stores) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT custname, charge FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid AND charge > 50.0",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(1), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
}

#[test]
fn order_by_is_respected_end_to_end() {
    let (cat, stores) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT custname FROM customer WHERE office = 'Corfu' ORDER BY custname",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert_eq!(got, want, "ordered results must match exactly");
}

#[test]
fn sim_and_direct_agree_on_plan_and_messages() {
    let (cat, _) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let mut direct_sellers = engines(&cat, &cfg);
    let direct = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut direct_sellers, &cfg);
    let sim_sellers = engines(&cat, &cfg);
    let (sim, metrics) = run_qt_sim(NodeId(0), cat.dict.clone(), &q, sim_sellers, &cfg);

    let dp = direct.plan.expect("direct plan");
    let sp = sim.plan.expect("sim plan");
    assert!((dp.est.additive_cost - sp.est.additive_cost).abs() < 1e-9);
    assert_eq!(dp.purchases.len(), sp.purchases.len());
    assert_eq!(direct.messages, sim.messages, "metrics: {metrics:?}");
    assert_eq!(direct.iterations, sim.iterations);
    assert!(sim.optimization_time > 0.0);
}

#[test]
fn view_offer_wins_when_it_is_cheapest() {
    // One seller (node 1) holds everything and also materializes exactly the
    // requested aggregate; serving the 3-row view must beat recomputing the
    // join. (A view holder *without* statistics for foreign data prices its
    // view conservatively and may lose — see seller::tests.)
    let mut b = CatalogBuilder::new();
    let r = b.add_relation(
        RelationSchema::new("r", vec![("k", AttrType::Int), ("grp", AttrType::Int)]),
        Partitioning::Single,
    );
    let s = b.add_relation(
        RelationSchema::new("s", vec![("k", AttrType::Int), ("x", AttrType::Float)]),
        Partitioning::Single,
    );
    b.set_stats(
        PartId::new(r, 0),
        PartitionStats::synthetic(100_000, &[100_000, 3]),
    );
    b.set_stats(
        PartId::new(s, 0),
        PartitionStats::synthetic(200_000, &[100_000, 1_000]),
    );
    b.place(PartId::new(r, 0), NodeId(1));
    b.place(PartId::new(s, 0), NodeId(1));
    b.add_node(NodeId(0));
    let cat = b.build();
    let q = parse_query(
        &cat.dict,
        "SELECT grp, SUM(x) FROM r, s WHERE r.k = s.k GROUP BY grp",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let mut sellers = engines(&cat, &cfg);
    sellers.get_mut(&NodeId(1)).unwrap().views = vec![MaterializedView::new("exact", q.clone())];
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    assert_eq!(plan.purchases.len(), 1);
    assert_eq!(plan.purchases[0].offer.kind, qt_core::OfferKind::FromView);
    // And the run without the view is strictly more expensive.
    let cfg2 = QtConfig::default();
    let mut no_view = engines(&cat, &cfg2);
    let out2 = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut no_view, &cfg2);
    assert!(
        out2.plan.unwrap().est.additive_cost > plan.est.additive_cost,
        "the view must be the cheaper path"
    );
}

#[test]
fn iterations_improve_when_partials_are_capped() {
    // Four relations in a chain; node 1 holds r+s, node 2 holds t+u. With
    // max_partial_k = 1, round 0 only yields single-relation offers (plus
    // full local rewrites, which cover {r,s} and {t,u}); the analyser then
    // asks for (s ⋈ t) style join sites. The run must converge and stay
    // correct.
    let mut b = CatalogBuilder::new();
    let names = ["r", "s", "t", "u"];
    let mut rels = Vec::new();
    for n in names {
        rels.push(b.add_relation(
            RelationSchema::new(n, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
            Partitioning::Single,
        ));
    }
    let mut loader = DataStore::new();
    let dict_probe = {
        let mut pb = CatalogBuilder::new();
        for n in names {
            pb.add_relation(
                RelationSchema::new(n, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
                Partitioning::Single,
            );
        }
        for (i, _) in names.iter().enumerate() {
            pb.set_stats(
                PartId::new(RelId(i as u32), 0),
                PartitionStats::synthetic(1, &[1, 1]),
            );
            pb.place(PartId::new(RelId(i as u32), 0), NodeId(0));
        }
        pb.build().dict
    };
    let mut stores: BTreeMap<NodeId, DataStore> = BTreeMap::new();
    for (i, &rel) in rels.iter().enumerate() {
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|j| vec![Value::Int(j % 10), Value::Int(j + i as i64 * 100)])
            .collect();
        loader.load_relation(&dict_probe, rel, rows);
        let part = PartId::new(rel, 0);
        b.set_stats(part, loader.stats_of(&dict_probe, part).unwrap());
        let node = NodeId(1 + (i as u32) / 2); // node1: r,s; node2: t,u
        b.place(part, node);
        stores
            .entry(node)
            .or_default()
            .merge_from(&loader.subset(&[part]));
    }
    b.add_node(NodeId(0)); // data-less buyer
    let cat = b.build();
    let q = parse_query(
        &cat.dict,
        "SELECT r.v, u.v FROM r, s, t, u \
         WHERE r.k = s.k AND s.k = t.k AND t.k = u.k",
    )
    .unwrap();
    let cfg = QtConfig {
        max_partial_k: 1,
        ..QtConfig::default()
    };
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
    // Costs never get worse across iterations.
    for w in out.history.windows(2) {
        assert!(w[1].best_cost <= w[0].best_cost + 1e-9);
    }
}

#[test]
fn failure_when_no_coverage_exists() {
    // Nobody holds relation `s`... simulate by a catalog whose placement
    // exists but whose holder is excluded from the seller set.
    let (cat, _) = telecom();
    let q = parse_query(&cat.dict, "SELECT charge FROM invoiceline").unwrap();
    let cfg = QtConfig::default();
    let mut sellers: BTreeMap<NodeId, SellerEngine> = engines(&cat, &cfg)
        .into_iter()
        .filter(|(n, _)| *n == NodeId(1)) // Corfu has no invoiceline
        .collect();
    let out = run_qt_direct(NodeId(1), cat.dict.clone(), &q, &mut sellers, &cfg);
    assert!(out.plan.is_none());
    assert_eq!(out.iterations, 1, "aborts after the first round");
}

#[test]
fn protocol_choice_changes_message_counts_not_correctness() {
    use qt_trade::ProtocolKind;
    let (cat, stores) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap();
    let mut msgs = BTreeMap::new();
    for proto in [
        ProtocolKind::SealedBid,
        ProtocolKind::Vickrey,
        ProtocolKind::English { decrement: 0.1 },
        ProtocolKind::Bargaining { max_rounds: 4 },
    ] {
        let cfg = QtConfig {
            protocol: proto,
            ..QtConfig::default()
        };
        let mut sellers = engines(&cat, &cfg);
        let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
        let plan = out.plan.expect("plan found");
        let got = plan.execute_on(&cat.dict, &stores).unwrap();
        let want = evaluate_query(&q, &union_store(&stores)).unwrap();
        assert!(approx_same_rows(&got, &want, 1e-9), "{}", proto.label());
        msgs.insert(proto.label(), out.messages);
    }
    // The surviving fragment of §4 argues bargaining adds messages over
    // plain bidding; auctions add even more.
    assert!(msgs["bargaining"] >= msgs["sealed-bid"]);
    assert!(msgs["english"] >= msgs["sealed-bid"]);
}

#[test]
fn competitive_markup_raises_buyer_cost() {
    let (cat, _) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap();
    let honest_cfg = QtConfig::default();
    let mut honest = engines(&cat, &honest_cfg);
    let honest_out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut honest, &honest_cfg);

    let greedy_cfg = QtConfig {
        seller_strategy: qt_trade::SellerStrategy::fixed_markup(1.5),
        ..QtConfig::default()
    };
    let mut greedy = engines(&cat, &greedy_cfg);
    let greedy_out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut greedy, &greedy_cfg);

    let h = honest_out.plan.unwrap().est.additive_cost;
    let g = greedy_out.plan.unwrap().est.additive_cost;
    assert!(g > h, "markup must cost the buyer: honest {h}, greedy {g}");
}

#[test]
fn subcontracting_produces_composite_offers_and_stays_correct() {
    // r on node 1, s on node 2, t on node 3; buyer is node 0. In round 1 the
    // analyser asks for the (s ⋈ t) join site; node 2 holds only s, so with
    // subcontracting enabled it buys the t fragment (per the round-0 hint
    // from node 3) and offers the composite join.
    let mut b = CatalogBuilder::new();
    let names = ["r", "s", "t"];
    let mut rels = Vec::new();
    for n in names {
        rels.push(b.add_relation(
            RelationSchema::new(n, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
            Partitioning::Single,
        ));
    }
    let dict_probe = {
        let mut pb = CatalogBuilder::new();
        for n in names {
            pb.add_relation(
                RelationSchema::new(n, vec![("k", AttrType::Int), ("v", AttrType::Int)]),
                Partitioning::Single,
            );
        }
        for i in 0..3u32 {
            pb.set_stats(
                PartId::new(RelId(i), 0),
                PartitionStats::synthetic(1, &[1, 1]),
            );
            pb.place(PartId::new(RelId(i), 0), NodeId(0));
        }
        pb.build().dict
    };
    let mut loader = DataStore::new();
    let mut stores: BTreeMap<NodeId, DataStore> = BTreeMap::new();
    for (i, &rel) in rels.iter().enumerate() {
        let rows: Vec<Vec<Value>> = (0..15)
            .map(|j| vec![Value::Int(j % 5), Value::Int(j + i as i64 * 1000)])
            .collect();
        loader.load_relation(&dict_probe, rel, rows);
        let part = PartId::new(rel, 0);
        b.set_stats(part, loader.stats_of(&dict_probe, part).unwrap());
        b.place(part, NodeId(1 + i as u32));
        stores
            .entry(NodeId(1 + i as u32))
            .or_default()
            .merge_from(&loader.subset(&[part]));
    }
    b.add_node(NodeId(0));
    let cat = b.build();
    let q = parse_query(
        &cat.dict,
        "SELECT r.v, t.v FROM r, s, t WHERE r.k = s.k AND s.k = t.k",
    )
    .unwrap();
    let cfg = QtConfig {
        enable_subcontracting: true,
        ..QtConfig::default()
    };
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    assert!(
        out.iterations >= 2,
        "subcontracting needs hints from round 0"
    );
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
    // At least one composite offer was made somewhere along the way (check
    // by re-running the seller directly with hints).
    let mut node2 = SellerEngine::new(cat.holdings_of(NodeId(2)), cfg.clone());
    let site = q
        .strip_aggregation()
        .restrict_to_rels(&[RelId(1), RelId(2)].into_iter().collect());
    let t_frag = q
        .strip_aggregation()
        .restrict_to_rels(&[RelId(2)].into_iter().collect());
    let mut node3 = SellerEngine::new(cat.holdings_of(NodeId(3)), cfg.clone());
    let hint = node3
        .respond(
            0,
            &[qt_core::RfbItem {
                query: t_frag,
                ref_value: f64::INFINITY,
            }],
        )
        .offers
        .into_iter()
        .next()
        .expect("node 3 offers its fragment");
    let resp = node2.respond_with_hints(
        1,
        &[qt_core::RfbItem {
            query: site,
            ref_value: f64::INFINITY,
        }],
        &[hint],
    );
    assert!(
        resp.offers.iter().any(|o| !o.subcontracts.is_empty()),
        "node 2 must compose a subcontracted offer"
    );
}

#[test]
fn sorted_delivery_offer_skips_buyer_sort() {
    // One seller holds everything; an ORDER BY query should be answered by
    // a single sorted whole-answer purchase, and the delivered order must be
    // exactly the reference order.
    let mut b = CatalogBuilder::new();
    let r = b.add_relation(
        RelationSchema::new("r", vec![("k", AttrType::Int), ("v", AttrType::Int)]),
        Partitioning::Single,
    );
    let dict_probe = {
        let mut pb = CatalogBuilder::new();
        pb.add_relation(
            RelationSchema::new("r", vec![("k", AttrType::Int), ("v", AttrType::Int)]),
            Partitioning::Single,
        );
        pb.set_stats(
            PartId::new(RelId(0), 0),
            PartitionStats::synthetic(1, &[1, 1]),
        );
        pb.place(PartId::new(RelId(0), 0), NodeId(0));
        pb.build().dict
    };
    let mut loader = DataStore::new();
    loader.load_relation(
        &dict_probe,
        r,
        (0..25)
            .map(|j| vec![Value::Int((j * 7) % 25), Value::Int(j)])
            .collect(),
    );
    let part = PartId::new(r, 0);
    b.set_stats(part, loader.stats_of(&dict_probe, part).unwrap());
    b.place(part, NodeId(1));
    b.add_node(NodeId(0));
    let cat = b.build();
    let mut stores = BTreeMap::new();
    stores.insert(NodeId(1), loader);

    let q = parse_query(&cat.dict, "SELECT k, v FROM r WHERE v < 20 ORDER BY k").unwrap();
    let cfg = QtConfig::default();
    let mut sellers = engines(&cat, &cfg);
    let out = run_qt_direct(NodeId(0), cat.dict.clone(), &q, &mut sellers, &cfg);
    let plan = out.plan.expect("plan found");
    // The whole sorted answer is one purchase of the query itself.
    assert_eq!(plan.purchases.len(), 1);
    assert_eq!(
        plan.purchases[0].offer.query, q,
        "sorted exact-answer offer wins"
    );
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert_eq!(
        got, want,
        "exact order must match, not just the row multiset"
    );
    let keys: Vec<i64> = got.iter().map(|row| row[0].as_int().unwrap()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn offline_sellers_are_survived_by_timeout() {
    // customer partition 1 (Corfu) is held only by node 1, which is offline
    // in round 0, BUT invoiceline is replicated so the query restricted to
    // Myconos customers still completes; the full-extent query must fail.
    let (cat, stores) = telecom();
    let q_myconos = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap()
    .with_partset(RelId(0), qt_query::PartSet::from_indices([2]));

    let cfg = QtConfig {
        seller_timeout: 2.0,
        ..QtConfig::default()
    };
    let mut sellers = engines(&cat, &cfg);
    for engine in sellers.values_mut() {
        if engine.node == NodeId(1) {
            engine.offline_rounds = (0..16).collect();
        }
    }
    let (out, metrics) =
        qt_core::run_qt_sim(NodeId(0), cat.dict.clone(), &q_myconos, sellers, &cfg);
    assert!(metrics.kind_count("timeout") >= 1, "{metrics:?}");
    let plan = out.plan.expect("Myconos data unaffected by Corfu's outage");
    let got = plan.execute_on(&cat.dict, &stores).unwrap();
    let want = evaluate_query(&q_myconos, &union_store(&stores)).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
    // The timeout is on the critical path of the optimization time.
    assert!(out.optimization_time >= 2.0, "{}", out.optimization_time);
}

#[test]
fn sole_holder_offline_means_no_plan() {
    let (cat, _) = telecom();
    // Corfu customers are only on node 1; with node 1 offline the full query
    // cannot be covered and trading must abort planless (paper's B8).
    let q = parse_query(
        &cat.dict,
        "SELECT custname FROM customer WHERE office = 'Corfu'",
    )
    .unwrap();
    let cfg = QtConfig {
        seller_timeout: 1.0,
        ..QtConfig::default()
    };
    let mut sellers = engines(&cat, &cfg);
    sellers.get_mut(&NodeId(1)).unwrap().offline_rounds = (0..16).collect();
    let (out, _) = qt_core::run_qt_sim(NodeId(0), cat.dict.clone(), &q, sellers, &cfg);
    assert!(out.plan.is_none());
}

#[test]
fn straggler_offers_still_enrich_later_rounds() {
    // A seller offline in round 0 but back for round 1 participates again
    // (round numbers in Offers messages keep the accounting straight).
    let (cat, stores) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT custname, charge FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid AND charge > 150.0",
    )
    .unwrap();
    let cfg = QtConfig {
        seller_timeout: 2.0,
        ..QtConfig::default()
    };
    let mut sellers = engines(&cat, &cfg);
    sellers.get_mut(&NodeId(1)).unwrap().offline_rounds = [0u32].into_iter().collect();
    let (out, _) = qt_core::run_qt_sim(NodeId(0), cat.dict.clone(), &q, sellers, &cfg);
    if let Some(plan) = out.plan {
        let got = plan.execute_on(&cat.dict, &stores).unwrap();
        let want = evaluate_query(&q, &union_store(&stores)).unwrap();
        assert!(approx_same_rows(&got, &want, 1e-9));
    }
}

#[test]
fn replanning_from_the_offer_pool_survives_seller_failure() {
    use qt_core::buyer::RoundOutcome;
    use qt_core::BuyerEngine;
    use std::collections::BTreeSet;

    // invoiceline is replicated on nodes 0 and 2; customer partitions are
    // unique per office. After trading, pretend node 2 (Myconos) died: the
    // buyer re-plans from its accumulated offers without re-trading, and the
    // new plan avoids node 2 wherever a replica exists.
    let (cat, stores) = telecom();
    // Restrict the requested extent to the Athens partition so customer
    // coverage needs only node 0; invoiceline has replicas on nodes 0 and 2.
    let q = parse_query(
        &cat.dict,
        "SELECT office, SUM(charge) FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid GROUP BY office",
    )
    .unwrap()
    .with_partset(RelId(0), qt_query::PartSet::single(0));
    let cfg = QtConfig::default();
    let mut buyer = BuyerEngine::new(NodeId(0), cat.dict.clone(), q.clone(), cfg.clone());
    let mut sellers = engines(&cat, &cfg);
    let mut items = buyer.start();
    loop {
        for engine in sellers.values_mut() {
            buyer.receive_offers(engine.respond(buyer.round, &items).offers);
        }
        match buyer.close_round() {
            RoundOutcome::Continue(next) => items = next,
            RoundOutcome::Done => break,
        }
    }
    let original = buyer.best.clone().expect("plan");

    // Fail Myconos.
    let failed: BTreeSet<NodeId> = [NodeId(2)].into_iter().collect();
    let recovered = buyer
        .replan_excluding(&failed)
        .expect("replica coverage survives");
    assert!(recovered
        .purchases
        .iter()
        .all(|p| p.offer.seller != NodeId(2)));

    // Execute against stores WITHOUT node 2 — the recovered plan works.
    let mut surviving_stores = stores.clone();
    surviving_stores.remove(&NodeId(2));
    let got = recovered.execute_on(&cat.dict, &surviving_stores).unwrap();
    let want = evaluate_query(&q, &union_store(&stores)).unwrap();
    assert!(approx_same_rows(&got, &want, 1e-9));
    let _ = original;

    // Failing the sole holder of the Athens partition is unrecoverable.
    let sole: BTreeSet<NodeId> = [NodeId(0)].into_iter().collect();
    assert!(buyer.replan_excluding(&sole).is_none());
}

#[test]
fn two_tier_topology_speeds_up_local_markets() {
    use qt_core::run_qt_sim_with_topology;
    use qt_net::Topology;
    let (cat, _) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT custname, charge FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let wan = {
        let sellers = engines(&cat, &cfg);
        run_qt_sim_with_topology(
            NodeId(0),
            cat.dict.clone(),
            &q,
            sellers,
            &cfg,
            Topology::Uniform(cfg.link),
        )
        .0
    };
    let lan = {
        let sellers = engines(&cat, &cfg);
        run_qt_sim_with_topology(
            NodeId(0),
            cat.dict.clone(),
            &q,
            sellers,
            &cfg,
            // Everyone in one 64-node region.
            Topology::two_tier(64, qt_cost::NetLink::lan(), cfg.link).unwrap(),
        )
        .0
    };
    assert!(lan.optimization_time < wan.optimization_time);
    assert_eq!(
        lan.messages, wan.messages,
        "topology changes time, not traffic"
    );
    let (a, b) = (lan.plan.unwrap(), wan.plan.unwrap());
    assert!((a.est.additive_cost - b.est.additive_cost).abs() < 1e-9);
}

#[test]
fn buyer_hints_surface_cheapest_full_fragments() {
    use qt_core::buyer::RoundOutcome;
    use qt_core::BuyerEngine;
    let (cat, _) = telecom();
    let q = parse_query(
        &cat.dict,
        "SELECT custname, charge FROM customer, invoiceline \
         WHERE customer.custid = invoiceline.custid",
    )
    .unwrap();
    let cfg = QtConfig::default();
    let mut buyer = BuyerEngine::new(NodeId(9), cat.dict.clone(), q.clone(), cfg.clone());
    let mut sellers = engines(&cat, &cfg);
    let items = buyer.start();
    for engine in sellers.values_mut() {
        buyer.receive_offers(engine.respond(0, &items).offers);
    }
    let _ = buyer.close_round();
    let hints = buyer.hints();
    // invoiceline is fully coverable by one fragment → it must be hinted;
    // customer is partitioned across sellers so no single full-extent
    // fragment exists for it.
    assert_eq!(hints.len(), 1, "{hints:#?}");
    assert!(hints[0].query.relations.contains_key(&RelId(1)));
    assert!(matches!(
        buyer.close_round(),
        RoundOutcome::Done | RoundOutcome::Continue(_)
    ));
}
