//! Compensation plans for semantic result-cache hits.
//!
//! The serving layer caches finished [`DistributedPlan`]s. When a new query
//! `Q` is subsumed by a cached plan's query `Q'` (per
//! [`qt_query::views::match_view`], the same §3.5 matcher sellers use for
//! materialized views), the cached purchases can be reused verbatim and only
//! the buyer-local assembly needs *compensation*: residual selection,
//! re-aggregation of finer groups, re-sorting, and a final projection. The
//! compensated assembly is lowered through
//! [`qt_optimizer::sink_predicates`] so residual filters sit as close to the
//! delivered rows as semantics allow.

use crate::dist_plan::DistributedPlan;
use qt_exec::{AggSpec, PhysPlan};
use qt_optimizer::sink_predicates;
use qt_query::views::ViewMatch;
use qt_query::{Col, Query, SelectItem};
use std::collections::BTreeSet;

/// Wrap `assembly` (which computes `cached`'s answer) so it computes
/// `query`'s answer instead, given a successful view match `m =
/// match_view(cached, query)`.
///
/// Returns `None` when the match cannot be compensated structurally (a
/// defensive check — `match_view`'s guarantees make every `Some` match
/// compensable, so `None` here indicates a matcher/plan disagreement and
/// callers must fall back to a cold run).
pub fn compensate_assembly(
    cached: &Query,
    query: &Query,
    m: &ViewMatch,
    assembly: PhysPlan,
) -> Option<PhysPlan> {
    if m.exact {
        // Same output list and row order: the cached rows are the answer.
        return Some(assembly);
    }
    let schema = assembly.schema();
    if schema.len() != cached.select.len() {
        return None;
    }
    // Position of a cached output item; plain columns appear in the
    // delivered schema under their own identity, aggregates under the
    // assembly's positional marker (see `answer_schema`).
    let pos_of = |item: &SelectItem| cached.select.iter().position(|s| s == item);

    let mut plan = assembly;
    if !m.residual_predicates.is_empty() {
        let have: BTreeSet<Col> = schema.iter().copied().collect();
        if m.residual_predicates
            .iter()
            .any(|p| p.cols().iter().any(|c| !have.contains(c)))
        {
            return None;
        }
        plan = PhysPlan::Filter {
            input: Box::new(plan),
            predicates: m.residual_predicates.clone(),
        };
    }

    if query.is_aggregate() {
        if cached.is_aggregate() {
            if m.needs_reaggregation {
                // Combine the cached (finer) groups into the query's coarser
                // ones: every query aggregate is decomposable (the matcher
                // checked), so re-aggregate its delivered column with the
                // function's combining form.
                let mut aggs = Vec::new();
                for item in &query.select {
                    if let SelectItem::Agg { func, .. } = item {
                        let p = pos_of(item)?;
                        aggs.push(AggSpec {
                            func: func.reaggregate_with(),
                            arg: Some(schema[p]),
                        });
                    }
                }
                plan = PhysPlan::HashAggregate {
                    input: Box::new(plan),
                    group_by: query.group_by.clone(),
                    aggs,
                };
                plan = project_interleaved(plan, query);
            } else {
                // Identical groups, different output list: pick the cached
                // columns positionally.
                let mut cols = Vec::with_capacity(query.select.len());
                for item in &query.select {
                    match item {
                        SelectItem::Col(c) => cols.push(*c),
                        SelectItem::Agg { .. } => cols.push(schema[pos_of(item)?]),
                    }
                }
                plan = PhysPlan::Project {
                    input: Box::new(plan),
                    cols,
                };
            }
        } else {
            // Aggregate over delivered SPJ rows (matcher case 2).
            let aggs: Vec<AggSpec> = query
                .select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Agg { func, arg } => Some(AggSpec {
                        func: *func,
                        arg: *arg,
                    }),
                    SelectItem::Col(_) => None,
                })
                .collect();
            plan = PhysPlan::HashAggregate {
                input: Box::new(plan),
                group_by: query.group_by.clone(),
                aggs,
            };
            plan = project_interleaved(plan, query);
        }
    } else {
        if !query.order_by.is_empty() {
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys: query.order_by.clone(),
            };
        }
        let cols: Vec<Col> = query
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => Some(*c),
                SelectItem::Agg { .. } => None,
            })
            .collect::<Option<_>>()?;
        plan = PhysPlan::Project {
            input: Box::new(plan),
            cols,
        };
    }
    Some(sink_predicates(&plan))
}

/// The standard aggregate output projection: group keys under their own
/// identity, aggregate outputs addressed by the aggregate's positional
/// marker column (same shape as the plan generator's final projection).
fn project_interleaved(agged: PhysPlan, q: &Query) -> PhysPlan {
    let agg_schema = agged.schema();
    let mut agg_idx = q.group_by.len();
    let cols: Vec<Col> = q
        .select
        .iter()
        .map(|s| match s {
            SelectItem::Col(c) => *c,
            SelectItem::Agg { .. } => {
                let c = agg_schema[agg_idx];
                agg_idx += 1;
                c
            }
        })
        .collect();
    PhysPlan::Project {
        input: Box::new(agged),
        cols,
    }
}

/// Derive a [`DistributedPlan`] for `query` from a cached plan for a
/// subsuming query: same purchases (the rows were already traded for), a
/// compensated assembly, and the cached estimate (the trade it describes is
/// the one being reused).
pub fn compensate_plan(
    cached: &DistributedPlan,
    query: &Query,
    m: &ViewMatch,
) -> Option<DistributedPlan> {
    let assembly = compensate_assembly(&cached.query, query, m, cached.assembly.clone())?;
    Some(DistributedPlan {
        query: query.clone(),
        purchases: cached.purchases.clone(),
        assembly,
        est: cached.est,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QtConfig;
    use crate::driver::run_qt_direct;
    use crate::seller::SellerEngine;
    use qt_catalog::NodeId;
    use qt_exec::reference::approx_same_rows;
    use qt_exec::{evaluate_query, DataStore};
    use qt_query::parse_query;
    use qt_query::views::match_view;
    use qt_workload::{telecom_federation, TelecomSpec};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    struct Bed {
        cat: qt_catalog::Catalog,
        stores: BTreeMap<NodeId, DataStore>,
        union: DataStore,
    }

    fn bed() -> Bed {
        let (cat, stores) = telecom_federation(&TelecomSpec::default());
        let mut union = DataStore::new();
        for s in stores.values() {
            union.merge_from(s);
        }
        Bed { cat, stores, union }
    }

    fn optimize(bed: &Bed, sql: &str) -> (qt_query::Query, DistributedPlan) {
        let q = parse_query(&bed.cat.dict, sql).unwrap();
        let mut sellers: BTreeMap<NodeId, SellerEngine> = bed
            .stores
            .keys()
            .map(|&n| {
                (
                    n,
                    SellerEngine::new(bed.cat.holdings_of(n), QtConfig::default()),
                )
            })
            .collect();
        let out = run_qt_direct(
            NodeId(0),
            Arc::clone(&bed.cat.dict),
            &q,
            &mut sellers,
            &QtConfig::default(),
        );
        (q, out.plan.expect("trading converged"))
    }

    /// Compensate `cached_plan` for `sql`, execute both the compensated plan
    /// and the reference evaluator, and demand identical row sets.
    fn check(bed: &Bed, cached_sql: &str, sql: &str) -> DistributedPlan {
        let (_, cached) = optimize(bed, cached_sql);
        let q = parse_query(&bed.cat.dict, sql).unwrap();
        let m = match_view(&cached.query, &q).expect("subsumed");
        let plan = compensate_plan(&cached, &q, &m).expect("compensable");
        let got = plan.execute_on(&bed.cat.dict, &bed.stores).unwrap();
        let want = evaluate_query(&q, &bed.union).unwrap();
        // Relative tolerance: re-aggregation sums partials in a different
        // order than the reference evaluator (float addition drift).
        assert!(
            approx_same_rows(&got, &want, 1e-9),
            "{sql} from {cached_sql}"
        );
        plan
    }

    const WIDE: &str = "SELECT custname, office, charge FROM customer, invoiceline \
                        WHERE customer.custid = invoiceline.custid";

    #[test]
    fn residual_filter_and_projection() {
        let b = bed();
        check(
            &b,
            WIDE,
            "SELECT custname, charge FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid AND charge > 100",
        );
    }

    #[test]
    fn aggregate_from_cached_spj_rows() {
        let b = bed();
        check(
            &b,
            WIDE,
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        );
    }

    #[test]
    fn order_by_is_reestablished() {
        let b = bed();
        let plan = check(
            &b,
            WIDE,
            "SELECT custname FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid ORDER BY custname",
        );
        // Order-sensitive: the compensated rows must equal the reference
        // rows *in order*, not just as a multiset.
        let got = plan.execute_on(&b.cat.dict, &b.stores).unwrap();
        let want = evaluate_query(&plan.query, &b.union).unwrap();
        assert_eq!(got, want, "ORDER BY must survive compensation verbatim");
    }

    #[test]
    fn reaggregates_finer_groups() {
        let b = bed();
        check(
            &b,
            "SELECT office, custname, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office, custname",
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        );
    }

    #[test]
    fn same_groups_narrower_select_projects_without_reagg() {
        let b = bed();
        let plan = check(
            &b,
            "SELECT office, SUM(charge), COUNT(*) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        );
        // No re-aggregation: compensation is a pure projection, so the plan
        // gains no HashAggregate beyond the cached assembly's own.
        let mut aggs = 0;
        fn count(p: &PhysPlan, aggs: &mut usize) {
            if let PhysPlan::HashAggregate { .. } = p {
                *aggs += 1;
            }
            match p {
                PhysPlan::Filter { input, .. }
                | PhysPlan::Project { input, .. }
                | PhysPlan::Sort { input, .. }
                | PhysPlan::HashAggregate { input, .. } => count(input, aggs),
                PhysPlan::HashJoin { left, right, .. }
                | PhysPlan::MergeJoin { left, right, .. }
                | PhysPlan::NlJoin { left, right, .. } => {
                    count(left, aggs);
                    count(right, aggs);
                }
                PhysPlan::Union { inputs } => inputs.iter().for_each(|i| count(i, aggs)),
                PhysPlan::Scan { .. } | PhysPlan::Input { .. } => {}
            }
        }
        count(&plan.assembly, &mut aggs);
        assert!(aggs <= 1, "same-group hit must not re-aggregate");
    }

    #[test]
    fn exact_match_reuses_assembly_verbatim() {
        let b = bed();
        let (q, cached) = optimize(&b, WIDE);
        let m = match_view(&cached.query, &q).unwrap();
        assert!(m.exact);
        let plan = compensate_plan(&cached, &q, &m).unwrap();
        assert_eq!(plan.assembly, cached.assembly);
    }
}
