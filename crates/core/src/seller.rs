//! The seller side: partial query constructor & cost estimator (S2.1–S2.2)
//! and the seller predicates analyser (S2.3).

use crate::config::QtConfig;
use crate::offer::{Offer, OfferKind, RfbItem};
use qt_catalog::{NodeHoldings, NodeId, RelId};
use qt_cost::{AnswerProperties, CardinalityEstimator, NodeResources};
use qt_optimizer::LocalOptimizer;
use qt_query::views::{match_view, ViewMatch};
use qt_query::{rewrite_for_holdings, MaterializedView, Query};
use qt_trade::semcache::{CacheStats, Probe, ProbeOutcome, SemCache};
use qt_trade::SessionId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A seller's reply to one RFB.
#[derive(Debug, Clone, Default)]
pub struct SellerResponse {
    /// The offers made.
    pub offers: Vec<Offer>,
    /// Optimization effort spent producing them (sub-plans enumerated).
    pub effort: u64,
}

/// One session's slice of a batched RFB: the serving layer coalesces every
/// session's current-round request to the same seller into one message, and
/// each entry is what a stand-alone [`QtMsg::Rfb`](crate::driver::QtMsg)
/// would have carried.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRfb {
    /// The negotiation this entry belongs to.
    pub session: SessionId,
    /// Request id, unique per (session, round); retransmissions reuse it.
    pub req: u64,
    /// The session's trading round.
    pub round: u32,
    /// The queries out for bid.
    pub items: Arc<Vec<RfbItem>>,
    /// Market hints for subcontracting sellers (session-isolated: only this
    /// session's own offer pool feeds them).
    pub hints: Arc<Vec<Offer>>,
}

/// One autonomous selling node's trading engine.
///
/// Owns the node's private state: holdings (data + statistics), resources,
/// materialized views, and strategy. Produces offers for RFBs; learns from
/// award outcomes.
///
/// Replies are memoized per requested query ([`Query::fingerprint`] plus a
/// hints digest when subcontracting is on): a persistent seller that is asked
/// the same query again — the common case for recurring workloads — answers
/// from the cache without re-running its local DP. Cached offers embed the
/// strategy's asks, so anything that changes what a fresh computation would
/// produce (resources, views, a strategy update after an award) invalidates
/// the cache; direct mutation of the public fields must be followed by
/// [`invalidate_offer_cache`](Self::invalidate_offer_cache).
pub struct SellerEngine {
    /// This node's id.
    pub node: NodeId,
    /// Private holdings and statistics.
    pub holdings: NodeHoldings,
    /// Private resources.
    pub resources: NodeResources,
    /// Materialized views this node keeps.
    pub views: Vec<MaterializedView>,
    /// This node's strategy (may differ from the federation default).
    pub strategy: qt_trade::SellerStrategy,
    /// Cumulative optimization effort across all RFBs (read by the drivers).
    pub total_effort: u64,
    /// Rounds in which this node is offline/unresponsive (failure injection
    /// for the availability experiments; simulator driver only).
    pub offline_rounds: std::collections::BTreeSet<u32>,
    /// RFB items answered from the offer cache (cumulative).
    pub cache_hits: u64,
    /// RFB items that required a fresh evaluation (cumulative).
    pub cache_misses: u64,
    /// RFBs answered from the request-id dedup table (retransmissions and
    /// duplicated deliveries; cumulative).
    pub duplicate_rfbs: u64,
    /// Contracts currently held (awarded and not yet released). Serve-path
    /// ids embed the session (`(session + 1) << 32 | n`), so
    /// [`forget_session`](Self::forget_session) can release one session's
    /// leases without touching the others'.
    contracts: std::collections::BTreeSet<u64>,
    config: QtConfig,
    next_offer: u64,
    /// Per-session offer-id counters for the multiplexed serving path: a
    /// session's ids depend only on that session's own request sequence, so
    /// a query traded concurrently with others receives bit-identical offer
    /// ids to the same query traded alone.
    session_offers: std::collections::HashMap<SessionId, u64>,
    /// Memoized RFB replies, keyed by [`cache_key`](Self::cache_key). With
    /// `config.enable_semantic_cache`, an exact-key miss falls back to the
    /// §3.5 view matcher over the cached queries and *derives* offers for
    /// the subsumed request from a cached reply (see
    /// [`derive_offers`](Self::derive_offers)).
    offer_cache: SemCache<Vec<Offer>>,
    /// Request-id → the exact reply already sent. Distinct from the offer
    /// cache: a dedup hit resends *identical* offers (same ids) so the buyer
    /// can discard the duplicate, whereas an offer-cache hit mints fresh ids.
    rfb_replies: std::collections::HashMap<u64, Vec<Offer>>,
}

impl SellerEngine {
    /// Build a seller from its private holdings.
    pub fn new(holdings: NodeHoldings, config: QtConfig) -> Self {
        let offer_cache = SemCache::new(config.offer_cache_entries);
        SellerEngine {
            node: holdings.node,
            resources: NodeResources::reference(),
            views: Vec::new(),
            strategy: config.seller_strategy.clone(),
            holdings,
            total_effort: 0,
            offline_rounds: std::collections::BTreeSet::new(),
            cache_hits: 0,
            cache_misses: 0,
            duplicate_rfbs: 0,
            contracts: std::collections::BTreeSet::new(),
            config,
            next_offer: 0,
            session_offers: std::collections::HashMap::new(),
            offer_cache,
            rfb_replies: std::collections::HashMap::new(),
        }
    }

    /// The run configuration this seller was built with.
    pub fn config(&self) -> &QtConfig {
        &self.config
    }

    /// Builder-style resources override.
    pub fn with_resources(mut self, r: NodeResources) -> Self {
        self.resources = r;
        self.invalidate_offer_cache();
        self
    }

    /// Builder-style views. Invalidation is *selective*: only cached replies
    /// whose relation sets intersect the old or new view definitions are
    /// dropped — replies over unrelated relations stay warm.
    pub fn with_views(mut self, views: Vec<MaterializedView>) -> Self {
        let mut rels: BTreeSet<RelId> = self.views.iter().flat_map(|v| v.query.rel_ids()).collect();
        rels.extend(views.iter().flat_map(|v| v.query.rel_ids()));
        self.views = views;
        self.invalidate_offer_cache_rels(&rels);
        self
    }

    /// Drop all memoized replies. Called automatically when resources or
    /// (via an unscoped award observation) the strategy change; call it
    /// manually after mutating the public state fields directly.
    pub fn invalidate_offer_cache(&mut self) {
        self.offer_cache.clear();
    }

    /// Drop only the memoized replies whose relation set intersects `rels` —
    /// the selective hook for relation-scoped mutations (view changes,
    /// partition-stats drift, awards resolved to specific queries). Returns
    /// how many entries were dropped.
    pub fn invalidate_offer_cache_rels(&mut self, rels: &BTreeSet<RelId>) -> usize {
        self.offer_cache.invalidate_rels(rels)
    }

    /// Hit/miss/evict/invalidate counters of the offer cache.
    pub fn cache_stats(&self) -> &CacheStats {
        self.offer_cache.stats()
    }

    fn optimizer(&self) -> LocalOptimizer<'_, NodeHoldings> {
        let mut o = LocalOptimizer::new(&self.holdings)
            .with_enumerator(self.config.enumerator)
            .with_resources(self.resources.clone());
        o.params = self.config.cost_params.clone();
        o
    }

    fn fresh_id(&mut self) -> u64 {
        let id = ((self.node.0 as u64) << 32) | self.next_offer;
        self.next_offer += 1;
        id
    }

    /// Offer id drawn from `session`'s own counter. Ids from different
    /// sessions at the same seller may collide numerically — offers only
    /// ever meet inside one session's buyer engine, where the per-session
    /// sequence keeps them unique — and that is the point: the id stream a
    /// session observes is independent of what other sessions trade.
    fn fresh_session_id(&mut self, session: SessionId) -> u64 {
        let ctr = self.session_offers.entry(session).or_insert(0);
        let id = ((self.node.0 as u64) << 32) | *ctr;
        *ctr += 1;
        id
    }

    /// Delivery properties for a result of `rows × width` bytes costing
    /// `local_cost` node-seconds to produce.
    fn delivery_props(&self, local_cost: f64, rows: f64, width: f64) -> AnswerProperties {
        let bytes = rows * width;
        let transfer = self.config.link.transfer_time(bytes);
        let mut p = AnswerProperties::timed(local_cost + transfer, rows, bytes);
        p.first_row_time = local_cost * 0.5 + self.config.link.first_byte_time();
        p
    }

    /// Offers carry placeholder ids (0) until the merge step of
    /// [`respond_with_hints`](Self::respond_with_hints) stamps them — item
    /// evaluation runs on `&self` so items can be evaluated concurrently.
    fn make_offer(
        &self,
        round: u32,
        query: Query,
        true_props: AnswerProperties,
        kind: OfferKind,
    ) -> Offer {
        let ask = self.strategy.ask_for(&true_props);
        Offer {
            id: 0,
            seller: self.node,
            query,
            true_cost: self.config.valuation.score(&true_props),
            props: ask,
            kind,
            round,
            subcontracts: vec![],
        }
    }

    /// The memoization key for one RFB item: the query fingerprint, mixed
    /// with a digest of the hint book when subcontracting is on (composite
    /// offers are assembled *from* the hints, so a reply is only reusable
    /// while the hints match).
    ///
    /// The hint digest is order-canonical: each hint is FNV-digested on its
    /// own and the per-hint digests combine with a commutative fold, so the
    /// same hint *set* arriving in a different order — offers travel through
    /// order-scrambling transports — maps to the same key instead of a
    /// spurious miss.
    fn cache_key(&self, q: &Query, hints: &[Offer]) -> u64 {
        let mut key = q.fingerprint();
        if self.config.enable_subcontracting && !hints.is_empty() {
            let mut combined = 0u64;
            for h in hints {
                let mut digest = 0xcbf2_9ce4_8422_2325u64;
                let mut mix = |v: u64| {
                    digest ^= v;
                    digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
                };
                mix(h.seller.0 as u64);
                mix(h.query.fingerprint());
                mix(h.props.total_time.to_bits());
                mix(h.props.price.to_bits());
                combined = combined.wrapping_add(digest);
            }
            key ^= combined;
        }
        key
    }

    /// Respond to an RFB: rewrite each requested query for local holdings,
    /// run the modified DP for partial offers, add partial-aggregate and
    /// materialized-view offers.
    pub fn respond(&mut self, round: u32, items: &[RfbItem]) -> SellerResponse {
        self.respond_with_hints(round, items, &[])
    }

    /// Like [`respond`](Self::respond), but with *market hints* — fragment
    /// offers the buyer has already seen, which subcontracting sellers may
    /// buy from third nodes to assemble composite offers (§3.5).
    ///
    /// Items are evaluated concurrently when `config.parallel` is set (the
    /// evaluation phase is read-only), then merged serially in item order:
    /// cache bookkeeping and offer-id assignment happen in the merge, so the
    /// reply — ids included — is bit-identical to a serial run.
    pub fn respond_with_hints(
        &mut self,
        round: u32,
        items: &[RfbItem],
        hints: &[Offer],
    ) -> SellerResponse {
        let workers = if self.config.parallel {
            qt_par::max_threads()
        } else {
            1
        };
        // Evaluation phase: read-only probes against the pre-batch cache
        // state (identical under any worker count), deriving or computing
        // offers as needed; all cache mutation happens in the serial merge.
        let replies: Vec<(u64, ItemReply)> = qt_par::par_map_ref(items, workers, |item| {
            self.lookup_or_eval(round, &item.query, hints)
        });
        let mut resp = SellerResponse::default();
        for ((key, reply), item) in replies.into_iter().zip(items) {
            let offers = match reply {
                ItemReply::Exact => {
                    self.cache_hits += 1;
                    self.offer_cache.record(ProbeOutcome::HitExact);
                    match self.offer_cache.get(key) {
                        Some(e) => e.value.clone(),
                        // Evicted between probe and merge by an earlier
                        // item's insertion (bounded cache): recompute.
                        None => {
                            let r = self.eval_item(round, &item.query, hints);
                            resp.effort += r.effort;
                            r.offers
                        }
                    }
                }
                ItemReply::Semantic(derived) => {
                    self.cache_hits += 1;
                    self.offer_cache.record(ProbeOutcome::HitSemantic);
                    self.offer_cache
                        .insert(key, item.query.clone(), derived.clone(), 0.0);
                    derived
                }
                ItemReply::Fresh(r) => {
                    self.cache_misses += 1;
                    self.offer_cache.record(ProbeOutcome::Miss);
                    resp.effort += r.effort;
                    self.offer_cache.insert(
                        key,
                        item.query.clone(),
                        r.offers.clone(),
                        r.effort as f64,
                    );
                    r.offers
                }
            };
            for mut o in offers {
                o.id = self.fresh_id();
                o.round = round;
                resp.offers.push(o);
            }
        }
        self.total_effort += resp.effort;
        resp
    }

    /// Read-only lookup for one RFB item: exact cache hit, semantic
    /// subsumption hit (with derived offers), or a fresh evaluation. Runs on
    /// `&self` so the parallel evaluation phase can call it concurrently.
    fn lookup_or_eval(&self, round: u32, q: &Query, hints: &[Offer]) -> (u64, ItemReply) {
        let key = self.cache_key(q, hints);
        match self
            .offer_cache
            .probe(key, q, self.config.enable_semantic_cache)
        {
            Probe::Exact => (key, ItemReply::Exact),
            Probe::Semantic(cands) => {
                for (k, m) in cands {
                    let e = self.offer_cache.get(k).expect("probed candidate exists");
                    if let Some(derived) = self.derive_offers(round, q, &e.query, &m, &e.value) {
                        return (key, ItemReply::Semantic(derived));
                    }
                }
                (key, ItemReply::Fresh(self.eval_item(round, q, hints)))
            }
            Probe::Miss => (key, ItemReply::Fresh(self.eval_item(round, q, hints))),
        }
    }

    /// Rewrite the offers of a cached reply for `cached_q` into offers for
    /// the subsumed request `q` (`q ⊑ cached_q`, same `FROM` extents). The
    /// derived offers use the exact syntactic shapes the buyer's plan
    /// generator matches, and each one's `query` field still describes the
    /// rows the seller would deliver — execution always re-derives from the
    /// offered query over the seller's holdings, so a derived promise is
    /// sound whenever the original was; only the attached pricing stays the
    /// estimate struck for `cached_q`. Returns `None` when any offer resists
    /// a sound rewrite, and the caller falls back to a fresh evaluation.
    fn derive_offers(
        &self,
        round: u32,
        q: &Query,
        cached_q: &Query,
        m: &ViewMatch,
        offers: &[Offer],
    ) -> Option<Vec<Offer>> {
        let _ = m; // candidate ranking used it; derivation re-derives shapes
        let q_core = q.strip_aggregation();
        let mut out = Vec::with_capacity(offers.len());
        for o in offers {
            if !o.subcontracts.is_empty() {
                // Composite offers embed third-party promises shaped for
                // `cached_q`; rewriting those is not ours to do.
                return None;
            }
            let derived_query = if o.query == *cached_q {
                // Whole-answer promise (sorted delivery, view answers): a
                // node able to produce all of `cached_q` can produce all of
                // the narrower `q` over the same extents.
                q.clone()
            } else if o.kind == OfferKind::PartialAggregate {
                // Pre-aggregated fragment over this node's partitions, in
                // `q`'s aggregate shape (mirrors the fresh-path guard).
                if !self.config.enable_partial_agg
                    || !q.is_aggregate()
                    || !q.aggregates_decomposable()
                {
                    return None;
                }
                let mut agg = q.clone();
                agg.order_by.clear();
                for (rel, parts) in &o.query.relations {
                    agg.relations.insert(*rel, *parts);
                }
                agg
            } else {
                // Row fragment over a relation subset: re-derive `q`'s
                // canonical fragment over the same subset, keeping the
                // offer's partition coverage.
                let rels: BTreeSet<RelId> = o.query.rel_ids().collect();
                let mut frag = q_core.restrict_to_rels(&rels);
                for (rel, parts) in &o.query.relations {
                    frag.relations.insert(*rel, *parts);
                }
                frag
            };
            let mut d = o.clone();
            d.query = derived_query;
            d.round = round;
            out.push(d);
        }
        Some(out)
    }

    /// Idempotent RFB entry point for unreliable transports: `req` uniquely
    /// identifies the request, and a retransmitted or fault-duplicated RFB
    /// with a known `req` is answered with the *identical* reply (same offer
    /// ids, zero effort) so the buyer can recognize and discard duplicates.
    /// Composes with the offer cache: the first response to a `req` may
    /// itself be served from memoized evaluations.
    pub fn respond_request(
        &mut self,
        req: u64,
        round: u32,
        items: &[RfbItem],
        hints: &[Offer],
    ) -> SellerResponse {
        if let Some(offers) = self.rfb_replies.get(&req) {
            self.duplicate_rfbs += 1;
            return SellerResponse {
                offers: offers.clone(),
                effort: 0,
            };
        }
        let resp = self.respond_with_hints(round, items, hints);
        self.rfb_replies.insert(req, resp.offers.clone());
        resp
    }

    /// Answer a batched RFB covering several concurrent sessions in one
    /// parallel pass. Returns one [`SellerResponse`] per entry, in entry
    /// order.
    ///
    /// The offer cache is *shared across sessions* — two sessions asking the
    /// same query (same fingerprint, same hints digest) evaluate it once —
    /// while everything a session can observe stays isolated: offer ids come
    /// from per-session counters, and hints only affect the cache key of the
    /// session that sent them. Entries whose request id is already in the
    /// dedup memo (retransmissions) are answered identically at zero effort;
    /// the remaining distinct uncached items across *all* entries form a
    /// single [`qt_par`] evaluation batch, so a flush covering M sessions
    /// costs one fork/join instead of M.
    pub fn respond_batch(&mut self, entries: &[SessionRfb]) -> Vec<SellerResponse> {
        struct Job<'a> {
            key: u64,
            query: &'a Query,
            hints: &'a [Offer],
            round: u32,
        }
        // Scheduling: probe each distinct key against the pre-batch cache.
        // Exact hits need no work; semantic hits derive their offers right
        // here (cheap, read-only); the rest become one parallel batch.
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut derived: std::collections::HashMap<u64, Vec<Offer>> =
            std::collections::HashMap::new();
        let mut scheduled = std::collections::HashSet::new();
        for e in entries {
            if self.rfb_replies.contains_key(&e.req) {
                continue;
            }
            for item in e.items.iter() {
                let key = self.cache_key(&item.query, &e.hints);
                if !scheduled.insert(key) {
                    continue;
                }
                match self
                    .offer_cache
                    .probe(key, &item.query, self.config.enable_semantic_cache)
                {
                    Probe::Exact => {}
                    Probe::Semantic(cands) => {
                        let hit = cands.iter().find_map(|(k, m)| {
                            let en = self.offer_cache.get(*k).expect("probed candidate exists");
                            self.derive_offers(e.round, &item.query, &en.query, m, &en.value)
                        });
                        match hit {
                            Some(d) => {
                                derived.insert(key, d);
                            }
                            None => jobs.push(Job {
                                key,
                                query: &item.query,
                                hints: &e.hints,
                                round: e.round,
                            }),
                        }
                    }
                    Probe::Miss => jobs.push(Job {
                        key,
                        query: &item.query,
                        hints: &e.hints,
                        round: e.round,
                    }),
                }
            }
        }
        let workers = if self.config.parallel {
            qt_par::max_threads()
        } else {
            1
        };
        let computed: Vec<(u64, SellerResponse)> = qt_par::par_map_ref(&jobs, workers, |job| {
            (job.key, self.eval_item(job.round, job.query, job.hints))
        });
        // Serial merge: assemble per-entry replies in entry/item order,
        // filling the cache at each key's first reference (= scheduling
        // order). The effort of a fresh evaluation is charged to the first
        // entry that references it; later references in the same batch are
        // cache hits, exactly as they would be had the entries arrived one
        // by one.
        let mut fresh: std::collections::HashMap<u64, SellerResponse> =
            computed.into_iter().collect();
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            if let Some(offers) = self.rfb_replies.get(&e.req) {
                self.duplicate_rfbs += 1;
                out.push(SellerResponse {
                    offers: offers.clone(),
                    effort: 0,
                });
                continue;
            }
            let mut resp = SellerResponse::default();
            for item in e.items.iter() {
                let key = self.cache_key(&item.query, &e.hints);
                let offers = if let Some(r) = fresh.remove(&key) {
                    self.cache_misses += 1;
                    self.offer_cache.record(ProbeOutcome::Miss);
                    resp.effort += r.effort;
                    self.offer_cache.insert(
                        key,
                        item.query.clone(),
                        r.offers.clone(),
                        r.effort as f64,
                    );
                    r.offers
                } else if let Some(d) = derived.remove(&key) {
                    self.cache_hits += 1;
                    self.offer_cache.record(ProbeOutcome::HitSemantic);
                    self.offer_cache
                        .insert(key, item.query.clone(), d.clone(), 0.0);
                    d
                } else {
                    self.cache_hits += 1;
                    self.offer_cache.record(ProbeOutcome::HitExact);
                    match self.offer_cache.get(key) {
                        Some(en) => en.value.clone(),
                        // Evicted/rejected between probe and merge under a
                        // bounded capacity: recompute serially.
                        None => {
                            let r = self.eval_item(e.round, &item.query, &e.hints);
                            resp.effort += r.effort;
                            r.offers
                        }
                    }
                };
                for mut o in offers {
                    o.id = self.fresh_session_id(e.session);
                    o.round = e.round;
                    resp.offers.push(o);
                }
            }
            self.total_effort += resp.effort;
            self.rfb_replies.insert(e.req, resp.offers.clone());
            out.push(resp);
        }
        out
    }

    /// Drop the per-session offer-id counter and reply memos of a finished
    /// session so long-running serving processes don't accumulate state for
    /// sessions that will never speak again.
    pub fn forget_session(&mut self, session: SessionId) {
        self.session_offers.remove(&session);
        self.rfb_replies
            .retain(|&req, _| (req >> 32) != session.0 + 1);
        self.contracts.retain(|&c| (c >> 32) != session.0 + 1);
    }

    /// Record an incoming award. Returns `true` the first time `contract` is
    /// seen — the caller fires [`observe_award`](Self::observe_award) exactly
    /// once; retransmitted awards are re-acked without re-learning.
    pub fn accept_award(&mut self, contract: u64) -> bool {
        self.contracts.insert(contract)
    }

    /// Whether this seller currently holds `contract` (lease renewals only
    /// answer for contracts actually held).
    pub fn has_contract(&self, contract: u64) -> bool {
        self.contracts.contains(&contract)
    }

    /// The buyer released `contract` (completed). Idempotent.
    pub fn release_contract(&mut self, contract: u64) {
        self.contracts.remove(&contract);
    }

    /// Whether any live contract belongs to `session` (serve path: the
    /// seller's per-session state is kept until the last lease is released).
    pub fn session_has_contracts(&self, session: SessionId) -> bool {
        let lo = (session.0 + 1) << 32;
        let hi = (session.0 + 2) << 32;
        self.contracts.range(lo..hi).next().is_some()
    }

    fn eval_item(&self, round: u32, q: &Query, hints: &[Offer]) -> SellerResponse {
        let mut resp = SellerResponse::default();
        self.respond_one(round, q, hints, &mut resp);
        resp
    }

    fn respond_one(&self, round: u32, q: &Query, hints: &[Offer], resp: &mut SellerResponse) {
        // S2.1: rewrite for local holdings (§3.4).
        if let Some(q_local) = rewrite_for_holdings(q, &self.holdings) {
            // One optimizer serves every offer evaluated for this item.
            let optimizer = self.optimizer();
            // S2.2: modified DP — optimal k-way partials become offers.
            let (partials, effort) = optimizer.partial_results(&q_local, self.config.max_partial_k);
            resp.effort += effort;
            for p in &partials {
                let props = self.delivery_props(p.cost, p.rows, p.width);
                resp.offers
                    .push(self.make_offer(round, p.query.clone(), props, OfferKind::Rows));
            }
            // Per-partition sub-offers for multi-partition single-relation
            // fragments: replicas overlap across sellers, and the buyer can
            // only union *disjoint* fragments — singleton-partition offers
            // guarantee an exact tiling always exists.
            for p in &partials {
                if p.query.num_relations() != 1 {
                    continue;
                }
                let (&rel, parts) = p.query.relations.iter().next().expect("one relation");
                if parts.len() <= 1 {
                    continue;
                }
                for idx in parts.iter() {
                    let sub = p.query.with_partset(rel, qt_query::PartSet::single(idx));
                    let o = optimizer.optimize(&sub);
                    resp.effort += o.effort;
                    let props = self.delivery_props(o.cost, o.rows, o.width);
                    resp.offers
                        .push(self.make_offer(round, sub, props, OfferKind::Rows));
                }
            }

            // Partial aggregates: only meaningful when the seller sees every
            // relation of the query (its fragment is then a clean sub-cube
            // of the join, pre-aggregable per group).
            if self.config.enable_partial_agg
                && q.is_aggregate()
                && q.aggregates_decomposable()
                && q_local.num_relations() == q.num_relations()
            {
                let mut agg_q = q.clone();
                agg_q.order_by.clear();
                for (rel, parts) in &q_local.relations {
                    agg_q.relations.insert(*rel, *parts);
                }
                let o = optimizer.optimize(&agg_q);
                resp.effort += o.effort;
                let props = self.delivery_props(o.cost, o.rows, o.width);
                resp.offers
                    .push(self.make_offer(round, agg_q, props, OfferKind::PartialAggregate));
            }

            // Sorted delivery: when the query wants an ordering and this
            // node can answer it exactly, offer the *sorted* answer — the
            // buyer can then skip its local sort (the "addition/removal of
            // sorting predicates" dimension of the predicates analysers).
            if !q.is_aggregate()
                && !q.order_by.is_empty()
                && qt_query::rewrite::can_answer_exactly(q, &self.holdings)
            {
                let o = optimizer.optimize(q);
                resp.effort += o.effort;
                let props = self.delivery_props(o.cost, o.rows, o.width);
                resp.offers
                    .push(self.make_offer(round, q.clone(), props, OfferKind::Rows));
            }

            // §3.5 subcontracting: when this node lacks some relations, it
            // may buy their fragments from third nodes (via the buyer's
            // market hints) and offer the composite join wholesale.
            if self.config.enable_subcontracting
                && !hints.is_empty()
                && q_local.num_relations() < q.num_relations()
            {
                if let Some((offer, effort)) =
                    self.subcontract_offer(round, q, &q_local, hints, &optimizer)
                {
                    resp.effort += effort;
                    resp.offers.push(offer);
                }
            }
        }

        // S2.3: seller predicates analyser — materialized views can answer
        // the query (even over data this node does not hold as base
        // relations) at the cost of a view scan plus residual work.
        if self.config.enable_views {
            resp.offers.extend(
                self.views
                    .iter()
                    .filter_map(|view| self.view_offer(round, q, view)),
            );
        }
    }

    /// Build a composite offer for the whole SPJ core of `q`: this node's
    /// local fragment joined with purchased fragments of the relations it
    /// lacks. Returns `None` unless every missing relation has a hint
    /// covering its full requested extent.
    fn subcontract_offer(
        &self,
        round: u32,
        q: &Query,
        q_local: &Query,
        hints: &[Offer],
        optimizer: &LocalOptimizer<'_, NodeHoldings>,
    ) -> Option<(Offer, u64)> {
        let q_core = q.strip_aggregation();
        let mut subs: Vec<(NodeId, Query)> = Vec::new();
        let mut sub_delivery = 0.0f64;
        let mut sub_price = 0.0f64;
        let mut sub_rows = 0.0f64;
        let mut sub_bytes = 0.0f64;
        for rel in q.rel_ids() {
            if q_local.relations.contains_key(&rel) {
                continue;
            }
            let expected = q_core.restrict_to_rels(&std::collections::BTreeSet::from([rel]));
            let hint = hints
                .iter()
                .filter(|h| h.query == expected && h.seller != self.node)
                .min_by(|a, b| a.props.total_time.total_cmp(&b.props.total_time))?;
            sub_delivery = sub_delivery.max(hint.props.total_time);
            sub_price += hint.props.price;
            sub_rows = sub_rows.max(hint.props.rows);
            sub_bytes += hint.props.bytes;
            subs.push((hint.seller, hint.query.clone()));
        }
        if subs.is_empty() {
            return None;
        }
        // Composite query: the full SPJ core, with this node's partition
        // coverage on its own relations.
        let mut composite = q_core.clone();
        for (rel, parts) in &q_local.relations {
            composite.relations.insert(*rel, *parts);
        }
        // Cost: local fragment computed in parallel with sub-deliveries,
        // then joined locally and shipped out.
        let own = optimizer.optimize(q_local);
        let p = &self.config.cost_params;
        let est = CardinalityEstimator::new(&self.holdings);
        let composite_est = est.estimate(&composite);
        let out_rows = composite_est.rows.max(1.0);
        let join_cost = p.hash_join(
            own.rows.min(sub_rows.max(1.0)),
            own.rows.max(sub_rows),
            out_rows,
        ) * self.resources.cpu_factor();
        let width = composite_est.width;
        let local_path = own.cost.max(sub_delivery) + join_cost;
        let mut props = self.delivery_props(local_path, out_rows, width);
        props.bytes += sub_bytes; // shipped twice: to us, then onward
        props.price += sub_price;
        let mut offer = self.make_offer(round, composite, props, OfferKind::Rows);
        offer.subcontracts = subs;
        Some((offer, own.effort))
    }

    fn view_offer(&self, round: u32, q: &Query, view: &MaterializedView) -> Option<Offer> {
        let m = match_view(&view.query, q)?;
        let est = CardinalityEstimator::new(&self.holdings);
        let view_rows = est.estimate(&view.query);
        let out = est.estimate(q);
        // Cost: scan the materialized rows, apply residuals / re-aggregate.
        let p = &self.config.cost_params;
        let mut cost = p.scan(view_rows.rows, view_rows.width) * self.resources.io_factor();
        if !m.residual_predicates.is_empty() {
            cost += p.filter(view_rows.rows) * self.resources.cpu_factor();
        }
        if m.needs_reaggregation {
            cost += p.aggregate(view_rows.rows, out.rows) * self.resources.cpu_factor();
        }
        let mut props = self.delivery_props(cost, out.rows, out.width);
        props.freshness = 0.9; // materialized data is one refresh behind
        let ask = self.strategy.ask_for(&props);
        Some(Offer {
            id: 0, // stamped in respond_with_hints' merge step
            seller: self.node,
            query: q.clone(),
            true_cost: self.config.valuation.score(&props),
            props: ask,
            kind: OfferKind::FromView,
            round,
            subcontracts: vec![],
        })
    }

    /// Learn from the buyer's award: `won` per offer this seller made.
    /// Cached replies embed asks priced under the pre-award strategy, so a
    /// strategy update (adaptive markup) drops them — this unscoped form
    /// conservatively drops *all* of them; prefer the scoped variants when
    /// the award's queries are known.
    pub fn observe_award(&mut self, won: bool) {
        let before = self.strategy.clone();
        self.strategy.observe_outcome(won);
        if self.strategy != before {
            self.invalidate_offer_cache();
        }
    }

    /// [`observe_award`](Self::observe_award) with the awarded (or lost)
    /// queries' relation set: a strategy move only drops cached replies
    /// whose relations intersect `rels` — replies about unrelated data keep
    /// their asks, which were computed by the *same* strategy state those
    /// queries would see on a fresh trade next time they are RFB'd alone.
    pub fn observe_award_scoped(&mut self, won: bool, rels: &BTreeSet<RelId>) {
        let before = self.strategy.clone();
        self.strategy.observe_outcome(won);
        if self.strategy != before {
            self.invalidate_offer_cache_rels(rels);
        }
    }

    /// Award observation keyed by the awarded offer's id, as carried by the
    /// wire `Award` messages: the invalidation scope is resolved from this
    /// seller's own reply memos (the union over every memoized offer with
    /// that id, so the result is independent of map iteration order). An id
    /// the memos no longer know falls back to the conservative full clear.
    pub fn observe_award_for_offer(&mut self, won: bool, offer_id: u64) {
        let mut rels: BTreeSet<RelId> = BTreeSet::new();
        let mut found = false;
        for offers in self.rfb_replies.values() {
            for o in offers.iter().filter(|o| o.id == offer_id) {
                found = true;
                rels.extend(o.query.rel_ids());
            }
        }
        if found {
            self.observe_award_scoped(won, &rels);
        } else {
            self.observe_award(won);
        }
    }
}

/// Outcome of the read-only cache lookup for one RFB item, produced by the
/// (possibly parallel) evaluation phase and consumed by the serial merge.
enum ItemReply {
    /// The key is cached verbatim.
    Exact,
    /// Subsumption hit: offers derived from a cached reply.
    Semantic(Vec<Offer>),
    /// Cache miss: a fresh evaluation.
    Fresh(SellerResponse),
}

/// Canonical request id for `session`'s RFB in `round`. The `+ 1` keeps the
/// serve path's id space (≥ 2³²) disjoint from the single-session drivers'
/// (`round as u64`, < 2³²), so one engine can serve both without a memo
/// collision; [`SellerEngine::forget_session`] relies on the same encoding.
pub fn session_req(session: SessionId, round: u32) -> u64 {
    ((session.0 + 1) << 32) | round as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, PartId, PartitionStats, Partitioning, RelationSchema,
        Value,
    };
    use qt_query::{parse_query, PartSet};

    /// The telecom setup: customer partitioned over 3 offices, invoiceline
    /// held fully by Myconos (node 2) and Athens (node 0).
    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let cust = b.add_relation(
            RelationSchema::new(
                "customer",
                vec![
                    ("custid", AttrType::Int),
                    ("custname", AttrType::Str),
                    ("office", AttrType::Str),
                ],
            ),
            Partitioning::List {
                attr: 2,
                groups: vec![
                    vec![Value::str("Athens")],
                    vec![Value::str("Corfu")],
                    vec![Value::str("Myconos")],
                ],
            },
        );
        let inv = b.add_relation(
            RelationSchema::new(
                "invoiceline",
                vec![
                    ("invid", AttrType::Int),
                    ("linenum", AttrType::Int),
                    ("custid", AttrType::Int),
                    ("charge", AttrType::Float),
                ],
            ),
            Partitioning::Single,
        );
        for i in 0..3u16 {
            b.set_stats(
                PartId::new(cust, i),
                PartitionStats::synthetic(1_000, &[1_000, 900, 1]),
            );
            b.place(PartId::new(cust, i), NodeId(i as u32));
        }
        b.set_stats(
            PartId::new(inv, 0),
            PartitionStats::synthetic(10_000, &[2_000, 5, 3_000, 500]),
        );
        b.place(PartId::new(inv, 0), NodeId(0));
        b.place(PartId::new(inv, 0), NodeId(2));
        b.build()
    }

    fn motivating(cat: &Catalog) -> Query {
        parse_query(
            &cat.dict,
            "SELECT office, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office",
        )
        .unwrap()
    }

    fn rfb(q: &Query) -> Vec<RfbItem> {
        vec![RfbItem {
            query: q.clone(),
            ref_value: f64::INFINITY,
        }]
    }

    #[test]
    fn myconos_offers_partials_and_partial_aggregate() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        let resp = seller.respond(0, &rfb(&q));
        assert!(resp.effort > 0);
        // Singletons (customer_myc, invoiceline), the 2-way join, and the
        // partial aggregate.
        let kinds: Vec<OfferKind> = resp.offers.iter().map(|o| o.kind).collect();
        assert!(kinds.contains(&OfferKind::PartialAggregate));
        assert!(
            resp.offers
                .iter()
                .filter(|o| o.kind == OfferKind::Rows)
                .count()
                >= 3
        );
        // The partial aggregate is restricted to the Myconos partition.
        let agg = resp
            .offers
            .iter()
            .find(|o| o.kind == OfferKind::PartialAggregate)
            .unwrap();
        assert_eq!(
            agg.query.relations[&qt_catalog::RelId(0)],
            PartSet::single(2)
        );
        assert!(agg.query.is_aggregate());
        // Offers are priced: positive time, positive rows.
        for o in &resp.offers {
            assert!(o.props.total_time > 0.0, "{:?}", o);
            assert!(o.true_cost > 0.0);
        }
    }

    #[test]
    fn corfu_cannot_offer_partial_aggregate_without_invoiceline() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(1)), QtConfig::default());
        let resp = seller.respond(0, &rfb(&q));
        assert!(resp.offers.iter().all(|o| o.kind == OfferKind::Rows));
        // It still offers its customer partition.
        assert_eq!(resp.offers.len(), 1);
        assert_eq!(resp.offers[0].query.num_relations(), 1);
    }

    #[test]
    fn empty_node_offers_nothing() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(9)), QtConfig::default());
        let resp = seller.respond(0, &rfb(&q));
        assert!(resp.offers.is_empty());
        assert_eq!(resp.effort, 0);
    }

    #[test]
    fn markup_strategy_inflates_asks() {
        let cat = catalog();
        let q = motivating(&cat);
        let cfg = QtConfig::default();
        let mut honest = SellerEngine::new(cat.holdings_of(NodeId(2)), cfg.clone());
        let mut greedy = SellerEngine::new(cat.holdings_of(NodeId(2)), cfg);
        greedy.strategy = qt_trade::SellerStrategy::fixed_markup(2.0);
        let h = honest.respond(0, &rfb(&q));
        let g = greedy.respond(0, &rfb(&q));
        for (a, b) in h.offers.iter().zip(&g.offers) {
            assert!(b.props.total_time > a.props.total_time * 1.9);
            assert!(
                (a.true_cost - b.true_cost).abs() < 1e-9,
                "true cost unchanged"
            );
        }
    }

    #[test]
    fn view_offer_answers_query_cheaply() {
        let cat = catalog();
        let q = motivating(&cat);
        // Node 1 (Corfu) materializes the full aggregate at finer grain.
        let finer = parse_query(
            &cat.dict,
            "SELECT office, custname, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office, custname",
        )
        .unwrap();
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(1)), QtConfig::default())
            .with_views(vec![MaterializedView::new("charges_by_cust", finer)]);
        let resp = seller.respond(0, &rfb(&q));
        let view_offers: Vec<&Offer> = resp
            .offers
            .iter()
            .filter(|o| o.kind == OfferKind::FromView)
            .collect();
        assert_eq!(view_offers.len(), 1);
        let vo = view_offers[0];
        assert_eq!(vo.query, q, "view offer promises the full query");
        assert!(vo.props.freshness < 1.0);
    }

    #[test]
    fn views_can_be_disabled() {
        let cat = catalog();
        let q = motivating(&cat);
        let finer = parse_query(
            &cat.dict,
            "SELECT office, custname, SUM(charge) FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid GROUP BY office, custname",
        )
        .unwrap();
        let cfg = QtConfig {
            enable_views: false,
            ..QtConfig::default()
        };
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(1)), cfg)
            .with_views(vec![MaterializedView::new("v", finer)]);
        let resp = seller.respond(0, &rfb(&q));
        assert!(resp.offers.iter().all(|o| o.kind != OfferKind::FromView));
    }

    #[test]
    fn offer_ids_are_unique_across_rounds() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        let mut ids = std::collections::HashSet::new();
        for round in 0..3 {
            for o in seller.respond(round, &rfb(&q)).offers {
                assert!(ids.insert(o.id), "duplicate offer id {}", o.id);
            }
        }
    }

    #[test]
    fn adaptive_strategy_learns_from_awards() {
        let cat = catalog();
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        seller.strategy = qt_trade::SellerStrategy::adaptive_markup(1.2);
        seller.observe_award(false);
        assert!(seller.strategy.current_markup() < 1.2);
    }

    #[test]
    fn repeated_rfb_hits_offer_cache() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        let first = seller.respond(0, &rfb(&q));
        assert_eq!((seller.cache_hits, seller.cache_misses), (0, 1));
        let effort_after_first = seller.total_effort;
        assert!(effort_after_first > 0);

        let second = seller.respond(1, &rfb(&q));
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 1));
        assert_eq!(second.effort, 0, "a cache hit costs no optimization effort");
        assert_eq!(seller.total_effort, effort_after_first);
        assert_eq!(first.offers.len(), second.offers.len());
        for (a, b) in first.offers.iter().zip(&second.offers) {
            assert_ne!(a.id, b.id, "replies always carry fresh offer ids");
            assert_eq!(
                b.round, 1,
                "cached offers are restamped to the current round"
            );
            assert_eq!(a.query, b.query);
            assert_eq!(a.props, b.props);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn retransmitted_rfb_is_answered_identically_at_zero_effort() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        let first = seller.respond_request(42, 0, &rfb(&q), &[]);
        let effort_after = seller.total_effort;
        let again = seller.respond_request(42, 0, &rfb(&q), &[]);
        assert_eq!(seller.duplicate_rfbs, 1);
        assert_eq!(again.effort, 0, "a dedup hit costs nothing");
        assert_eq!(seller.total_effort, effort_after);
        assert_eq!(first.offers.len(), again.offers.len());
        for (a, b) in first.offers.iter().zip(&again.offers) {
            assert_eq!(a.id, b.id, "the dedup table resends identical ids");
        }
        // A new request id is a new reply — fresh ids, offer cache welcome.
        let fresh = seller.respond_request(43, 1, &rfb(&q), &[]);
        assert_ne!(fresh.offers[0].id, first.offers[0].id);
        assert_eq!(seller.duplicate_rfbs, 1);
    }

    #[test]
    fn award_under_adaptive_strategy_invalidates_cache() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        seller.strategy = qt_trade::SellerStrategy::adaptive_markup(1.5);
        let first = seller.respond(0, &rfb(&q));
        // Losing moves the adaptive markup → cached asks are stale.
        seller.observe_award(false);
        let second = seller.respond(1, &rfb(&q));
        assert_eq!((seller.cache_hits, seller.cache_misses), (0, 2));
        // Fresh evaluation re-priced the asks under the lowered markup.
        let ask = |r: &SellerResponse| r.offers.iter().map(|o| o.props.total_time).sum::<f64>();
        assert!(
            ask(&second) < ask(&first),
            "{} vs {}",
            ask(&second),
            ask(&first)
        );
    }

    #[test]
    fn award_under_truthful_strategy_keeps_cache() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        seller.respond(0, &rfb(&q));
        // Truthful pricing is award-independent, so the cache survives.
        seller.observe_award(true);
        seller.observe_award(false);
        seller.respond(1, &rfb(&q));
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 1));
    }

    #[test]
    fn contracts_are_idempotent_and_session_scoped() {
        let cat = catalog();
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        let s0 = SessionId(0);
        let s1 = SessionId(1);
        let c0 = (s0.0 + 1) << 32;
        let c1 = (s1.0 + 1) << 32;
        assert!(seller.accept_award(c0), "first award is new");
        assert!(!seller.accept_award(c0), "retransmission is not");
        assert!(seller.accept_award(c1));
        assert!(seller.has_contract(c0));
        assert!(seller.session_has_contracts(s0));
        // Forgetting one session releases only its leases.
        seller.forget_session(s0);
        assert!(!seller.has_contract(c0));
        assert!(!seller.session_has_contracts(s0));
        assert!(seller.has_contract(c1));
        seller.release_contract(c1);
        seller.release_contract(c1); // idempotent
        assert!(!seller.session_has_contracts(s1));
        // Single-query ids (< 2³²) belong to no session.
        assert!(seller.accept_award(3));
        assert!(!seller.session_has_contracts(SessionId(0)));
    }

    fn hint(seller: u32, q: &Query, t: f64) -> Offer {
        Offer {
            id: 1,
            seller: NodeId(seller),
            query: q.clone(),
            true_cost: t,
            props: AnswerProperties::timed(t, 100.0, 1000.0),
            kind: OfferKind::Rows,
            round: 0,
            subcontracts: vec![],
        }
    }

    #[test]
    fn permuted_hints_hit_the_same_cache_entry() {
        let cat = catalog();
        let q = motivating(&cat);
        let cfg = QtConfig {
            enable_subcontracting: true,
            ..QtConfig::default()
        };
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), cfg);
        let h1 = hint(
            0,
            &parse_query(&cat.dict, "SELECT custname FROM customer").unwrap(),
            1.0,
        );
        let h2 = hint(
            1,
            &parse_query(&cat.dict, "SELECT charge FROM invoiceline").unwrap(),
            2.0,
        );
        let first = seller.respond_with_hints(0, &rfb(&q), &[h1.clone(), h2.clone()]);
        assert_eq!((seller.cache_hits, seller.cache_misses), (0, 1));
        // The same hint set in the opposite arrival order is the same market
        // state: it must hit, not spuriously re-evaluate.
        let second = seller.respond_with_hints(1, &rfb(&q), &[h2.clone(), h1.clone()]);
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 1));
        assert_eq!(second.effort, 0);
        assert_eq!(first.offers.len(), second.offers.len());
        // A genuinely different hint book still misses.
        let h3 = hint(1, &h1.query, 9.0);
        seller.respond_with_hints(2, &rfb(&q), &[h1, h3]);
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 2));
    }

    #[test]
    fn scoped_award_keeps_unrelated_cache_entries() {
        let cat = catalog();
        let q_cust = parse_query(&cat.dict, "SELECT custname FROM customer").unwrap();
        let q_inv = parse_query(&cat.dict, "SELECT charge FROM invoiceline").unwrap();
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        seller.strategy = qt_trade::SellerStrategy::adaptive_markup(1.5);
        seller.respond(0, &rfb(&q_cust));
        seller.respond(0, &rfb(&q_inv));
        assert_eq!((seller.cache_hits, seller.cache_misses), (0, 2));
        // A lost award about `customer` moves the markup, but only the
        // customer reply goes stale — the invoiceline reply survives.
        seller.observe_award_scoped(false, &BTreeSet::from([qt_catalog::RelId(0)]));
        seller.respond(1, &rfb(&q_inv));
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 2));
        seller.respond(1, &rfb(&q_cust));
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 3));
        assert_eq!(seller.cache_stats().invalidated, 1);
    }

    #[test]
    fn offer_id_award_resolves_scope_from_reply_memos() {
        let cat = catalog();
        let q_cust = parse_query(&cat.dict, "SELECT custname FROM customer").unwrap();
        let q_inv = parse_query(&cat.dict, "SELECT charge FROM invoiceline").unwrap();
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        seller.strategy = qt_trade::SellerStrategy::adaptive_markup(1.5);
        let r_cust = seller.respond_request(1, 0, &rfb(&q_cust), &[]);
        seller.respond_request(2, 0, &rfb(&q_inv), &[]);
        // Award resolved to a customer offer id: only that entry drops.
        seller.observe_award_for_offer(true, r_cust.offers[0].id);
        seller.respond(1, &rfb(&q_inv));
        seller.respond(1, &rfb(&q_cust));
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 3));
        // An id the memos don't know falls back to the full clear.
        seller.observe_award_for_offer(true, u64::MAX);
        seller.respond(2, &rfb(&q_inv));
        assert_eq!((seller.cache_hits, seller.cache_misses), (1, 4));
    }

    #[test]
    fn semantic_hit_derives_offers_for_subsumed_query() {
        let cat = catalog();
        let wide = parse_query(
            &cat.dict,
            "SELECT custname, office, charge FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid",
        )
        .unwrap();
        let narrow = parse_query(
            &cat.dict,
            "SELECT custname FROM customer, invoiceline \
             WHERE customer.custid = invoiceline.custid AND charge > 100",
        )
        .unwrap();
        let cfg = QtConfig {
            enable_semantic_cache: true,
            ..QtConfig::default()
        };
        let mut warm = SellerEngine::new(cat.holdings_of(NodeId(2)), cfg.clone());
        warm.respond(0, &rfb(&wide));
        assert_eq!((warm.cache_hits, warm.cache_misses), (0, 1));
        let derived = warm.respond(1, &rfb(&narrow));
        assert_eq!(
            (warm.cache_hits, warm.cache_misses),
            (1, 1),
            "the subsumed query is served from the wide reply"
        );
        assert_eq!(derived.effort, 0, "no local DP ran for the hit");
        assert_eq!(warm.cache_stats().hits_semantic, 1);
        // The derived offers promise exactly the queries a cold seller would
        // promise for the narrow request (pricing may differ; the promises —
        // what execution is contractually bound to — may not).
        let mut cold = SellerEngine::new(cat.holdings_of(NodeId(2)), cfg);
        let fresh = cold.respond(1, &rfb(&narrow));
        let queries = |r: &SellerResponse| {
            r.offers
                .iter()
                .map(|o| o.query.clone())
                .collect::<BTreeSet<Query>>()
        };
        assert_eq!(queries(&derived), queries(&fresh));
        // A second identical request is now an exact hit.
        warm.respond(2, &rfb(&narrow));
        assert_eq!((warm.cache_hits, warm.cache_misses), (2, 1));
        assert_eq!(warm.cache_stats().hits_exact, 1);
    }

    #[test]
    fn semantic_cache_off_by_default_misses_subsumed_queries() {
        let cat = catalog();
        let wide = parse_query(&cat.dict, "SELECT custname, office FROM customer").unwrap();
        let narrow = parse_query(
            &cat.dict,
            "SELECT custname FROM customer WHERE office = 'Myconos'",
        )
        .unwrap();
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        seller.respond(0, &rfb(&wide));
        seller.respond(1, &rfb(&narrow));
        assert_eq!((seller.cache_hits, seller.cache_misses), (0, 2));
    }

    #[test]
    fn resource_change_invalidates_cache() {
        let cat = catalog();
        let q = motivating(&cat);
        let mut seller = SellerEngine::new(cat.holdings_of(NodeId(2)), QtConfig::default());
        let first = seller.respond(0, &rfb(&q));
        seller = seller.with_resources(NodeResources::uniform(4.0));
        let second = seller.respond(1, &rfb(&q));
        assert_eq!((seller.cache_hits, seller.cache_misses), (0, 2));
        // A 4× faster node quotes faster answers.
        let t = |r: &SellerResponse| r.offers.iter().map(|o| o.props.total_time).sum::<f64>();
        assert!(t(&second) < t(&first));
    }
}
