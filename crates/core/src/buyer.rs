//! The buyer engine: one node optimizing one query by trading.

use crate::analyser::next_queries;
use crate::config::QtConfig;
use crate::dist_plan::{estimate_from, DistributedPlan};
use crate::offer::{Offer, RfbItem};
use crate::plangen::PlanGenerator;
use qt_catalog::{NodeId, SchemaDict};
use qt_cost::NodeResources;
use qt_trade::{Bid, BuyerValueBook};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Statistics of one trading iteration.
#[derive(Debug, Clone)]
pub struct IterationStats {
    /// Round number (0-based).
    pub round: u32,
    /// Offers received this round.
    pub offers_received: usize,
    /// Queries in this round's RFB.
    pub queries_asked: usize,
    /// Best plan's additive cost after this round (∞ if none).
    pub best_cost: f64,
    /// Plan-generation effort this round.
    pub considered: u64,
}

/// What the buyer wants to happen next after closing a round.
#[derive(Debug)]
pub enum RoundOutcome {
    /// Put these queries out to bid in another round.
    Continue(Vec<RfbItem>),
    /// Trading is over (converged, exhausted iterations, or hopeless).
    Done,
}

/// The buyer engine (steps B0–B8 of the paper's Fig. 2).
pub struct BuyerEngine {
    /// The buyer node.
    pub node: NodeId,
    /// The query being optimized.
    pub query: qt_query::Query,
    /// Shared dictionary.
    pub dict: Arc<SchemaDict>,
    /// Configuration.
    pub config: QtConfig,
    /// The buyer node's own resources (local assembly cost).
    pub resources: NodeResources,
    /// Value book (step B1's strategic estimates).
    pub value_book: BuyerValueBook,
    /// All offers accumulated over all rounds.
    pub offers: Vec<Offer>,
    /// Best plan so far.
    pub best: Option<DistributedPlan>,
    /// Current round (0-based).
    pub round: u32,
    /// Per-iteration statistics.
    pub history: Vec<IterationStats>,
    /// Messages spent by nested negotiations (beyond RFB/offer rounds).
    pub negotiation_messages: u64,
    /// Virtual round-trips spent by nested negotiations.
    pub negotiation_round_trips: u64,
    asked: BTreeSet<qt_query::Query>,
    pending_items: Vec<RfbItem>,
    round_offers: usize,
}

impl BuyerEngine {
    /// New buyer for `query` at `node`.
    pub fn new(
        node: NodeId,
        dict: Arc<SchemaDict>,
        query: qt_query::Query,
        config: QtConfig,
    ) -> Self {
        BuyerEngine {
            node,
            dict,
            config,
            resources: NodeResources::reference(),
            value_book: BuyerValueBook::new(f64::INFINITY, 2.0),
            offers: Vec::new(),
            best: None,
            round: 0,
            history: Vec::new(),
            negotiation_messages: 0,
            negotiation_round_trips: 0,
            asked: BTreeSet::new(),
            pending_items: Vec::new(),
            round_offers: 0,
            query,
        }
    }

    /// Step B0–B2: the first RFB (just the original query, at its initial
    /// strategic value).
    pub fn start(&mut self) -> Vec<RfbItem> {
        let item = RfbItem {
            query: self.query.clone(),
            ref_value: self.value_book.estimate(Offer::query_key(&self.query)),
        };
        self.asked.insert(self.query.clone());
        self.pending_items = vec![item.clone()];
        vec![item]
    }

    /// Accumulate offers from a seller's response.
    pub fn receive_offers(&mut self, offers: Vec<Offer>) {
        for o in &offers {
            // B1 learning: observe the market's asks.
            let key = Offer::query_key(&o.query);
            self.value_book
                .observe(key, self.config.valuation.score(&o.props));
        }
        self.round_offers += offers.len();
        self.offers.extend(offers);
    }

    /// Steps B3–B8: generate candidate plans from everything offered so far,
    /// run the nested winner-selection negotiation, check for improvement,
    /// and compute the next working set.
    pub fn close_round(&mut self) -> RoundOutcome {
        let pg = PlanGenerator {
            dict: &self.dict,
            query: &self.query,
            config: &self.config,
            buyer_resources: self.resources.clone(),
        };
        let mut gen = pg.generate(&self.offers);

        // B3/S3: nested negotiation per purchased item. Competing offers for
        // the same query form the bid set; the protocol picks the winner and
        // the agreed value, and costs extra messages.
        if let Some(plan) = &mut gen.plan {
            let mut buyer_compute = plan.est.buyer_compute;
            // Negotiations for distinct items run concurrently; the round
            // pays the *longest* negotiation, not the sum.
            let mut round_rts = 0u64;
            for purchase in &mut plan.purchases {
                let competing: Vec<&Offer> = self
                    .offers
                    .iter()
                    .filter(|o| o.query == purchase.offer.query && o.kind == purchase.offer.kind)
                    .collect();
                if competing.len() <= 1 {
                    continue;
                }
                let bids: Vec<Bid> = competing
                    .iter()
                    .map(|o| Bid::new(o.seller, self.config.valuation.score(&o.props), o.true_cost))
                    .collect();
                // The buyer's walk-away value (step B1's strategic estimate,
                // with headroom). If every ask exceeds it the purchase
                // stands at the plan generator's pick — plan viability was
                // already decided; the reserve only caps the agreed price.
                let reserve = self
                    .value_book
                    .reserve(Offer::query_key(&purchase.offer.query))
                    .max(self.config.valuation.score(&purchase.offer.props));
                let outcome = self.config.protocol.negotiate(&bids, reserve);
                self.negotiation_messages += outcome.extra_messages;
                round_rts = round_rts.max(outcome.extra_round_trips);
                if let Some(w) = outcome.winner {
                    purchase.offer = competing[w].clone();
                    purchase.agreed_value = outcome.agreed_value;
                }
            }
            self.negotiation_round_trips += round_rts;
            let rows = plan.est.rows;
            buyer_compute = buyer_compute.max(0.0);
            plan.est = estimate_from(&plan.purchases, buyer_compute, rows);
        }

        let new_cost = gen
            .plan
            .as_ref()
            .map(|p| p.est.additive_cost)
            .unwrap_or(f64::INFINITY);
        let old_cost = self
            .best
            .as_ref()
            .map(|p| p.est.additive_cost)
            .unwrap_or(f64::INFINITY);
        let improved = new_cost < old_cost - 1e-12;
        if improved {
            self.best = gen.plan.clone().or_else(|| self.best.take());
        }

        self.history.push(IterationStats {
            round: self.round,
            offers_received: self.round_offers,
            queries_asked: self.pending_items.len(),
            best_cost: self
                .best
                .as_ref()
                .map(|p| p.est.additive_cost)
                .unwrap_or(f64::INFINITY),
            considered: gen.considered,
        });
        self.round_offers = 0;

        // B8 failure: nothing buildable in the first iteration → abort.
        if self.best.is_none() {
            return RoundOutcome::Done;
        }
        if self.round + 1 >= self.config.max_iterations {
            return RoundOutcome::Done;
        }
        // B5/B6: new working set.
        if !self.config.enable_buyer_analyser {
            return RoundOutcome::Done;
        }
        let mut new = next_queries(&self.dict, &self.query, &gen, &self.offers, &self.asked);
        new.truncate(self.config.max_new_queries_per_round);
        // B7: stop when the working set stopped growing AND the plan stopped
        // improving (the paper's double condition).
        if new.is_empty() || (!improved && self.round > 0) {
            return RoundOutcome::Done;
        }
        let items: Vec<RfbItem> = new
            .into_iter()
            .map(|q| {
                self.asked.insert(q.clone());
                let ref_value = self.value_book.estimate(Offer::query_key(&q));
                RfbItem {
                    query: q,
                    ref_value,
                }
            })
            .collect();
        self.round += 1;
        self.pending_items = items.clone();
        RoundOutcome::Continue(items)
    }

    /// Adaptive re-planning (the paper's "contracting" future-work hook):
    /// rebuild the best plan from the *already accumulated* offer pool,
    /// excluding offers from `failed` sellers — no new trading round needed.
    /// Returns `None` when the surviving offers no longer cover the query.
    pub fn replan_excluding(&self, failed: &BTreeSet<NodeId>) -> Option<DistributedPlan> {
        let surviving: Vec<Offer> = self
            .offers
            .iter()
            .filter(|o| {
                !failed.contains(&o.seller)
                    && o.subcontracts.iter().all(|(n, _)| !failed.contains(n))
            })
            .cloned()
            .collect();
        let pg = PlanGenerator {
            dict: &self.dict,
            query: &self.query,
            config: &self.config,
            buyer_resources: self.resources.clone(),
        };
        pg.generate(&surviving).plan
    }

    /// Market hints for subcontracting sellers: the cheapest known
    /// full-coverage single-relation fragment offer per relation.
    pub fn hints(&self) -> Vec<Offer> {
        let q_core = self.query.strip_aggregation();
        let mut out = Vec::new();
        for rel in self.query.rel_ids() {
            let expected = q_core.restrict_to_rels(&std::collections::BTreeSet::from([rel]));
            if let Some(best) = self
                .offers
                .iter()
                .filter(|o| o.query == expected && o.subcontracts.is_empty())
                .min_by(|a, b| a.props.total_time.total_cmp(&b.props.total_time))
            {
                out.push(best.clone());
            }
        }
        out
    }

    /// Total plan-generation effort so far.
    pub fn total_considered(&self) -> u64 {
        self.history.iter().map(|h| h.considered).sum()
    }
}

/// The seller nodes winning at least one purchase of `plan` — the single
/// source of truth for award selection, shared by the direct driver, the
/// simulator driver, and the serving layer.
pub fn winner_set(plan: &DistributedPlan) -> BTreeSet<NodeId> {
    plan.purchases.iter().map(|p| p.offer.seller).collect()
}

/// The remote award notices `plan` implies, in purchase (slot) order:
/// `(slot, seller, offer id)` for every purchase not filled by the buyer's
/// own data.
pub fn remote_awards(plan: &DistributedPlan, buyer: NodeId) -> Vec<(usize, NodeId, u64)> {
    plan.purchases
        .iter()
        .filter(|p| p.offer.seller != buyer)
        .map(|p| (p.slot, p.offer.seller, p.offer.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // BuyerEngine is exercised end-to-end through the drivers (driver.rs)
    // and the integration tests; here we pin the small state-machine rules.

    use qt_catalog::{
        AttrType, CatalogBuilder, PartId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_query::parse_query;

    fn dict_and_query() -> (Arc<SchemaDict>, qt_query::Query) {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int)]),
            Partitioning::Single,
        );
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(10, &[10]));
        b.place(PartId::new(r, 0), NodeId(1));
        let cat = b.build();
        let q = parse_query(&cat.dict, "SELECT a FROM r").unwrap();
        (cat.dict, q)
    }

    #[test]
    fn start_asks_the_original_query() {
        let (dict, q) = dict_and_query();
        let mut buyer = BuyerEngine::new(NodeId(0), dict, q.clone(), QtConfig::default());
        let items = buyer.start();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].query, q);
        assert!(items[0].ref_value.is_infinite(), "no prior estimate");
    }

    #[test]
    fn no_offers_means_done_without_plan() {
        let (dict, q) = dict_and_query();
        let mut buyer = BuyerEngine::new(NodeId(0), dict, q, QtConfig::default());
        buyer.start();
        match buyer.close_round() {
            RoundOutcome::Done => {}
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(buyer.best.is_none());
        assert_eq!(buyer.history.len(), 1);
        assert!(buyer.history[0].best_cost.is_infinite());
    }

    #[test]
    fn value_book_learns_from_offers() {
        let (dict, q) = dict_and_query();
        let mut buyer = BuyerEngine::new(NodeId(0), dict, q.clone(), QtConfig::default());
        buyer.start();
        let key = Offer::query_key(&q);
        assert!(buyer.value_book.estimate(key).is_infinite());
        buyer.receive_offers(vec![Offer {
            id: 1,
            seller: NodeId(1),
            query: q.clone(),
            props: qt_cost::AnswerProperties::timed(3.0, 10.0, 80.0),
            true_cost: 3.0,
            kind: crate::offer::OfferKind::Rows,
            round: 0,
            subcontracts: vec![],
        }]);
        assert!(buyer.value_book.estimate(key).is_finite());
    }
}
