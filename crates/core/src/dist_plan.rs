//! Distributed execution plans: purchased sub-results plus buyer-local
//! assembly.

use crate::offer::Offer;
use qt_catalog::{NodeId, SchemaDict};
use qt_exec::{execute, AggSpec, DataStore, ExecError, PhysPlan, Table};
use qt_query::{Col, Query, SelectItem};
use std::collections::BTreeMap;

/// One purchased offer, wired to an input slot of the assembly plan.
#[derive(Debug, Clone)]
pub struct Purchase {
    /// The winning offer.
    pub offer: Offer,
    /// Which [`PhysPlan::Input`] slot its delivered rows fill.
    pub slot: usize,
    /// The value agreed in the nested negotiation (defaults to the ask
    /// score under sealed-bid).
    pub agreed_value: f64,
}

/// Cost estimates of a distributed plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Response time: deliveries happen in parallel, buyer work after —
    /// `max(delivery) + buyer_compute`.
    pub response_time: f64,
    /// The additive objective the plan generator minimizes:
    /// `Σ agreed values + buyer_compute`.
    pub additive_cost: f64,
    /// Total monetary price of the purchases.
    pub price: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Buyer-local compute seconds.
    pub buyer_compute: f64,
}

/// A complete distributed execution plan for a query: buy these answers,
/// assemble them like this.
#[derive(Debug, Clone)]
pub struct DistributedPlan {
    /// The optimized query.
    pub query: Query,
    /// Purchases, indexed by their input slot.
    pub purchases: Vec<Purchase>,
    /// Buyer-local assembly over [`PhysPlan::Input`] slots (no scans).
    pub assembly: PhysPlan,
    /// Cost estimates.
    pub est: PlanEstimate,
}

/// The positional schema of an offer's delivered rows: the offered query's
/// `SELECT` in order, with synthetic marker columns for aggregate items (so
/// buyer-side re-aggregation plans can address them).
pub fn answer_schema(q: &Query) -> Vec<Col> {
    q.select
        .iter()
        .enumerate()
        .map(|(i, s)| match s {
            SelectItem::Col(c) => *c,
            SelectItem::Agg { arg, .. } => {
                let base = arg
                    .or(q.group_by.first().copied())
                    .unwrap_or(Col::new(*q.relations.keys().next().expect("FROM"), 0));
                Col::new(
                    base.rel,
                    qt_exec::plan::AGG_ATTR_BASE + i * 10_000 + base.attr,
                )
            }
        })
        .collect()
}

impl DistributedPlan {
    /// Number of distinct seller nodes purchased from.
    pub fn seller_count(&self) -> usize {
        let mut sellers: Vec<NodeId> = self.purchases.iter().map(|p| p.offer.seller).collect();
        sellers.sort_unstable();
        sellers.dedup();
        sellers.len()
    }

    /// Human-readable summary.
    pub fn describe(&self, dict: &SchemaDict) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "DistributedPlan: {} purchases from {} sellers, est. response {:.3}s (cost {:.3})",
            self.purchases.len(),
            self.seller_count(),
            self.est.response_time,
            self.est.additive_cost,
        );
        for p in &self.purchases {
            let _ = writeln!(
                s,
                "  [slot {}] buy from {} @ {:.3}s ({:?}): {}",
                p.slot,
                p.offer.seller,
                p.offer.props.total_time,
                p.offer.kind,
                p.offer.query.display_with(dict)
            );
        }
        let _ = write!(s, "  assemble:\n{}", indent(&self.assembly.pretty(), 4));
        s
    }

    /// Like [`execute_on`](Self::execute_on), but additionally traces
    /// per-operator row counts of the buyer assembly (for
    /// `EXPLAIN ANALYZE`-style output).
    pub fn execute_traced_on(
        &self,
        dict: &SchemaDict,
        stores: &BTreeMap<NodeId, DataStore>,
    ) -> Result<(Table, Vec<qt_exec::OpTrace>), ExecError> {
        let inputs = self.fetch_inputs(dict, stores)?;
        let empty = DataStore::new();
        qt_exec::execute_traced(&self.assembly, &empty, &inputs)
    }

    fn fetch_inputs(
        &self,
        dict: &SchemaDict,
        stores: &BTreeMap<NodeId, DataStore>,
    ) -> Result<Vec<Table>, ExecError> {
        let empty = DataStore::new();
        let mut inputs: Vec<Table> = vec![Vec::new(); self.purchases.len()];
        for p in &self.purchases {
            // Sink the naive plan's top-level filter into the join tree:
            // order-preserving, and it keeps scaled fragments from
            // materializing cross products.
            let plan = qt_optimizer::sink_predicates(&naive_plan(dict, &p.offer.query));
            inputs[p.slot] = if p.offer.subcontracts.is_empty() {
                let store = stores.get(&p.offer.seller).unwrap_or(&empty);
                execute(&plan, store, &[])?
            } else {
                let mut merged = stores.get(&p.offer.seller).cloned().unwrap_or_default();
                for (sub, _) in &p.offer.subcontracts {
                    if let Some(s) = stores.get(sub) {
                        merged.merge_from(s);
                    }
                }
                execute(&plan, &merged, &[])?
            };
        }
        Ok(inputs)
    }

    /// Execute the plan against per-node data stores: each purchase runs a
    /// straightforward plan for its offered query on the seller's store,
    /// then the buyer assembly combines the delivered tables.
    pub fn execute_on(
        &self,
        dict: &SchemaDict,
        stores: &BTreeMap<NodeId, DataStore>,
    ) -> Result<Table, ExecError> {
        let inputs = self.fetch_inputs(dict, stores)?;
        let empty = DataStore::new();
        execute(&self.assembly, &empty, &inputs)
    }

    /// Like [`execute_on`](Self::execute_on), but running every seller-side
    /// plan and the buyer assembly through the columnar executor. Returns
    /// the result (bit-identical to `execute_on` — the row executor is the
    /// oracle) plus merged spill counters and per-operator timings, which
    /// feed the `qt_cost::calibrate` loop.
    pub fn execute_columnar_on(
        &self,
        dict: &SchemaDict,
        stores: &BTreeMap<NodeId, DataStore>,
        cfg: &qt_exec::ColumnarConfig,
    ) -> Result<(Table, qt_exec::ColExecStats), ExecError> {
        let empty = DataStore::new();
        let mut merged_stats = qt_exec::ColExecStats::default();
        let absorb = |s: qt_exec::ColExecStats, into: &mut qt_exec::ColExecStats| {
            into.spill_files += s.spill_files;
            into.spill_rows += s.spill_rows;
            into.spill_bytes += s.spill_bytes;
            into.timings.extend(s.timings);
        };
        let mut inputs: Vec<Table> = vec![Vec::new(); self.purchases.len()];
        for p in &self.purchases {
            let plan = qt_optimizer::sink_predicates(&naive_plan(dict, &p.offer.query));
            let (rows, stats) = if p.offer.subcontracts.is_empty() {
                let store = stores.get(&p.offer.seller).unwrap_or(&empty);
                qt_exec::execute_columnar_with_stats(&plan, store, &[], cfg)?
            } else {
                let mut merged = stores.get(&p.offer.seller).cloned().unwrap_or_default();
                for (sub, _) in &p.offer.subcontracts {
                    if let Some(s) = stores.get(sub) {
                        merged.merge_from(s);
                    }
                }
                qt_exec::execute_columnar_with_stats(&plan, &merged, &[], cfg)?
            };
            inputs[p.slot] = rows;
            absorb(stats, &mut merged_stats);
        }
        let (result, stats) =
            qt_exec::execute_columnar_with_stats(&self.assembly, &empty, &inputs, cfg)?;
        absorb(stats, &mut merged_stats);
        Ok((result, merged_stats))
    }
}

fn indent(s: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    s.lines().map(|l| format!("{pad}{l}\n")).collect()
}

/// A correct (not optimized) physical plan for `q`: union-of-scans per
/// relation, nested-loop joins, filter, aggregate, sort, project. Used to
/// *execute* purchased offers; sellers cost offers with their real
/// optimizers, but any correct plan yields the same rows.
pub fn naive_plan(dict: &SchemaDict, q: &Query) -> PhysPlan {
    let mut plan: Option<PhysPlan> = None;
    for (&rel, parts) in &q.relations {
        let arity = dict.rel(rel).schema.arity();
        let scans: Vec<PhysPlan> = parts
            .iter()
            .map(|idx| PhysPlan::Scan {
                part: qt_catalog::PartId::new(rel, idx),
                arity,
            })
            .collect();
        let leaf = if scans.len() == 1 {
            scans.into_iter().next().expect("one scan")
        } else {
            PhysPlan::Union { inputs: scans }
        };
        plan = Some(match plan {
            None => leaf,
            Some(p) => PhysPlan::NlJoin {
                left: Box::new(p),
                right: Box::new(leaf),
                predicates: vec![],
            },
        });
    }
    let mut plan = plan.expect("query has relations");
    if !q.predicates.is_empty() {
        plan = PhysPlan::Filter {
            input: Box::new(plan),
            predicates: q.predicates.clone(),
        };
    }
    if q.is_aggregate() {
        let aggs: Vec<AggSpec> = q
            .select
            .iter()
            .filter_map(|s| match s {
                SelectItem::Agg { func, arg } => Some(AggSpec {
                    func: *func,
                    arg: *arg,
                }),
                SelectItem::Col(_) => None,
            })
            .collect();
        plan = PhysPlan::HashAggregate {
            input: Box::new(plan),
            group_by: q.group_by.clone(),
            aggs,
        };
        let agg_schema = plan.schema();
        let mut agg_idx = q.group_by.len();
        let cols: Vec<Col> = q
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => *c,
                SelectItem::Agg { .. } => {
                    let c = agg_schema[agg_idx];
                    agg_idx += 1;
                    c
                }
            })
            .collect();
        plan = PhysPlan::Project {
            input: Box::new(plan),
            cols,
        };
    } else {
        if !q.order_by.is_empty() {
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys: q.order_by.clone(),
            };
        }
        let cols: Vec<Col> = q
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => *c,
                SelectItem::Agg { .. } => unreachable!(),
            })
            .collect();
        plan = PhysPlan::Project {
            input: Box::new(plan),
            cols,
        };
    }
    plan
}

/// Recompute a [`PlanEstimate`] from purchases and buyer compute.
pub fn estimate_from(purchases: &[Purchase], buyer_compute: f64, rows: f64) -> PlanEstimate {
    let max_delivery = purchases
        .iter()
        .map(|p| p.offer.props.total_time)
        .fold(0.0f64, f64::max);
    PlanEstimate {
        response_time: max_delivery + buyer_compute,
        additive_cost: purchases.iter().map(|p| p.agreed_value).sum::<f64>() + buyer_compute,
        price: purchases.iter().map(|p| p.offer.props.price).sum(),
        rows,
        buyer_compute,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::OfferKind;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, PartId, PartitionStats, Partitioning, RelationSchema,
        Value,
    };
    use qt_exec::evaluate_query;
    use qt_exec::reference::same_rows;
    use qt_query::parse_query;

    fn setup() -> (Catalog, DataStore) {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
            Partitioning::Hash { attr: 0, parts: 2 },
        );
        let s = b.add_relation(
            RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
            Partitioning::Single,
        );
        for i in 0..2 {
            b.set_stats(PartId::new(r, i), PartitionStats::synthetic(8, &[8, 8]));
            b.place(PartId::new(r, i), NodeId(0));
        }
        b.set_stats(PartId::new(s, 0), PartitionStats::synthetic(4, &[4, 2]));
        b.place(PartId::new(s, 0), NodeId(0));
        let cat = b.build();
        let mut store = DataStore::new();
        store.load_relation(
            &cat.dict,
            r,
            (0..8)
                .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
                .collect(),
        );
        store.load_relation(
            &cat.dict,
            s,
            (0..4)
                .map(|i| vec![Value::Int(i), Value::Int(i % 2)])
                .collect(),
        );
        (cat, store)
    }

    #[test]
    fn naive_plan_matches_reference_on_spj() {
        let (cat, store) = setup();
        for sql in [
            "SELECT b FROM r WHERE a = 1",
            "SELECT b, c FROM r, s WHERE r.a = s.a",
            "SELECT b FROM r ORDER BY b",
            "SELECT c, SUM(b) FROM r, s WHERE r.a = s.a GROUP BY c",
            "SELECT COUNT(*) FROM r",
        ] {
            let q = parse_query(&cat.dict, sql).unwrap();
            let plan = naive_plan(&cat.dict, &q);
            let got = execute(&plan, &store, &[]).unwrap();
            let want = evaluate_query(&q, &store).unwrap();
            assert!(same_rows(&got, &want), "{sql}");
        }
    }

    #[test]
    fn answer_schema_matches_select_arity() {
        let (cat, _) = setup();
        let q = parse_query(
            &cat.dict,
            "SELECT c, SUM(b) FROM r, s WHERE r.a = s.a GROUP BY c",
        )
        .unwrap();
        let schema = answer_schema(&q);
        assert_eq!(schema.len(), 2);
        assert!(schema[1].attr >= qt_exec::plan::AGG_ATTR_BASE);
        // Distinct markers for distinct aggregate positions.
        let q2 = parse_query(
            &cat.dict,
            "SELECT c, SUM(b), COUNT(b) FROM r, s WHERE r.a = s.a GROUP BY c",
        )
        .unwrap();
        let s2 = answer_schema(&q2);
        assert_ne!(s2[1], s2[2]);
    }

    #[test]
    fn estimate_takes_max_delivery() {
        let (cat, _) = setup();
        let q = parse_query(&cat.dict, "SELECT b FROM r").unwrap();
        let mk = |t: f64, slot: usize| Purchase {
            offer: Offer {
                id: slot as u64,
                seller: NodeId(slot as u32),
                query: q.clone(),
                props: qt_cost::AnswerProperties::timed(t, 10.0, 80.0),
                true_cost: t,
                kind: OfferKind::Rows,
                round: 0,
                subcontracts: vec![],
            },
            slot,
            agreed_value: t,
        };
        let est = estimate_from(&[mk(10.0, 0), mk(4.0, 1)], 1.0, 20.0);
        assert!((est.response_time - 11.0).abs() < 1e-9);
        assert!((est.additive_cost - 15.0).abs() < 1e-9);
    }
}
