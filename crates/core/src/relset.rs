//! [`RelSet`] — a relation-subset bitmask for the plan generator's DP.
//!
//! The generator (B4) works over subsets of the target query's `FROM` list.
//! It numbers the relations 0..n (ascending `RelId`) once per invocation and
//! represents every subset as one machine word, so the hot loops — subset
//! masks, DP table keys, disjointness/containment tests, join-site tracking —
//! are single ALU ops instead of `BTreeSet<RelId>` allocations and tree
//! walks. `BTreeSet<RelId>` survives only at the API boundary
//! ([`GenOutput::join_sites`](crate::plangen::GenOutput) and
//! [`Query::restrict_to_rels`](qt_query::Query::restrict_to_rels)).

/// A set of relation *indices* (positions in the generator's relation
/// numbering), packed into a `u64`. Supports queries of up to 64 relations —
/// far beyond anything the DP can enumerate anyway.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RelSet(u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// The singleton `{i}`.
    pub fn single(i: usize) -> RelSet {
        debug_assert!(i < 64);
        RelSet(1u64 << i)
    }

    /// The full set `{0, …, n-1}`.
    pub fn full(n: usize) -> RelSet {
        debug_assert!(n <= 64);
        if n == 0 {
            RelSet(0)
        } else {
            RelSet(u64::MAX >> (64 - n))
        }
    }

    /// From a raw bitmask.
    pub fn from_bits(bits: u64) -> RelSet {
        RelSet(bits)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Insert index `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < 64);
        self.0 |= 1u64 << i;
    }

    /// Does the set contain index `i`?
    pub fn contains(self, i: usize) -> bool {
        i < 64 && self.0 >> i & 1 == 1
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Do the sets share no member?
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Member indices, ascending.
    pub fn iter(self) -> RelSetIter {
        RelSetIter(self.0)
    }
}

impl std::fmt::Debug for RelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the member indices of a [`RelSet`], ascending.
pub struct RelSetIter(u64);

impl Iterator for RelSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelSetIter {}

impl FromIterator<usize> for RelSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> RelSet {
        let mut s = RelSet::EMPTY;
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let a: RelSet = [0, 2, 5].into_iter().collect();
        let b: RelSet = [1, 2].into_iter().collect();
        assert_eq!(a.len(), 3);
        assert!(a.contains(2) && !a.contains(1));
        assert_eq!(a.union(b), [0, 1, 2, 5].into_iter().collect());
        assert_eq!(a.intersect(b), RelSet::single(2));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(RelSet::single(3)));
        assert!(RelSet::single(2).is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(RelSet::full(0), RelSet::EMPTY);
        assert_eq!(RelSet::full(3).bits(), 0b111);
        assert_eq!(RelSet::full(64).len(), 64);
        assert!(RelSet::EMPTY.is_empty());
        assert_eq!(format!("{:?}", RelSet::full(2)), "{0, 1}");
    }
}
