//! Buyer-side contract lifecycle: two-phase awards, execution leases, and
//! deterministic failover to runner-up offers or scoped re-trades.
//!
//! The trading loop ends with the buyer holding a plan; with
//! [`QtConfig::enable_contracts`] on, each purchase then becomes a
//! *contract* driven through the `qt_trade::ContractState` machine by the
//! [`ContractController`]. The controller is a pure state machine: every
//! event handler returns a list of [`ContractAction`]s for the driver to
//! translate into simulator sends and timers. Because all decisions are
//! made here — single-threaded, over `BTreeMap`-ordered state, with
//! runner-ups picked by a total order over `(score, seller, offer id)` —
//! repaired plans are bit-deterministic across `QT_THREADS`, fault seeds,
//! and reply-arrival orders.
//!
//! Failover is layered: on winner loss the slot first re-awards to the best
//! surviving runner-up in the persisted bid book (every Pareto offer the
//! round produced, not just the winner); when the book runs dry the buyer
//! runs a *scoped re-trade* — one mini QT round whose RFB is restricted to
//! the lost subqueries — and splices the repaired subplan into the
//! distributed plan. Both repairs recompute the plan estimate, so cost
//! figures stay honest.

use crate::config::QtConfig;
use crate::dist_plan::{estimate_from, DistributedPlan};
use crate::offer::{Offer, OfferKind, RfbItem};
use qt_catalog::NodeId;
use qt_query::Query;
use qt_trade::ContractState;
use std::collections::{BTreeMap, BTreeSet};

/// Sentinel contract id of a pre-lifecycle one-way award notice: the seller
/// records the win and sends nothing back, preserving bit-identical message
/// counts for `enable_contracts = false` runs.
pub const LEGACY_CONTRACT: u64 = u64::MAX;

/// Scoped re-trade rounds are numbered from here down from `u32::MAX`, far
/// above any trading round (`max_iterations` is tiny), so one `round` field
/// serves both phases and sellers memoize repair RFBs like any other.
pub const REPAIR_ROUND_BASE: u32 = u32::MAX - 16;

/// Whether a round number denotes a scoped re-trade, not a trading round.
pub fn is_repair_round(round: u32) -> bool {
    round > REPAIR_ROUND_BASE
}

/// What the driver must do on the wire for the controller. The controller
/// never touches the simulator; drivers map actions onto `Ctx` calls (and
/// the direct driver onto analytic counters).
#[derive(Debug, Clone)]
pub enum ContractAction {
    /// Send (or retransmit) an award for `offer` under contract id
    /// `contract` to `seller`.
    SendAward {
        /// The awarded seller.
        seller: NodeId,
        /// Contract id.
        contract: u64,
        /// Awarded offer id.
        offer: u64,
    },
    /// Arm the award-ack deadline for `contract`.
    ArmAwardTimer {
        /// Contract id.
        contract: u64,
        /// Seconds until the deadline fires.
        delay: f64,
    },
    /// Send a zero-byte lease heartbeat to the contract's seller.
    SendLease {
        /// The leasing seller.
        seller: NodeId,
        /// Contract id.
        contract: u64,
    },
    /// Arm the lease-renewal check for `contract`.
    ArmLeaseTimer {
        /// Contract id.
        contract: u64,
        /// Seconds until the check fires.
        delay: f64,
    },
    /// Tell the seller its contract completed and the lease is released.
    SendRelease {
        /// The released seller.
        seller: NodeId,
        /// Contract id.
        contract: u64,
    },
    /// Broadcast a scoped re-trade RFB for the lost subqueries.
    SendRetrade {
        /// Live remote sellers to ask.
        targets: Vec<NodeId>,
        /// Repair round number (`> REPAIR_ROUND_BASE`).
        round: u32,
        /// The lost subqueries out for re-bid.
        items: Vec<RfbItem>,
    },
    /// Arm the re-trade response deadline.
    ArmRetradeTimer {
        /// Repair round number.
        round: u32,
        /// Seconds until the deadline fires.
        delay: f64,
    },
}

/// Lifecycle counters, accumulated by the controller and surfaced through
/// `QtOutcome` / `qt_net::Metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContractStats {
    /// Contracts created (initial awards, re-awards, and re-trade awards).
    pub contracts_awarded: u64,
    /// Distinct plan slots whose replacement contract completed.
    pub contracts_repaired: u64,
    /// Re-awards to a runner-up offer from the bid book.
    pub reawards: u64,
    /// Scoped re-trade rounds run.
    pub rescoped_trades: u64,
    /// Award messages sent (including retransmissions).
    pub awards_sent: u64,
    /// Award retransmissions after an unanswered ack deadline.
    pub award_retries: u64,
    /// Awards whose ack never arrived within the retry budget.
    pub lost_awards: u64,
    /// Leases expired after consecutive missed renewals.
    pub lease_expiries: u64,
    /// Slots abandoned with book and re-trade budget both exhausted.
    pub failed_repairs: u64,
}

impl ContractStats {
    /// Fold another session's counters into this aggregate.
    pub fn accumulate(&mut self, other: &ContractStats) {
        self.contracts_awarded += other.contracts_awarded;
        self.contracts_repaired += other.contracts_repaired;
        self.reawards += other.reawards;
        self.rescoped_trades += other.rescoped_trades;
        self.awards_sent += other.awards_sent;
        self.award_retries += other.award_retries;
        self.lost_awards += other.lost_awards;
        self.lease_expiries += other.lease_expiries;
        self.failed_repairs += other.failed_repairs;
    }
}

/// One contract's final (or current) standing, for `QtOutcome.contracts`
/// and the `qtsh \contracts` dump.
#[derive(Debug, Clone)]
pub struct ContractReport {
    /// Contract id.
    pub id: u64,
    /// Plan slot the contract fills.
    pub slot: usize,
    /// The awarded seller.
    pub seller: NodeId,
    /// The awarded offer id.
    pub offer: u64,
    /// Lifecycle state label (`qt_trade::ContractState::label`).
    pub state: &'static str,
    /// Whether this contract replaced a lost one (re-award or re-trade).
    pub replacement: bool,
}

struct Contract {
    id: u64,
    slot: usize,
    seller: NodeId,
    offer: u64,
    state: ContractState,
    /// Award retransmissions so far.
    attempts: u32,
    /// Consecutive missed lease renewals.
    misses: u32,
    /// Successful lease renewals.
    probes: u32,
    /// Renewed since the last lease check.
    renewed: bool,
    replacement: bool,
}

/// Per-slot bid book: the subquery identity plus every competing offer,
/// persisted from the trading rounds for failover.
struct Slot {
    query: Query,
    kind: OfferKind,
    /// Candidates sorted by `(valuation score, seller, id)` — the failover
    /// preference order.
    candidates: Vec<Offer>,
    /// Sellers already awarded this slot (never re-tried).
    tried: BTreeSet<NodeId>,
}

/// Drives every contract of one distributed plan to a terminal state.
pub struct ContractController {
    buyer: NodeId,
    cfg: QtConfig,
    /// The plan under management; repairs splice replacement purchases in
    /// and recompute `est`.
    pub plan: DistributedPlan,
    slots: Vec<Slot>,
    contracts: BTreeMap<u64, Contract>,
    /// Contract-id namespace base (0 single-query; `(session+1) << 32` in
    /// the serving layer, mirroring its request-id encoding).
    base: u64,
    next: u64,
    /// Sellers declared lost (award retries exhausted or lease expired).
    pub lost: BTreeSet<NodeId>,
    repaired_slots: BTreeSet<usize>,
    /// Slots abandoned after the book and the re-trade budget ran dry.
    pub failed_slots: BTreeSet<usize>,
    // Scoped re-trade state.
    retrade_pending: BTreeSet<usize>,
    retrade_round: Option<u32>,
    retrade_targets: BTreeSet<NodeId>,
    retrade_answered: BTreeSet<NodeId>,
    retrade_offers: BTreeMap<NodeId, Vec<Offer>>,
    retrade_rounds_used: u32,
    remote_sellers: Vec<NodeId>,
    /// Lifecycle counters.
    pub stats: ContractStats,
    /// True once every contract is terminal and no re-trade is in flight.
    pub settled: bool,
}

impl ContractController {
    /// Take ownership of `plan`, persist the bid book from `all_offers`,
    /// and emit the initial award actions. Buyer-local purchases complete
    /// instantly (no wire).
    pub fn new(
        buyer: NodeId,
        cfg: QtConfig,
        plan: DistributedPlan,
        all_offers: &[Offer],
        remote_sellers: Vec<NodeId>,
        base: u64,
    ) -> (Self, Vec<ContractAction>) {
        let slots: Vec<Slot> = plan
            .purchases
            .iter()
            .map(|p| {
                let mut candidates: Vec<Offer> = all_offers
                    .iter()
                    .filter(|o| o.query == p.offer.query && o.kind == p.offer.kind)
                    .cloned()
                    .collect();
                sort_candidates(&mut candidates, &cfg);
                Slot {
                    query: p.offer.query.clone(),
                    kind: p.offer.kind,
                    candidates,
                    tried: BTreeSet::new(),
                }
            })
            .collect();
        let mut ctl = ContractController {
            buyer,
            cfg,
            plan,
            slots,
            contracts: BTreeMap::new(),
            base,
            next: 0,
            lost: BTreeSet::new(),
            repaired_slots: BTreeSet::new(),
            failed_slots: BTreeSet::new(),
            retrade_pending: BTreeSet::new(),
            retrade_round: None,
            retrade_targets: BTreeSet::new(),
            retrade_answered: BTreeSet::new(),
            retrade_offers: BTreeMap::new(),
            retrade_rounds_used: 0,
            remote_sellers,
            stats: ContractStats::default(),
            settled: false,
        };
        let mut actions = Vec::new();
        for slot in 0..ctl.plan.purchases.len() {
            let offer = ctl.plan.purchases[slot].offer.clone();
            ctl.award(slot, &offer, false, &mut actions);
        }
        ctl.check_settled();
        (ctl, actions)
    }

    /// Create a contract for `offer` at `slot` and emit its award (or
    /// complete it instantly when the buyer sells to itself).
    fn award(
        &mut self,
        slot: usize,
        offer: &Offer,
        replacement: bool,
        actions: &mut Vec<ContractAction>,
    ) {
        let id = self.base + self.next;
        self.next += 1;
        self.slots[slot].tried.insert(offer.seller);
        self.stats.contracts_awarded += 1;
        let mut c = Contract {
            id,
            slot,
            seller: offer.seller,
            offer: offer.id,
            state: ContractState::Proposed,
            attempts: 0,
            misses: 0,
            probes: 0,
            renewed: false,
            replacement,
        };
        if offer.seller == self.buyer {
            // The buyer's own data needs no wire protocol: the "delivery" is
            // local, so the contract completes on the spot.
            transition(&mut c, ContractState::Completed);
            if replacement {
                self.repaired_slots.insert(slot);
                self.stats.contracts_repaired = self.repaired_slots.len() as u64;
            }
        } else {
            transition(&mut c, ContractState::Awarded);
            self.stats.awards_sent += 1;
            actions.push(ContractAction::SendAward {
                seller: offer.seller,
                contract: id,
                offer: offer.id,
            });
            actions.push(ContractAction::ArmAwardTimer {
                contract: id,
                delay: self.cfg.award_timeout,
            });
        }
        self.contracts.insert(id, c);
    }

    /// The seller acknowledged an award: the contract moves to `Leased` and
    /// the heartbeat cycle starts. Duplicate acks are ignored.
    pub fn on_award_ack(&mut self, contract: u64) -> Vec<ContractAction> {
        let mut actions = Vec::new();
        if let Some(c) = self.contracts.get_mut(&contract) {
            if c.state == ContractState::Awarded {
                transition(c, ContractState::Acked);
                transition(c, ContractState::Leased);
                actions.push(ContractAction::SendLease {
                    seller: c.seller,
                    contract,
                });
                actions.push(ContractAction::ArmLeaseTimer {
                    contract,
                    delay: self.cfg.lease_interval,
                });
            }
        }
        actions
    }

    /// The seller refused the award: fail the slot over immediately.
    pub fn on_award_decline(&mut self, contract: u64) -> Vec<ContractAction> {
        let mut actions = Vec::new();
        let Some(c) = self.contracts.get_mut(&contract) else {
            return actions;
        };
        if c.state != ContractState::Awarded {
            return actions;
        }
        transition(c, ContractState::Declined);
        let slot = c.slot;
        // A decline is a refusal, not a loss: the seller stays live (its
        // other contracts stand) but is never re-tried for this slot (it is
        // already in `tried`).
        self.repair_slot(slot, &mut actions);
        self.check_settled();
        actions
    }

    /// The award-ack deadline fired: retransmit with capped exponential
    /// backoff, or declare the winner lost and fail over.
    pub fn on_award_timeout(&mut self, contract: u64) -> Vec<ContractAction> {
        let mut actions = Vec::new();
        let Some(c) = self.contracts.get_mut(&contract) else {
            return actions;
        };
        if c.state != ContractState::Awarded {
            return actions; // stale timer: the contract already moved on
        }
        if c.attempts < self.cfg.max_award_retries {
            c.attempts += 1;
            self.stats.award_retries += 1;
            self.stats.awards_sent += 1;
            let delay = (self.cfg.award_timeout
                * self.cfg.rfb_retry_backoff.powi(c.attempts as i32))
            .min(8.0 * self.cfg.award_timeout);
            actions.push(ContractAction::SendAward {
                seller: c.seller,
                contract,
                offer: c.offer,
            });
            actions.push(ContractAction::ArmAwardTimer { contract, delay });
        } else {
            self.stats.lost_awards += 1;
            self.fail_contract(contract, &mut actions);
            self.check_settled();
        }
        actions
    }

    /// The seller renewed its lease.
    pub fn on_lease_ack(&mut self, contract: u64) -> Vec<ContractAction> {
        if let Some(c) = self.contracts.get_mut(&contract) {
            if c.state == ContractState::Leased {
                c.renewed = true;
            }
        }
        Vec::new()
    }

    /// The lease-renewal check fired: probe again, complete after enough
    /// successful renewals, or expire after too many consecutive misses.
    pub fn on_lease_tick(&mut self, contract: u64) -> Vec<ContractAction> {
        let mut actions = Vec::new();
        let Some(c) = self.contracts.get_mut(&contract) else {
            return actions;
        };
        if c.state != ContractState::Leased {
            return actions;
        }
        if c.renewed {
            c.renewed = false;
            c.misses = 0;
            c.probes += 1;
            if c.probes >= self.cfg.lease_probes {
                // The winner held its lease through probation: the contract
                // stands and the seller is released from heartbeating.
                transition(c, ContractState::Completed);
                actions.push(ContractAction::SendRelease {
                    seller: c.seller,
                    contract,
                });
                if c.replacement {
                    let slot = c.slot;
                    self.repaired_slots.insert(slot);
                    self.stats.contracts_repaired = self.repaired_slots.len() as u64;
                }
                self.check_settled();
                return actions;
            }
        } else {
            c.misses += 1;
            if c.misses >= self.cfg.max_lease_misses {
                self.stats.lease_expiries += 1;
                self.fail_contract(contract, &mut actions);
                self.check_settled();
                return actions;
            }
        }
        actions.push(ContractAction::SendLease {
            seller: c.seller,
            contract,
        });
        actions.push(ContractAction::ArmLeaseTimer {
            contract,
            delay: self.cfg.lease_interval,
        });
        actions
    }

    /// Offers answering a scoped re-trade RFB arrived.
    pub fn on_retrade_offers(
        &mut self,
        from: NodeId,
        round: u32,
        offers: Vec<Offer>,
    ) -> Vec<ContractAction> {
        let mut actions = Vec::new();
        if self.retrade_round != Some(round) || !self.retrade_targets.contains(&from) {
            return actions; // stale or unsolicited
        }
        if self.retrade_answered.insert(from) {
            self.retrade_offers.insert(from, offers);
            if self.retrade_answered.len() == self.retrade_targets.len() {
                self.close_retrade(&mut actions);
            }
        }
        actions
    }

    /// The re-trade response deadline fired: close the round on whatever
    /// arrived.
    pub fn on_retrade_timeout(&mut self, round: u32) -> Vec<ContractAction> {
        let mut actions = Vec::new();
        if self.retrade_round == Some(round) {
            self.close_retrade(&mut actions);
        }
        actions
    }

    /// Declare a contract's seller lost, expire every live contract it
    /// holds, and fail the affected slots over.
    fn fail_contract(&mut self, contract: u64, actions: &mut Vec<ContractAction>) {
        let Some(c) = self.contracts.get_mut(&contract) else {
            return;
        };
        let seller = c.seller;
        transition(c, ContractState::Expired);
        self.lost.insert(seller);
        // The loss is per-node: proactively expire the seller's other live
        // contracts instead of waiting for their own timers.
        let mut slots = vec![c.slot];
        let others: Vec<u64> = self
            .contracts
            .values()
            .filter(|o| o.seller == seller && !o.state.is_terminal())
            .map(|o| o.id)
            .collect();
        for id in others {
            let o = self.contracts.get_mut(&id).expect("contract exists");
            transition(o, ContractState::Expired);
            slots.push(o.slot);
        }
        for slot in slots {
            self.repair_slot(slot, actions);
        }
    }

    /// Fail one slot over: re-award to the best surviving runner-up in the
    /// bid book, or queue the slot for a scoped re-trade.
    fn repair_slot(&mut self, slot: usize, actions: &mut Vec<ContractAction>) {
        let runner_up = {
            let s = &self.slots[slot];
            s.candidates
                .iter()
                .find(|o| {
                    !self.lost.contains(&o.seller)
                        && !s.tried.contains(&o.seller)
                        && o.subcontracts.iter().all(|(n, _)| !self.lost.contains(n))
                })
                .cloned()
        };
        match runner_up {
            Some(offer) => {
                self.stats.reawards += 1;
                self.splice(slot, &offer);
                self.award(slot, &offer, true, actions);
            }
            None => {
                self.retrade_pending.insert(slot);
                if self.retrade_round.is_none() {
                    self.start_retrade(actions);
                }
            }
        }
    }

    /// Replace the slot's purchase with `offer` and recompute the plan
    /// estimate, keeping cost figures honest after repair.
    fn splice(&mut self, slot: usize, offer: &Offer) {
        let p = &mut self.plan.purchases[slot];
        p.offer = offer.clone();
        p.agreed_value = self.cfg.valuation.score(&offer.props);
        let rows = self.plan.est.rows;
        let buyer_compute = self.plan.est.buyer_compute;
        self.plan.est = estimate_from(&self.plan.purchases, buyer_compute, rows);
    }

    /// Open a scoped re-trade round for the queued slots, or abandon them
    /// when the budget ran dry.
    fn start_retrade(&mut self, actions: &mut Vec<ContractAction>) {
        if self.retrade_pending.is_empty() {
            return;
        }
        if self.retrade_rounds_used >= self.cfg.max_retrade_rounds {
            let pending: Vec<usize> = self.retrade_pending.iter().copied().collect();
            for slot in pending {
                self.abandon(slot);
            }
            self.retrade_pending.clear();
            return;
        }
        let targets: Vec<NodeId> = self
            .remote_sellers
            .iter()
            .copied()
            .filter(|s| !self.lost.contains(s))
            .collect();
        if targets.is_empty() {
            let pending: Vec<usize> = self.retrade_pending.iter().copied().collect();
            for slot in pending {
                self.abandon(slot);
            }
            self.retrade_pending.clear();
            return;
        }
        self.retrade_rounds_used += 1;
        self.stats.rescoped_trades += 1;
        let round = REPAIR_ROUND_BASE + self.retrade_rounds_used;
        let items: Vec<RfbItem> = self
            .retrade_pending
            .iter()
            .map(|&slot| RfbItem {
                query: self.slots[slot].query.clone(),
                ref_value: self.plan.purchases[slot].agreed_value,
            })
            .collect();
        self.retrade_round = Some(round);
        self.retrade_targets = targets.iter().copied().collect();
        self.retrade_answered.clear();
        self.retrade_offers.clear();
        actions.push(ContractAction::SendRetrade {
            targets,
            round,
            items,
        });
        actions.push(ContractAction::ArmRetradeTimer {
            round,
            delay: self.cfg.seller_timeout,
        });
    }

    /// Close the re-trade round: consume replies in ascending seller order
    /// (determinism), refill the books, award repaired slots, and re-open
    /// for any still uncovered.
    fn close_retrade(&mut self, actions: &mut Vec<ContractAction>) {
        self.retrade_round = None;
        let offers: Vec<Offer> = std::mem::take(&mut self.retrade_offers)
            .into_values()
            .flatten()
            .collect();
        self.retrade_targets.clear();
        self.retrade_answered.clear();
        // Fresh bids extend every matching slot's book, then the ordinary
        // runner-up rule picks winners — a re-trade is just a book refill.
        for slot in &mut self.slots {
            slot.candidates.extend(
                offers
                    .iter()
                    .filter(|o| o.query == slot.query && o.kind == slot.kind)
                    .cloned(),
            );
            let cfg = &self.cfg;
            sort_candidates(&mut slot.candidates, cfg);
            slot.candidates.dedup_by_key(|o| (o.seller, o.id));
        }
        let pending: Vec<usize> = std::mem::take(&mut self.retrade_pending)
            .into_iter()
            .collect();
        for slot in pending {
            self.repair_slot(slot, actions);
        }
        // Slots the refill still could not cover queue another round (or
        // abandonment) via repair_slot; open it now.
        if self.retrade_round.is_none() && !self.retrade_pending.is_empty() {
            self.start_retrade(actions);
        }
        self.check_settled();
    }

    /// Give a slot up: book exhausted and no re-trade budget left.
    fn abandon(&mut self, slot: usize) {
        self.stats.failed_repairs += 1;
        self.failed_slots.insert(slot);
    }

    /// Whether every slot is backed by a completed-or-live contract from a
    /// live seller (no abandoned slots).
    pub fn plan_valid(&self) -> bool {
        self.failed_slots.is_empty()
    }

    fn check_settled(&mut self) {
        self.settled = self.retrade_round.is_none()
            && self.retrade_pending.is_empty()
            && self.contracts.values().all(|c| c.state.is_terminal());
    }

    /// Per-contract standing, in contract-id order.
    pub fn reports(&self) -> Vec<ContractReport> {
        self.contracts
            .values()
            .map(|c| ContractReport {
                id: c.id,
                slot: c.slot,
                seller: c.seller,
                offer: c.offer,
                state: c.state.label(),
                replacement: c.replacement,
            })
            .collect()
    }

    /// Seller of a live contract, if any (used by drivers to label
    /// messages).
    pub fn contract_seller(&self, contract: u64) -> Option<NodeId> {
        self.contracts.get(&contract).map(|c| c.seller)
    }
}

/// The failover preference order: best valuation score first, ties broken
/// by seller then offer id — a total order, so repairs are deterministic.
fn sort_candidates(candidates: &mut [Offer], cfg: &QtConfig) {
    candidates.sort_by(|a, b| {
        cfg.valuation
            .score(&a.props)
            .total_cmp(&cfg.valuation.score(&b.props))
            .then(a.seller.cmp(&b.seller))
            .then(a.id.cmp(&b.id))
    });
}

fn transition(c: &mut Contract, to: ContractState) {
    debug_assert!(
        c.state.may_transition(to),
        "illegal contract transition {:?} -> {to:?}",
        c.state
    );
    c.state = to;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist_plan::Purchase;
    use qt_catalog::{
        AttrType, CatalogBuilder, PartId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_cost::AnswerProperties;
    use qt_exec::PhysPlan;
    use qt_query::parse_query;

    fn fixture_query() -> Query {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int)]),
            Partitioning::Single,
        );
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(10, &[10]));
        b.place(PartId::new(r, 0), NodeId(1));
        let cat = b.build();
        parse_query(&cat.dict, "SELECT a FROM r").unwrap()
    }

    fn offer(id: u64, seller: u32, q: &Query, time: f64) -> Offer {
        Offer {
            id,
            seller: NodeId(seller),
            query: q.clone(),
            props: AnswerProperties::timed(time, 10.0, 80.0),
            true_cost: time,
            kind: OfferKind::Rows,
            round: 0,
            subcontracts: vec![],
        }
    }

    fn plan_of(q: &Query, winner: &Offer) -> DistributedPlan {
        let purchases = vec![Purchase {
            offer: winner.clone(),
            slot: 0,
            agreed_value: QtConfig::default().valuation.score(&winner.props),
        }];
        let est = estimate_from(&purchases, 0.0, 10.0);
        DistributedPlan {
            query: q.clone(),
            purchases,
            assembly: PhysPlan::Input {
                slot: 0,
                schema: vec![],
            },
            est,
        }
    }

    fn controller(offers: &[Offer], remotes: &[u32]) -> (ContractController, Vec<ContractAction>) {
        let q = fixture_query();
        let plan = plan_of(&q, &offers[0]);
        ContractController::new(
            NodeId(0),
            QtConfig::default(),
            plan,
            offers,
            remotes.iter().map(|&n| NodeId(n)).collect(),
            0,
        )
    }

    #[test]
    fn fault_free_lifecycle_completes_with_lease_probes() {
        let q = fixture_query();
        let offers = [offer(1, 1, &q, 1.0), offer(2, 2, &q, 2.0)];
        let (mut ctl, actions) = controller(&offers, &[1, 2]);
        assert!(matches!(
            actions[0],
            ContractAction::SendAward {
                seller: NodeId(1),
                contract: 0,
                offer: 1
            }
        ));
        assert!(matches!(actions[1], ContractAction::ArmAwardTimer { .. }));
        let acts = ctl.on_award_ack(0);
        assert!(matches!(acts[0], ContractAction::SendLease { .. }));
        // Duplicate acks (retransmitted award) are harmless.
        assert!(ctl.on_award_ack(0).is_empty());
        for probe in 0..QtConfig::default().lease_probes {
            ctl.on_lease_ack(0);
            let acts = ctl.on_lease_tick(0);
            if probe + 1 == QtConfig::default().lease_probes {
                assert!(matches!(acts[0], ContractAction::SendRelease { .. }));
            } else {
                assert!(matches!(acts[0], ContractAction::SendLease { .. }));
            }
        }
        assert!(ctl.settled);
        assert!(ctl.plan_valid());
        assert_eq!(ctl.stats.contracts_awarded, 1);
        assert_eq!(ctl.stats.contracts_repaired, 0);
        assert_eq!(ctl.reports()[0].state, "completed");
    }

    #[test]
    fn lost_award_reawards_the_runner_up() {
        let q = fixture_query();
        let offers = [offer(1, 1, &q, 1.0), offer(2, 2, &q, 2.0)];
        let (mut ctl, _) = controller(&offers, &[1, 2]);
        // Never acked: retries, then failover to seller 2.
        let mut retries = 0;
        loop {
            let acts = ctl.on_award_timeout(0);
            if let Some(ContractAction::SendAward { seller, .. }) = acts.first() {
                if *seller == NodeId(2) {
                    break; // the re-award
                }
                retries += 1;
                assert_eq!(*seller, NodeId(1));
            } else {
                panic!("expected a retransmission or a re-award");
            }
        }
        assert_eq!(retries, QtConfig::default().max_award_retries);
        assert_eq!(ctl.stats.lost_awards, 1);
        assert_eq!(ctl.stats.reawards, 1);
        assert!(ctl.lost.contains(&NodeId(1)));
        assert_eq!(ctl.plan.purchases[0].offer.seller, NodeId(2));
        // The replacement completes → the slot counts as repaired.
        let c = ctl.reports().last().unwrap().id;
        ctl.on_award_ack(c);
        for _ in 0..QtConfig::default().lease_probes {
            ctl.on_lease_ack(c);
            ctl.on_lease_tick(c);
        }
        assert!(ctl.settled);
        assert_eq!(ctl.stats.contracts_repaired, 1);
    }

    #[test]
    fn lease_expiry_fails_over_deterministically() {
        let q = fixture_query();
        let offers = [offer(1, 1, &q, 1.0), offer(2, 2, &q, 2.0)];
        let (mut ctl, _) = controller(&offers, &[1, 2]);
        ctl.on_award_ack(0);
        // The seller stops renewing: misses accumulate to expiry.
        let mut reawarded = false;
        for _ in 0..QtConfig::default().max_lease_misses {
            let acts = ctl.on_lease_tick(0);
            if acts.iter().any(
                |a| matches!(a, ContractAction::SendAward { seller, .. } if *seller == NodeId(2)),
            ) {
                reawarded = true;
            }
        }
        assert!(reawarded, "expiry must re-award the runner-up");
        assert_eq!(ctl.stats.lease_expiries, 1);
        assert_eq!(ctl.stats.reawards, 1);
    }

    #[test]
    fn decline_moves_on_without_marking_the_seller_lost() {
        let q = fixture_query();
        let offers = [offer(1, 1, &q, 1.0), offer(2, 2, &q, 2.0)];
        let (mut ctl, _) = controller(&offers, &[1, 2]);
        let acts = ctl.on_award_decline(0);
        assert!(acts.iter().any(
            |a| matches!(a, ContractAction::SendAward { seller, .. } if *seller == NodeId(2))
        ));
        assert!(!ctl.lost.contains(&NodeId(1)), "a decline is not a crash");
        assert_eq!(ctl.reports()[0].state, "declined");
    }

    #[test]
    fn exhausted_book_runs_a_scoped_retrade_and_splices() {
        let q = fixture_query();
        // Only the winner is in the book: loss forces a re-trade.
        let offers = [offer(1, 1, &q, 1.0)];
        let (mut ctl, _) = controller(&offers, &[1, 2]);
        let mut acts = Vec::new();
        for _ in 0..=QtConfig::default().max_award_retries {
            acts = ctl.on_award_timeout(0);
        }
        let Some(ContractAction::SendRetrade {
            targets,
            round,
            items,
        }) = acts
            .iter()
            .find(|a| matches!(a, ContractAction::SendRetrade { .. }))
        else {
            panic!("book exhausted: expected a scoped re-trade, got {acts:?}");
        };
        assert_eq!(targets, &[NodeId(2)], "only live sellers are asked");
        assert!(is_repair_round(*round));
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].query, q);
        assert_eq!(ctl.stats.rescoped_trades, 1);
        // Seller 2 answers; its bid is spliced in and awarded.
        let acts = ctl.on_retrade_offers(NodeId(2), *round, vec![offer(9, 2, &q, 3.0)]);
        assert!(acts.iter().any(
            |a| matches!(a, ContractAction::SendAward { seller, .. } if *seller == NodeId(2))
        ));
        assert_eq!(ctl.plan.purchases[0].offer.id, 9);
        assert!(ctl.plan_valid());
        // Duplicate replies to a closed round are ignored.
        assert!(ctl.on_retrade_offers(NodeId(2), *round, vec![]).is_empty());
    }

    #[test]
    fn dry_retrades_abandon_the_slot() {
        let q = fixture_query();
        let offers = [offer(1, 1, &q, 1.0)];
        let (mut ctl, _) = controller(&offers, &[1, 2]);
        let mut acts = Vec::new();
        for _ in 0..=QtConfig::default().max_award_retries {
            acts = ctl.on_award_timeout(0);
        }
        // Every re-trade round times out empty until the budget runs dry.
        for _ in 0..QtConfig::default().max_retrade_rounds {
            let Some(ContractAction::ArmRetradeTimer { round, .. }) = acts
                .iter()
                .find(|a| matches!(a, ContractAction::ArmRetradeTimer { .. }))
            else {
                panic!("expected a re-trade deadline, got {acts:?}");
            };
            acts = ctl.on_retrade_timeout(*round);
        }
        assert!(ctl.settled);
        assert!(!ctl.plan_valid());
        assert_eq!(ctl.stats.failed_repairs, 1);
        assert_eq!(
            ctl.stats.rescoped_trades,
            QtConfig::default().max_retrade_rounds as u64
        );
    }

    #[test]
    fn buyer_local_purchases_complete_instantly() {
        let q = fixture_query();
        let offers = [offer(1, 0, &q, 1.0)]; // the buyer sells to itself
        let (ctl, actions) = controller(&offers, &[1, 2]);
        assert!(actions.is_empty(), "no wire protocol for local data");
        assert!(ctl.settled);
        assert_eq!(ctl.reports()[0].state, "completed");
        assert_eq!(ctl.stats.contracts_awarded, 1);
    }

    #[test]
    fn losing_a_seller_fails_its_other_contracts_proactively() {
        let q = fixture_query();
        let w1 = offer(1, 1, &q, 1.0);
        let w2 = offer(2, 1, &q, 1.5); // same seller holds both slots
        let runner = offer(3, 2, &q, 2.0);
        let offers = [w1.clone(), w2.clone(), runner];
        let purchases = vec![
            Purchase {
                offer: w1,
                slot: 0,
                agreed_value: 1.0,
            },
            Purchase {
                offer: w2,
                slot: 1,
                agreed_value: 1.5,
            },
        ];
        let est = estimate_from(&purchases, 0.0, 10.0);
        let plan = DistributedPlan {
            query: q.clone(),
            purchases,
            assembly: PhysPlan::Input {
                slot: 0,
                schema: vec![],
            },
            est,
        };
        let (mut ctl, _) = ContractController::new(
            NodeId(0),
            QtConfig::default(),
            plan,
            &offers,
            vec![NodeId(1), NodeId(2)],
            0,
        );
        // Contract 0's award never acks; contract 1 is still Awarded when
        // the seller is declared lost — both must fail over to seller 2.
        for _ in 0..=QtConfig::default().max_award_retries {
            ctl.on_award_timeout(0);
        }
        assert!(ctl.lost.contains(&NodeId(1)));
        assert_eq!(ctl.plan.purchases[0].offer.seller, NodeId(2));
        assert_eq!(ctl.plan.purchases[1].offer.seller, NodeId(2));
        assert_eq!(ctl.stats.reawards, 2);
    }

    #[test]
    fn repair_round_constants_are_disjoint_from_trading_rounds() {
        assert!(!is_repair_round(0));
        assert!(!is_repair_round(QtConfig::default().max_iterations));
        assert!(!is_repair_round(REPAIR_ROUND_BASE));
        assert!(is_repair_round(REPAIR_ROUND_BASE + 1));
        assert!(is_repair_round(u32::MAX));
    }
}
