//! The buyer query plan generator (B4): *answering queries using offers*.
//!
//! Offers are views over the requested data; the generator composes them —
//! unions across partition fragments, buyer-local joins across relation
//! subsets, re-aggregation of partial aggregates — into complete candidate
//! plans, and keeps the cheapest. The general problem is NP-complete (it is
//! answering-queries-using-views); like the paper we use a dynamic program
//! over relation subsets with a greedy cover step per subset.

use crate::config::QtConfig;
use crate::dist_plan::{answer_schema, estimate_from, DistributedPlan, Purchase};
use crate::offer::{Offer, OfferKind};
use crate::relset::RelSet;
use qt_catalog::{RelId, SchemaDict};
use qt_cost::NodeResources;
use qt_exec::{AggSpec, PhysPlan};
use qt_query::{Col, CompOp, Operand, Query, SelectItem};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What the generator returns.
#[derive(Debug)]
pub struct GenOutput {
    /// The best plan found, if any.
    pub plan: Option<DistributedPlan>,
    /// Offers/combinations considered (drives simulated planning time).
    pub considered: u64,
    /// Relation-subset pairs joined *at the buyer* in the best plan — the
    /// buyer predicates analyser turns these into next-round queries.
    pub join_sites: Vec<(BTreeSet<RelId>, BTreeSet<RelId>)>,
}

/// The relation numbering of one generator invocation: index ↔ `RelId` for
/// the target query's `FROM` list (ascending `RelId`), so subsets live in
/// [`RelSet`] words throughout the search.
struct RelSpace {
    rels: Vec<RelId>,
    index: BTreeMap<RelId, usize>,
}

impl RelSpace {
    fn new(q: &Query) -> RelSpace {
        let rels: Vec<RelId> = q.rel_ids().collect();
        let index = rels.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        RelSpace { rels, index }
    }

    fn n(&self) -> usize {
        self.rels.len()
    }

    /// Members of `set` as `RelId`s, ascending.
    fn rel_ids(&self, set: RelSet) -> impl Iterator<Item = RelId> + '_ {
        set.iter().map(move |i| self.rels[i])
    }

    /// Pack `rels` into a [`RelSet`]; `None` if any is outside the space.
    fn set_of(&self, rels: impl IntoIterator<Item = RelId>) -> Option<RelSet> {
        let mut s = RelSet::EMPTY;
        for r in rels {
            s.insert(*self.index.get(&r)?);
        }
        Some(s)
    }

    /// Expand to the boundary representation.
    fn to_btree(&self, set: RelSet) -> BTreeSet<RelId> {
        self.rel_ids(set).collect()
    }
}

/// Plan skeleton built during search; materialized into [`PhysPlan`] at the
/// end (slot assignment happens then).
#[derive(Debug, Clone)]
enum Skel {
    Buy(usize),
    Union(Vec<usize>),
    Join {
        left: Box<Skel>,
        right: Box<Skel>,
        left_rels: RelSet,
        right_rels: RelSet,
    },
}

impl Skel {
    fn offers(&self, out: &mut Vec<usize>) {
        match self {
            Skel::Buy(i) => out.push(*i),
            Skel::Union(v) => out.extend(v.iter().copied()),
            Skel::Join { left, right, .. } => {
                left.offers(out);
                right.offers(out);
            }
        }
    }

    fn join_sites(&self, out: &mut Vec<(RelSet, RelSet)>) {
        if let Skel::Join {
            left,
            right,
            left_rels,
            right_rels,
        } = self
        {
            out.push((*left_rels, *right_rels));
            left.join_sites(out);
            right.join_sites(out);
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    skel: Skel,
    cost: f64,
    rows: f64,
}

/// The plan generator for one target query.
pub struct PlanGenerator<'a> {
    /// Shared dictionary.
    pub dict: &'a SchemaDict,
    /// The target query.
    pub query: &'a Query,
    /// Config (valuation, cost params).
    pub config: &'a QtConfig,
    /// The buyer node's resources (local assembly runs there).
    pub buyer_resources: NodeResources,
}

impl<'a> PlanGenerator<'a> {
    /// Score an offer under the buyer's valuation.
    fn score(&self, o: &Offer) -> f64 {
        self.config.valuation.score(&o.props)
    }

    fn cpu(&self) -> f64 {
        self.buyer_resources.cpu_factor()
    }

    /// Measure of a coverage box: the product over relations of covered
    /// partition counts (within the requested sets).
    fn box_measure(&self, q: &Query, rels: RelSet, space: &RelSpace) -> u64 {
        space
            .rel_ids(rels)
            .map(|r| {
                q.relations
                    .get(&r)
                    .map(|p| p.intersect(&self.query.relations[&r]).len() as u64)
                    .unwrap_or(0)
            })
            .product()
    }

    /// Are two fragment queries provably disjoint? (Some relation's
    /// partition sets are disjoint.)
    fn boxes_disjoint(a: &Query, b: &Query) -> bool {
        a.relations
            .iter()
            .any(|(rel, pa)| b.relations.get(rel).is_some_and(|pb| pa.is_disjoint(pb)))
    }

    /// Greedy disjoint cover: pick offers (cheapest first) whose boxes are
    /// pairwise disjoint until they tile the full requested box over `rels`.
    fn greedy_cover(
        &self,
        offers: &[&(usize, Offer)],
        rels: RelSet,
        space: &RelSpace,
        considered: &mut u64,
    ) -> Option<Vec<usize>> {
        let full_measure: u64 = space
            .rel_ids(rels)
            .map(|r| self.query.relations[&r].len() as u64)
            .product();
        // Order by per-partition price (so large cheap fragments are laid
        // down first and singletons fill the gaps), then absolute score.
        let mut order: Vec<&&(usize, Offer)> = offers.iter().collect();
        order.sort_by(|a, b| {
            let ma = self.box_measure(&a.1.query, rels, space).max(1) as f64;
            let mb = self.box_measure(&b.1.query, rels, space).max(1) as f64;
            (self.score(&a.1) / ma)
                .total_cmp(&(self.score(&b.1) / mb))
                .then(self.score(&a.1).total_cmp(&self.score(&b.1)))
                .then(a.1.id.cmp(&b.1.id))
        });
        let mut chosen: Vec<usize> = Vec::new();
        let mut chosen_queries: Vec<&Query> = Vec::new();
        let mut measure = 0u64;
        for (idx, offer) in order.iter().copied() {
            *considered += 1;
            if chosen_queries
                .iter()
                .any(|q| !Self::boxes_disjoint(q, &offer.query))
            {
                continue;
            }
            measure += self.box_measure(&offer.query, rels, space);
            chosen.push(*idx);
            chosen_queries.push(&offer.query);
            if measure == full_measure {
                return Some(chosen);
            }
            if measure > full_measure {
                return None; // can't happen with disjoint boxes, defensive
            }
        }
        None
    }

    /// Main entry: generate the best plan from `offers`.
    pub fn generate(&self, offers: &[Offer]) -> GenOutput {
        let mut considered = 0u64;
        let q_core = self.query.strip_aggregation();
        let space = RelSpace::new(self.query);
        let n = space.n();

        // ---- Classify offers --------------------------------------------
        let mut whole: Vec<(usize, &Offer)> = Vec::new();
        let mut partial_agg: Vec<(usize, Offer)> = Vec::new();
        // Row fragments grouped by relation subset, deduped per coverage box.
        let mut groups: BTreeMap<RelSet, Vec<(usize, Offer)>> = BTreeMap::new();
        let mut best_per_box: HashMap<(RelSet, Vec<u64>), (usize, f64)> = HashMap::new();

        for (i, o) in offers.iter().enumerate() {
            considered += 1;
            match o.kind {
                _ if o.query == *self.query => {
                    whole.push((i, o));
                    continue;
                }
                OfferKind::PartialAggregate => {
                    if self.usable_partial_agg(o) {
                        partial_agg.push((i, o.clone()));
                    }
                    continue;
                }
                _ => {}
            }
            let Some(subset) = self.usable_fragment(&q_core, o, &space) else {
                continue;
            };
            // Dedup: keep the cheapest offer per exact coverage box.
            let box_key: Vec<u64> = space
                .rel_ids(subset)
                .map(|r| o.query.relations[&r].bits())
                .collect();
            let score = self.score(o);
            let key = (subset, box_key);
            match best_per_box.get(&key) {
                Some((_, s)) if *s <= score => continue,
                _ => {
                    best_per_box.insert(key, (i, score));
                }
            }
        }
        for ((subset, _), (i, _)) in best_per_box {
            groups
                .entry(subset)
                .or_default()
                .push((i, offers[i].clone()));
        }

        // ---- Per-subset assemblies --------------------------------------
        let mut table: HashMap<RelSet, Entry> = HashMap::new();
        let mut by_size: Vec<Vec<RelSet>> = vec![Vec::new(); n + 1];
        let p = &self.config.cost_params;
        for (&subset, group) in &groups {
            let refs: Vec<&(usize, Offer)> = group.iter().collect();
            let Some(chosen) = self.greedy_cover(&refs, subset, &space, &mut considered) else {
                continue;
            };
            let rows: f64 = chosen.iter().map(|&i| offers[i].props.rows).sum();
            let mut cost: f64 = chosen.iter().map(|&i| self.score(&offers[i])).sum();
            let skel = if chosen.len() == 1 {
                Skel::Buy(chosen[0])
            } else {
                cost += p.union(rows) * self.cpu();
                Skel::Union(chosen)
            };
            insert_entry(&mut table, &mut by_size, subset, Entry { skel, cost, rows });
        }

        // ---- DP joins over subsets --------------------------------------
        for size in 2..=n {
            for s1 in 1..=size / 2 {
                let s2 = size - s1;
                let left_masks = by_size[s1].clone();
                let right_masks = by_size[s2].clone();
                for &m1 in &left_masks {
                    for &m2 in &right_masks {
                        if !m1.is_disjoint(m2) || (s1 == s2 && m1 >= m2) {
                            continue;
                        }
                        considered += 1;
                        let (Some(l), Some(r)) = (table.get(&m1), table.get(&m2)) else {
                            continue;
                        };
                        let (eq_keys, residual) = self.connecting_preds(&q_core, m1, m2, &space);
                        let (out_rows, join_cost) = if !eq_keys.is_empty() {
                            (
                                l.rows.max(r.rows),
                                p.hash_join(
                                    l.rows.min(r.rows),
                                    l.rows.max(r.rows),
                                    l.rows.max(r.rows),
                                ) * self.cpu(),
                            )
                        } else {
                            let out = l.rows * r.rows;
                            (out, p.nl_join(l.rows, r.rows, out) * self.cpu())
                        };
                        let mut cost = l.cost + r.cost + join_cost;
                        if !residual.is_empty() && !eq_keys.is_empty() {
                            cost += p.filter(out_rows) * self.cpu();
                        }
                        let entry = Entry {
                            skel: Skel::Join {
                                left: Box::new(l.skel.clone()),
                                right: Box::new(r.skel.clone()),
                                left_rels: m1,
                                right_rels: m2,
                            },
                            cost,
                            rows: out_rows,
                        };
                        insert_entry(&mut table, &mut by_size, m1.union(m2), entry);
                    }
                }
            }
        }

        // ---- Candidates --------------------------------------------------
        struct Candidate {
            skel: Option<Skel>, // None = whole-answer buy
            whole_offer: Option<usize>,
            partial_agg: Option<Vec<usize>>,
            cost: f64,
            buyer_compute: f64,
            rows: f64,
        }
        let mut candidates: Vec<Candidate> = Vec::new();

        let full_mask = RelSet::full(n);
        if let Some(entry) = table.get(&full_mask) {
            // Finish the SPJ core at the buyer.
            let mut compute = 0.0;
            let mut rows = entry.rows;
            if self.query.is_aggregate() {
                compute += p.aggregate(entry.rows, entry.rows) * self.cpu();
                rows = entry.rows.clamp(1.0, 1_000.0);
            } else if !self.query.order_by.is_empty() {
                compute += p.sort(entry.rows) * self.cpu();
            }
            compute += p.filter(rows) * self.cpu(); // final projection
                                                    // entry.cost already contains union/join compute; split it out:
            let purchase_cost: f64 = {
                let mut used = Vec::new();
                entry.skel.offers(&mut used);
                used.iter().map(|&i| self.score(&offers[i])).sum()
            };
            let local = entry.cost - purchase_cost + compute;
            candidates.push(Candidate {
                skel: Some(entry.skel.clone()),
                whole_offer: None,
                partial_agg: None,
                cost: entry.cost + compute,
                buyer_compute: local,
                rows,
            });
        }

        if !partial_agg.is_empty() {
            let refs: Vec<&(usize, Offer)> = partial_agg.iter().collect();
            if let Some(chosen) = self.greedy_cover(&refs, full_mask, &space, &mut considered) {
                let rows_in: f64 = chosen.iter().map(|&i| offers[i].props.rows).sum();
                let mut cost: f64 = chosen.iter().map(|&i| self.score(&offers[i])).sum();
                let mut compute = 0.0;
                if chosen.len() > 1 {
                    compute += p.union(rows_in) * self.cpu();
                }
                compute += p.aggregate(rows_in, rows_in) * self.cpu();
                compute += p.filter(rows_in) * self.cpu();
                cost += compute;
                candidates.push(Candidate {
                    skel: None,
                    whole_offer: None,
                    partial_agg: Some(chosen),
                    cost,
                    buyer_compute: compute,
                    rows: rows_in,
                });
            }
        }

        if let Some((i, o)) = whole
            .iter()
            .min_by(|a, b| self.score(a.1).total_cmp(&self.score(b.1)))
        {
            candidates.push(Candidate {
                skel: None,
                whole_offer: Some(*i),
                partial_agg: None,
                cost: self.score(o),
                buyer_compute: 0.0,
                rows: o.props.rows,
            });
        }

        let Some(best) = candidates
            .into_iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
        else {
            return GenOutput {
                plan: None,
                considered,
                join_sites: Vec::new(),
            };
        };

        // ---- Materialize -------------------------------------------------
        let mut purchases: Vec<Purchase> = Vec::new();
        let mut slot_of: HashMap<usize, usize> = HashMap::new();
        let mut join_sites = Vec::new();
        let assembly: PhysPlan = if let Some(i) = best.whole_offer {
            let slot = buy_slot(self, i, offers, &mut purchases, &mut slot_of);
            PhysPlan::Input {
                slot,
                schema: answer_schema(&offers[i].query),
            }
        } else if let Some(chosen) = &best.partial_agg {
            let inputs: Vec<PhysPlan> = chosen
                .iter()
                .map(|&i| {
                    let slot = buy_slot(self, i, offers, &mut purchases, &mut slot_of);
                    PhysPlan::Input {
                        slot,
                        schema: answer_schema(&offers[i].query),
                    }
                })
                .collect();
            let unioned = if inputs.len() == 1 {
                inputs.into_iter().next().expect("one input")
            } else {
                PhysPlan::Union { inputs }
            };
            self.reaggregate_plan(unioned, &offers[chosen[0]].query)
        } else {
            let skel = best.skel.as_ref().expect("skeleton candidate");
            let mut sites: Vec<(RelSet, RelSet)> = Vec::new();
            skel.join_sites(&mut sites);
            join_sites = sites
                .into_iter()
                .map(|(l, r)| (space.to_btree(l), space.to_btree(r)))
                .collect();
            let core_plan =
                self.materialize_skel(skel, &q_core, &space, offers, &mut purchases, &mut slot_of);
            self.finish_plan(core_plan)
        };

        let est = estimate_from(&purchases, best.buyer_compute, best.rows);
        GenOutput {
            plan: Some(DistributedPlan {
                query: self.query.clone(),
                purchases,
                assembly,
                est,
            }),
            considered,
            join_sites,
        }
    }

    /// Validate a partial-aggregate offer: same logical query as the target
    /// restricted to some partition subsets, with every group key delivered.
    fn usable_partial_agg(&self, o: &Offer) -> bool {
        if !self.query.is_aggregate() || !self.query.aggregates_decomposable() {
            return false;
        }
        let q = &o.query;
        if q.select != self.query.select
            || q.group_by != self.query.group_by
            || q.predicates != self.query.predicates
            || q.relations.len() != self.query.relations.len()
        {
            return false;
        }
        // Group keys must appear among the delivered plain columns.
        for g in &self.query.group_by {
            if !q.select.contains(&SelectItem::Col(*g)) {
                return false;
            }
        }
        // Partition subsets within the requested extents.
        q.relations.iter().all(|(rel, parts)| {
            self.query
                .relations
                .get(rel)
                .is_some_and(|req| parts.is_subset(req))
        })
    }

    /// Validate a row-fragment offer: it must be exactly the target's SPJ
    /// core restricted to a relation subset (arbitrary partition coverage).
    /// Returns the subset on success.
    fn usable_fragment(&self, q_core: &Query, o: &Offer, space: &RelSpace) -> Option<RelSet> {
        if o.query.is_aggregate() {
            return None;
        }
        // `set_of` fails exactly when the offer mentions a relation outside
        // the target's FROM list.
        let subset = space.set_of(o.query.rel_ids())?;
        let expected = q_core.restrict_to_rels(&space.to_btree(subset));
        if o.query.select != expected.select || o.query.predicates != expected.predicates {
            return None;
        }
        // Coverage within the requested extents.
        for (rel, parts) in &o.query.relations {
            if !parts.is_subset(&self.query.relations[rel]) {
                return None;
            }
        }
        Some(subset)
    }

    fn connecting_preds(
        &self,
        q_core: &Query,
        left: RelSet,
        right: RelSet,
        space: &RelSpace,
    ) -> (Vec<(Col, Col)>, Vec<qt_query::Predicate>) {
        let side =
            |set: RelSet, rel: RelId| space.index.get(&rel).is_some_and(|&i| set.contains(i));
        let mut eq = Vec::new();
        let mut residual = Vec::new();
        for p in q_core.join_predicates() {
            let Operand::Col(rc) = &p.right else { continue };
            let (a, b) = (p.left, *rc);
            let pair = if side(left, a.rel) && side(right, b.rel) {
                Some((a, b))
            } else if side(left, b.rel) && side(right, a.rel) {
                Some((b, a))
            } else {
                None
            };
            if let Some((l, r)) = pair {
                if p.op == CompOp::Eq {
                    eq.push((l, r));
                } else {
                    residual.push(p.clone());
                }
            }
        }
        (eq, residual)
    }

    fn materialize_skel(
        &self,
        skel: &Skel,
        q_core: &Query,
        space: &RelSpace,
        offers: &[Offer],
        purchases: &mut Vec<Purchase>,
        slot_of: &mut HashMap<usize, usize>,
    ) -> PhysPlan {
        match skel {
            Skel::Buy(i) => {
                let slot = buy_slot(self, *i, offers, purchases, slot_of);
                PhysPlan::Input {
                    slot,
                    schema: answer_schema(&offers[*i].query),
                }
            }
            Skel::Union(v) => {
                let inputs: Vec<PhysPlan> = v
                    .iter()
                    .map(|&i| {
                        let slot = buy_slot(self, i, offers, purchases, slot_of);
                        PhysPlan::Input {
                            slot,
                            schema: answer_schema(&offers[i].query),
                        }
                    })
                    .collect();
                PhysPlan::Union { inputs }
            }
            Skel::Join {
                left,
                right,
                left_rels,
                right_rels,
            } => {
                let l = self.materialize_skel(left, q_core, space, offers, purchases, slot_of);
                let r = self.materialize_skel(right, q_core, space, offers, purchases, slot_of);
                let (eq_keys, residual) =
                    self.connecting_preds(q_core, *left_rels, *right_rels, space);
                let mut plan = if eq_keys.is_empty() {
                    PhysPlan::NlJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        predicates: residual.clone(),
                    }
                } else {
                    PhysPlan::HashJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        left_keys: eq_keys.iter().map(|k| k.0).collect(),
                        right_keys: eq_keys.iter().map(|k| k.1).collect(),
                    }
                };
                if !eq_keys.is_empty() && !residual.is_empty() {
                    plan = PhysPlan::Filter {
                        input: Box::new(plan),
                        predicates: residual,
                    };
                }
                plan
            }
        }
    }

    /// Layer final aggregation / sort / projection over the assembled core.
    fn finish_plan(&self, core: PhysPlan) -> PhysPlan {
        let q = self.query;
        if q.is_aggregate() {
            let aggs: Vec<AggSpec> = q
                .select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Agg { func, arg } => Some(AggSpec {
                        func: *func,
                        arg: *arg,
                    }),
                    SelectItem::Col(_) => None,
                })
                .collect();
            let agged = PhysPlan::HashAggregate {
                input: Box::new(core),
                group_by: q.group_by.clone(),
                aggs,
            };
            let agg_schema = agged.schema();
            let mut agg_idx = q.group_by.len();
            let cols: Vec<Col> = q
                .select
                .iter()
                .map(|s| match s {
                    SelectItem::Col(c) => *c,
                    SelectItem::Agg { .. } => {
                        let c = agg_schema[agg_idx];
                        agg_idx += 1;
                        c
                    }
                })
                .collect();
            PhysPlan::Project {
                input: Box::new(agged),
                cols,
            }
        } else {
            let mut plan = core;
            if !q.order_by.is_empty() {
                plan = PhysPlan::Sort {
                    input: Box::new(plan),
                    keys: q.order_by.clone(),
                };
            }
            let cols: Vec<Col> = q
                .select
                .iter()
                .map(|s| match s {
                    SelectItem::Col(c) => *c,
                    SelectItem::Agg { .. } => unreachable!("aggregate handled above"),
                })
                .collect();
            PhysPlan::Project {
                input: Box::new(plan),
                cols,
            }
        }
    }

    /// Re-aggregate unioned partial-aggregate rows into final groups.
    fn reaggregate_plan(&self, unioned: PhysPlan, offer_query: &Query) -> PhysPlan {
        let q = self.query;
        let input_schema = answer_schema(offer_query);
        let aggs: Vec<AggSpec> = q
            .select
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                SelectItem::Agg { func, .. } => Some(AggSpec {
                    func: func.reaggregate_with(),
                    arg: Some(input_schema[i]),
                }),
                SelectItem::Col(_) => None,
            })
            .collect();
        let agged = PhysPlan::HashAggregate {
            input: Box::new(unioned),
            group_by: q.group_by.clone(),
            aggs,
        };
        let agg_schema = agged.schema();
        let mut agg_idx = q.group_by.len();
        let cols: Vec<Col> = q
            .select
            .iter()
            .map(|s| match s {
                SelectItem::Col(c) => *c,
                SelectItem::Agg { .. } => {
                    let c = agg_schema[agg_idx];
                    agg_idx += 1;
                    c
                }
            })
            .collect();
        PhysPlan::Project {
            input: Box::new(agged),
            cols,
        }
    }
}

/// Register offer `i` as a purchase (idempotent) and return its input slot.
fn buy_slot(
    pg: &PlanGenerator<'_>,
    i: usize,
    offers: &[Offer],
    purchases: &mut Vec<Purchase>,
    slot_of: &mut HashMap<usize, usize>,
) -> usize {
    *slot_of.entry(i).or_insert_with(|| {
        let slot = purchases.len();
        purchases.push(Purchase {
            offer: offers[i].clone(),
            slot,
            agreed_value: pg.config.valuation.score(&offers[i].props),
        });
        slot
    })
}

fn insert_entry(
    table: &mut HashMap<RelSet, Entry>,
    by_size: &mut [Vec<RelSet>],
    mask: RelSet,
    entry: Entry,
) {
    match table.get(&mask) {
        Some(e) if e.cost <= entry.cost => {}
        Some(_) => {
            table.insert(mask, entry);
        }
        None => {
            by_size[mask.len()].push(mask);
            table.insert(mask, entry);
        }
    }
}
