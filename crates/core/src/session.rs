//! The serving layer: many queries trading concurrently over one federation.
//!
//! The single-session drivers in [`driver`](crate::driver) optimize exactly
//! one query end-to-end. This module multiplexes M negotiations — each a
//! [`SessionId`]-tagged buyer engine — over the same sellers on the same
//! discrete-event simulator:
//!
//! * **Sessions** arrive on a clock (see `qt_workload`'s arrival generator),
//!   queue behind an admission limit (`concurrency`), and run the ordinary
//!   QT loop to completion, after which the next queued arrival is admitted.
//! * **Batching**: all RFB items destined for the same seller in the same
//!   scheduling instant coalesce into one [`ServeMsg::Rfb`] message (one
//!   entry per session), and the seller answers the whole batch with one
//!   [`SellerEngine::respond_batch`] pass — one parallel fork/join, one
//!   reply message — sharing its offer cache across sessions while offer
//!   ids and hints stay session-isolated.
//! * **Determinism**: every simulator event is ordered by `(virtual time,
//!   arrival seq)`; batched entries are sorted by session id; sellers are
//!   iterated in ascending `NodeId`; and all per-session state (engines,
//!   offer-id counters, reply memos) is keyed by session. A session's
//!   observable results — plan, cost bits, offer ids — are therefore a pure
//!   function of its own query, independent of what else is in flight, and
//!   identical under any `QT_THREADS`. `crates/core/tests/serve.rs` holds
//!   the proptest.

use crate::buyer::{remote_awards, BuyerEngine, RoundOutcome};
use crate::compensate::compensate_plan;
use crate::config::QtConfig;
use crate::contract::{
    is_repair_round, ContractAction, ContractController, ContractStats, LEGACY_CONTRACT,
};
use crate::dist_plan::DistributedPlan;
use crate::offer::{Offer, RfbItem};
use crate::seller::{session_req, SellerEngine, SessionRfb};
use qt_catalog::{NodeId, RelId, SchemaDict};
use qt_net::{Ctx, FaultPlan, Handler, Simulator, Topology};
use qt_query::Query;
use qt_trade::semcache::{Probe, ProbeOutcome, SemCache};
use qt_trade::SessionId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

/// A result cache shared across serving sessions (and, via the `Arc`,
/// across serving *runs* over the same federation). Holds finished
/// [`DistributedPlan`]s keyed by query fingerprint; semantic probes answer
/// subsumed queries with a compensated copy of a cached plan (see
/// [`crate::compensate`]).
///
/// Invalidation hooks: the cache never observes the federation directly, so
/// whoever mutates shared state must tell it —
///
/// * **catalog/statistics drift or resource/view mutation**: call
///   [`SemCache::invalidate_rels`] with the mutated relations (or
///   [`SemCache::clear`] for a federation-wide change);
/// * **strategy-moving awards**: the serving loop does this itself — every
///   finished session whose award moves adaptive seller asks invalidates
///   the entries intersecting the traded relations before inserting its own
///   plan.
pub type SharedResultCache = Arc<Mutex<SemCache<DistributedPlan>>>;

/// A fresh, empty [`SharedResultCache`] (`capacity` 0 = unbounded).
pub fn new_result_cache(capacity: usize) -> SharedResultCache {
    Arc::new(Mutex::new(SemCache::new(capacity)))
}

/// Knobs of the serving layer (the trading loop itself is [`QtConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum sessions trading at once; arrivals beyond it queue FIFO.
    pub concurrency: usize,
    /// Coalesce same-instant RFBs per seller into one message (the default).
    /// `false` sends one message per session — the baseline the batching
    /// experiments compare against.
    pub batch_rfbs: bool,
    /// Cross-session result cache: admitted queries answered by a cached
    /// (possibly compensated) plan complete instantly with zero trading
    /// traffic. `None` (the default) disables result caching entirely and
    /// keeps every run bit-identical to earlier releases.
    pub result_cache: Option<SharedResultCache>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            concurrency: 1,
            batch_rfbs: true,
            result_cache: None,
        }
    }
}

/// Protocol messages of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMsg {
    /// A query arrives at the buyer node (injected by the driver; excluded
    /// from protocol message counts like the single-session `Start`).
    Arrive {
        /// The session being opened.
        session: SessionId,
    },
    /// A batched RFB: one entry per session with items for this seller.
    Rfb {
        /// Per-session request slices, ascending session id.
        entries: Vec<SessionRfb>,
    },
    /// A seller's replies to a batched RFB, one per entry, in entry order.
    Offers {
        /// `(session, round, offers)` per answered entry.
        replies: Vec<(SessionId, u32, Vec<Offer>)>,
    },
    /// Zero-delay self-timer draining the staged outbound batches.
    Flush,
    /// Per-session RFB response deadline.
    Timeout {
        /// The session whose round the timer guards.
        session: SessionId,
        /// The round it was armed for.
        round: u32,
    },
    /// Award notice to a winning seller. With the lifecycle off the contract
    /// id is [`LEGACY_CONTRACT`]: the seller records the win and drops the
    /// session's memos, sending nothing back (the pre-lifecycle one-way
    /// notice). Otherwise the seller answers with ack/decline and holds an
    /// execution lease until released.
    Award {
        /// The finished session.
        session: SessionId,
        /// Contract id (or [`LEGACY_CONTRACT`]).
        contract: u64,
        /// The awarded offer id.
        offer: u64,
    },
    /// Seller → buyer: award accepted, lease begins.
    AwardAck {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Seller → buyer: award refused; the buyer fails the slot over.
    AwardDecline {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Buyer → seller: zero-byte lease heartbeat.
    Lease {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Seller → buyer: lease renewed (zero-byte).
    LeaseAck {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Buyer → seller: contract completed; release the lease (and, once the
    /// seller holds no more contracts of the session, its memos).
    Release {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Buyer-local timer: award-ack deadline.
    AwardTimeout {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Buyer-local timer: periodic lease-renewal check.
    LeaseTick {
        /// The owning session.
        session: SessionId,
        /// Contract id.
        contract: u64,
    },
    /// Buyer-local timer: scoped re-trade response deadline.
    RetradeTimeout {
        /// The owning session.
        session: SessionId,
        /// Repair round number.
        round: u32,
    },
    /// Synthetic nested-negotiation traffic (auction rounds, bargaining).
    Negotiate,
}

/// A federation node in the serving simulator.
pub enum ServeNode {
    /// A pure seller.
    Seller(Box<SellerEngine>),
    /// The buyer node multiplexing every session.
    Buyer(Box<SessionManager>),
}

/// Per-session trading state held by the [`SessionManager`] — the serve
/// analog of the single-session `BuyerSim`.
struct Session {
    engine: BuyerEngine,
    /// Current-round replies buffered until the round closes. Feeding the
    /// engine at close time, in ascending seller order, makes the offer-pool
    /// sequence independent of reply *arrival* order — which shifts with
    /// batching and concurrency (per-seller compute differs per schedule)
    /// and would otherwise leak into cost ties in plan generation.
    pending: BTreeMap<NodeId, Vec<Offer>>,
    /// `(round, seller)` replies already consumed (duplicate discard).
    seen: BTreeSet<(u32, NodeId)>,
    /// Retransmission attempts in the current round.
    attempt: u32,
    cur_items: Arc<Vec<RfbItem>>,
    cur_hints: Arc<Vec<Offer>>,
    round_open: bool,
    prev_neg_msgs: u64,
    prev_neg_rts: u64,
    arrived: f64,
    started: f64,
}

/// What one finished session looked like.
#[derive(Debug)]
pub struct SessionReport {
    /// The session.
    pub session: SessionId,
    /// Virtual arrival time.
    pub arrived: f64,
    /// Virtual time admission let it start trading.
    pub started: f64,
    /// Virtual time trading finished.
    pub finished: f64,
    /// Trading iterations executed.
    pub iterations: u32,
    /// The final plan (None = no coverage, or an unrepairable winner loss).
    pub plan: Option<DistributedPlan>,
    /// Contracts re-awarded to runner-up offers (lifecycle only).
    pub reawards: u64,
    /// Scoped re-trade rounds run to refill an exhausted bid book.
    pub rescoped_trades: u64,
    /// Whether any slot of the plan was repaired after a winner loss.
    pub repaired: bool,
}

impl SessionReport {
    /// End-to-end session latency (queue wait + trading), virtual seconds.
    pub fn latency(&self) -> f64 {
        self.finished - self.arrived
    }
}

/// The buyer node's session multiplexer: admission control, per-session
/// buyer engines, and the per-seller outbound staging area.
pub struct SessionManager {
    node: NodeId,
    dict: Arc<SchemaDict>,
    config: QtConfig,
    serve: ServeConfig,
    remote_sellers: Vec<NodeId>,
    /// The buyer's own seller side (its local data competes, message-free).
    local_seller: Option<SellerEngine>,
    /// Arrival-order query backlog; taken when a session starts.
    queries: Vec<Option<Query>>,
    arrive_times: Vec<f64>,
    /// Live sessions.
    sessions: BTreeMap<SessionId, Session>,
    /// Admitted-but-not-started arrivals, FIFO.
    waiting: VecDeque<SessionId>,
    /// Outbound RFB entries staged per seller, drained by the next `Flush`.
    stage: BTreeMap<NodeId, Vec<SessionRfb>>,
    flush_pending: bool,
    /// Finished sessions, in completion order.
    pub completed: Vec<SessionReport>,
    /// RFB retransmissions sent.
    pub retries: u64,
    /// Response deadlines that fired while their round was open.
    pub timeouts_fired: u64,
    /// Rounds closed with sellers still missing.
    pub degraded_rounds: u64,
    /// Sellers that never answered their last RFB (any session).
    pub unreachable: BTreeSet<NodeId>,
    /// Per-session contract lifecycles still running (the contract phase
    /// continues in the background after the trading slot is freed).
    lifecycles: BTreeMap<SessionId, ContractController>,
    /// Lifecycle counters aggregated over settled sessions.
    pub contract_stats: ContractStats,
    /// Sessions answered from the shared result cache (exact or semantic).
    pub result_cache_hits: u64,
    /// Sessions that probed the result cache and traded from cold.
    pub result_cache_misses: u64,
}

impl Handler<ServeMsg> for ServeNode {
    fn on_message(&mut self, ctx: &mut Ctx<ServeMsg>, from: NodeId, msg: ServeMsg) {
        match (self, msg) {
            (ServeNode::Seller(engine), ServeMsg::Rfb { entries }) => {
                let resps = engine.respond_batch(&entries);
                let effort: u64 = resps.iter().map(|r| r.effort).sum();
                ctx.charge_compute(effort as f64 * engine.config().per_subplan_seconds);
                let offers: usize = resps.iter().map(|r| r.offers.len()).sum();
                let bytes = offers as f64 * engine.config().offer_msg_bytes;
                let replies: Vec<(SessionId, u32, Vec<Offer>)> = entries
                    .iter()
                    .zip(resps)
                    .map(|(e, r)| (e.session, e.round, r.offers))
                    .collect();
                ctx.send(from, ServeMsg::Offers { replies }, bytes, "offers");
            }
            (
                ServeNode::Seller(engine),
                ServeMsg::Award {
                    session,
                    contract,
                    offer,
                },
            ) => {
                if contract == LEGACY_CONTRACT {
                    // Lifecycle off: one-way notice, exactly the old protocol.
                    // Resolve the invalidation scope from the awarded offer's
                    // reply memo *before* forgetting the session drops it.
                    engine.observe_award_for_offer(true, offer);
                    engine.forget_session(session);
                } else {
                    if engine.accept_award(contract) {
                        engine.observe_award_for_offer(true, offer);
                    }
                    let bytes = engine.config().offer_msg_bytes;
                    ctx.send(
                        from,
                        ServeMsg::AwardAck { session, contract },
                        bytes,
                        "award-ack",
                    );
                }
            }
            (ServeNode::Seller(engine), ServeMsg::Lease { session, contract }) => {
                if engine.has_contract(contract) {
                    ctx.send_lease(from, ServeMsg::LeaseAck { session, contract }, "lease-ack");
                }
            }
            (ServeNode::Seller(engine), ServeMsg::Release { session, contract }) => {
                engine.release_contract(contract);
                if !engine.session_has_contracts(session) {
                    engine.forget_session(session);
                }
            }
            (ServeNode::Seller(_), _) => {}
            (ServeNode::Buyer(m), ServeMsg::Arrive { session }) => {
                m.waiting.push_back(session);
                m.admit(ctx);
            }
            (ServeNode::Buyer(m), ServeMsg::Offers { replies }) => {
                for (session, round, offers) in replies {
                    m.on_offers(ctx, from, session, round, offers);
                }
            }
            (ServeNode::Buyer(m), ServeMsg::Flush) => m.flush(ctx),
            (ServeNode::Buyer(m), ServeMsg::Timeout { session, round }) => {
                m.on_timeout(ctx, session, round)
            }
            (ServeNode::Buyer(m), ServeMsg::AwardAck { session, contract }) => {
                m.ctl_event(ctx, session, |c| c.on_award_ack(contract));
            }
            (ServeNode::Buyer(m), ServeMsg::AwardDecline { session, contract }) => {
                m.ctl_event(ctx, session, |c| c.on_award_decline(contract));
            }
            (ServeNode::Buyer(m), ServeMsg::LeaseAck { session, contract }) => {
                m.ctl_event(ctx, session, |c| c.on_lease_ack(contract));
            }
            (ServeNode::Buyer(m), ServeMsg::AwardTimeout { session, contract }) => {
                m.ctl_event(ctx, session, |c| c.on_award_timeout(contract));
            }
            (ServeNode::Buyer(m), ServeMsg::LeaseTick { session, contract }) => {
                m.ctl_event(ctx, session, |c| c.on_lease_tick(contract));
            }
            (ServeNode::Buyer(m), ServeMsg::RetradeTimeout { session, round }) => {
                m.ctl_event(ctx, session, |c| c.on_retrade_timeout(round));
            }
            (ServeNode::Buyer(_), _) => {}
        }
    }
}

impl SessionManager {
    /// Start queued arrivals while slots are free. Sessions admitted in the
    /// same event stage their opening RFBs into the same flush.
    fn admit(&mut self, ctx: &mut Ctx<ServeMsg>) {
        while self.sessions.len() < self.serve.concurrency {
            let Some(s) = self.waiting.pop_front() else {
                return;
            };
            let query = self.queries[s.0 as usize].take().expect("arrival unseen");
            if let Some(plan) = self.try_result_cache(&query) {
                // Served from the shared result cache: an earlier session
                // already traded for these rows and only buyer-local
                // compensation remains — no rounds, no messages, and the
                // trading slot stays free for the next arrival.
                self.completed.push(SessionReport {
                    session: s,
                    arrived: self.arrive_times[s.0 as usize],
                    started: ctx.now(),
                    finished: ctx.now(),
                    iterations: 0,
                    plan: Some(plan),
                    reawards: 0,
                    rescoped_trades: 0,
                    repaired: false,
                });
                continue;
            }
            let mut engine =
                BuyerEngine::new(self.node, self.dict.clone(), query, self.config.clone());
            let items = engine.start();
            self.sessions.insert(
                s,
                Session {
                    engine,
                    pending: BTreeMap::new(),
                    seen: BTreeSet::new(),
                    attempt: 0,
                    cur_items: Arc::new(Vec::new()),
                    cur_hints: Arc::new(Vec::new()),
                    round_open: false,
                    prev_neg_msgs: 0,
                    prev_neg_rts: 0,
                    arrived: self.arrive_times[s.0 as usize],
                    started: ctx.now(),
                },
            );
            self.stage_round(ctx, s, items, Vec::new());
        }
    }

    /// Probe the shared result cache for `query`: an exact-fingerprint hit
    /// reuses the cached plan outright; a semantic hit compensates the
    /// cached plan for the subsumed query (and re-inserts the compensated
    /// plan under the query's own key, so the next identical arrival hits
    /// exactly). Returns `None` on a miss or with caching disabled.
    fn try_result_cache(&mut self, query: &Query) -> Option<DistributedPlan> {
        let cache = self.serve.result_cache.as_ref()?;
        let mut c = cache.lock().expect("result cache lock");
        let key = query.fingerprint();
        match c.probe(key, query, true) {
            Probe::Exact => {
                if let Some(plan) = c.get(key).map(|e| e.value.clone()) {
                    c.record(ProbeOutcome::HitExact);
                    self.result_cache_hits += 1;
                    return Some(plan);
                }
            }
            Probe::Semantic(candidates) => {
                for (k, m) in candidates {
                    let Some(entry) = c.get(k) else { continue };
                    if let Some(plan) = compensate_plan(&entry.value, query, &m) {
                        c.record(ProbeOutcome::HitSemantic);
                        self.result_cache_hits += 1;
                        c.insert(key, query.clone(), plan.clone(), 0.0);
                        return Some(plan);
                    }
                }
            }
            Probe::Miss => {}
        }
        c.record(ProbeOutcome::Miss);
        self.result_cache_misses += 1;
        None
    }

    /// Publish a finished session's plan to the shared result cache. An
    /// award moves adaptive sellers' asks, so entries priced before it and
    /// touching the same relations are invalidated first (selectively — a
    /// disjoint query's cached plan survives). The entry's eviction weight
    /// is the trading work a future hit saves: rounds times remote sellers.
    fn cache_finished_plan(&mut self, iterations: u32, plan: &DistributedPlan) {
        let Some(cache) = self.serve.result_cache.as_ref() else {
            return;
        };
        let mut c = cache.lock().expect("result cache lock");
        if self.config.seller_strategy.adapts()
            && plan.purchases.iter().any(|p| p.offer.seller != self.node)
        {
            let rels: BTreeSet<RelId> = plan.query.rel_ids().collect();
            c.invalidate_rels(&rels);
        }
        let benefit = iterations as f64 * self.remote_sellers.len().max(1) as f64;
        c.insert(
            plan.query.fingerprint(),
            plan.query.clone(),
            plan.clone(),
            benefit,
        );
    }

    /// Open a round for `s`: local seller answers immediately (no network),
    /// remote sellers get one staged entry each, the deadline timer is armed.
    fn stage_round(
        &mut self,
        ctx: &mut Ctx<ServeMsg>,
        s: SessionId,
        items: Vec<RfbItem>,
        hints: Vec<Offer>,
    ) {
        let round = self.sessions[&s].engine.round;
        let entry = SessionRfb {
            session: s,
            req: session_req(s, round),
            round,
            items: Arc::new(items),
            hints: Arc::new(hints),
        };
        if let Some(local) = &mut self.local_seller {
            let resp = local
                .respond_batch(std::slice::from_ref(&entry))
                .pop()
                .expect("one entry, one response");
            ctx.charge_compute(resp.effort as f64 * self.config.per_subplan_seconds);
            self.sessions
                .get_mut(&s)
                .expect("staged session is live")
                .engine
                .receive_offers(resp.offers);
        }
        {
            let sess = self.sessions.get_mut(&s).expect("staged session is live");
            sess.pending.clear();
            sess.attempt = 0;
            sess.round_open = true;
            sess.cur_items = Arc::clone(&entry.items);
            sess.cur_hints = Arc::clone(&entry.hints);
        }
        if self.remote_sellers.is_empty() {
            self.close_round(ctx, s);
            return;
        }
        for &seller in &self.remote_sellers {
            self.stage.entry(seller).or_default().push(entry.clone());
        }
        self.ensure_flush(ctx);
        ctx.schedule(
            self.config.seller_timeout,
            ServeMsg::Timeout { session: s, round },
            "timeout",
        );
    }

    /// Arm the zero-delay flush timer once per scheduling instant: every
    /// session that stages between now and the timer firing rides the same
    /// batch.
    fn ensure_flush(&mut self, ctx: &mut Ctx<ServeMsg>) {
        if !self.flush_pending {
            self.flush_pending = true;
            ctx.schedule(0.0, ServeMsg::Flush, "flush");
        }
    }

    /// Drain the staging area: one message per seller (batched) or one per
    /// entry (unbatched baseline). Sellers go out in ascending `NodeId`,
    /// entries within a batch in ascending `(session, round)` — both fixed
    /// orders, so the wire schedule is deterministic.
    fn flush(&mut self, ctx: &mut Ctx<ServeMsg>) {
        self.flush_pending = false;
        let stage = std::mem::take(&mut self.stage);
        for (seller, mut entries) in stage {
            entries.sort_by_key(|e| (e.session, e.round));
            if self.serve.batch_rfbs {
                let bytes: f64 = entries
                    .iter()
                    .map(|e| (e.items.len() + e.hints.len()) as f64)
                    .sum::<f64>()
                    * self.config.query_msg_bytes;
                ctx.send(seller, ServeMsg::Rfb { entries }, bytes, "rfb");
            } else {
                for e in entries {
                    let bytes =
                        (e.items.len() + e.hints.len()) as f64 * self.config.query_msg_bytes;
                    ctx.send(seller, ServeMsg::Rfb { entries: vec![e] }, bytes, "rfb");
                }
            }
        }
    }

    fn on_offers(
        &mut self,
        ctx: &mut Ctx<ServeMsg>,
        from: NodeId,
        session: SessionId,
        round: u32,
        offers: Vec<Offer>,
    ) {
        self.unreachable.remove(&from);
        if is_repair_round(round) {
            // Scoped re-trade replies belong to the session's contract
            // lifecycle, which outlives the trading session itself.
            self.ctl_event(ctx, session, |c| c.on_retrade_offers(from, round, offers));
            return;
        }
        let complete = {
            let Some(sess) = self.sessions.get_mut(&session) else {
                return; // straggler for an already-finished session
            };
            if !sess.seen.insert((round, from)) {
                return; // duplicated delivery or dedup resend
            }
            if sess.round_open && round == sess.engine.round {
                sess.pending.insert(from, offers);
                sess.pending.len() == self.remote_sellers.len()
            } else {
                // Straggler from an already-closed round: still market
                // information, consumed immediately.
                sess.engine.receive_offers(offers);
                false
            }
        };
        if complete {
            self.close_round(ctx, session);
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<ServeMsg>, session: SessionId, round: u32) {
        let (missing, attempt) = {
            let Some(sess) = self.sessions.get_mut(&session) else {
                return;
            };
            if !(sess.round_open && round == sess.engine.round) {
                return; // stale timer from an already-closed round
            }
            let missing: Vec<NodeId> = self
                .remote_sellers
                .iter()
                .copied()
                .filter(|n| !sess.pending.contains_key(n))
                .collect();
            (missing, sess.attempt)
        };
        self.timeouts_fired += 1;
        if !missing.is_empty() && attempt < self.config.max_rfb_retries {
            let entry = {
                let sess = self.sessions.get_mut(&session).expect("checked above");
                sess.attempt += 1;
                SessionRfb {
                    session,
                    req: session_req(session, round),
                    round,
                    items: Arc::clone(&sess.cur_items),
                    hints: Arc::clone(&sess.cur_hints),
                }
            };
            for &m in &missing {
                self.retries += 1;
                self.stage.entry(m).or_default().push(entry.clone());
            }
            self.ensure_flush(ctx);
            let base = self.config.seller_timeout;
            let delay =
                (base * self.config.rfb_retry_backoff.powi((attempt + 1) as i32)).min(8.0 * base);
            ctx.schedule(delay, ServeMsg::Timeout { session, round }, "timeout");
        } else {
            if !missing.is_empty() {
                self.degraded_rounds += 1;
                self.unreachable.extend(missing);
            }
            self.close_round(ctx, session);
        }
    }

    /// B3–B8 for one session: close the trading round, send the nested
    /// negotiation traffic, then either stage the next round or finalize.
    fn close_round(&mut self, ctx: &mut Ctx<ServeMsg>, s: SessionId) {
        let (outcome, neg_msgs) = {
            let sess = self.sessions.get_mut(&s).expect("closing a live session");
            sess.round_open = false;
            // Ascending seller order (BTreeMap), fixed per round.
            for (_, offers) in std::mem::take(&mut sess.pending) {
                sess.engine.receive_offers(offers);
            }
            let outcome = sess.engine.close_round();
            let considered = sess
                .engine
                .history
                .last()
                .map(|h| h.considered)
                .unwrap_or(0);
            ctx.charge_compute(considered as f64 * self.config.per_offer_seconds);
            let neg_msgs = sess.engine.negotiation_messages - sess.prev_neg_msgs;
            let neg_rts = sess.engine.negotiation_round_trips - sess.prev_neg_rts;
            sess.prev_neg_msgs = sess.engine.negotiation_messages;
            sess.prev_neg_rts = sess.engine.negotiation_round_trips;
            ctx.charge_compute(neg_rts as f64 * 2.0 * self.config.link.latency);
            (outcome, neg_msgs)
        };
        for i in 0..neg_msgs {
            let to = self.remote_sellers[i as usize % self.remote_sellers.len().max(1)];
            ctx.send(
                to,
                ServeMsg::Negotiate,
                self.config.offer_msg_bytes,
                "negotiate",
            );
        }
        match outcome {
            RoundOutcome::Continue(items) => {
                let hints = {
                    let sess = &self.sessions[&s];
                    if self.config.enable_subcontracting {
                        sess.engine.hints()
                    } else {
                        Vec::new()
                    }
                };
                self.stage_round(ctx, s, items, hints);
            }
            RoundOutcome::Done => self.finalize(ctx, s),
        }
    }

    /// Session over: award the winners, free the slot, report, admit next.
    /// With the lifecycle on, the awards run as a background
    /// [`ContractController`] (id base `(s+1) << 32`, so seller-side releases
    /// stay session-scoped) and the report's plan/repair counters are patched
    /// once it settles.
    fn finalize(&mut self, ctx: &mut Ctx<ServeMsg>, s: SessionId) {
        let sess = self.sessions.remove(&s).expect("finalizing a live session");
        if self.config.enable_contracts {
            if let Some(plan) = sess.engine.best.clone() {
                let (ctl, actions) = ContractController::new(
                    self.node,
                    self.config.clone(),
                    plan,
                    &sess.engine.offers,
                    self.remote_sellers.clone(),
                    (s.0 + 1) << 32,
                );
                self.lifecycles.insert(s, ctl);
                self.apply_actions(ctx, s, actions);
            }
        } else if let Some(plan) = &sess.engine.best {
            for (_, seller, offer) in remote_awards(plan, self.node) {
                ctx.send(
                    seller,
                    ServeMsg::Award {
                        session: s,
                        contract: LEGACY_CONTRACT,
                        offer,
                    },
                    self.config.offer_msg_bytes,
                    "award",
                );
            }
        }
        if let Some(local) = &mut self.local_seller {
            local.forget_session(s);
        }
        // With the lifecycle off the plan is final here; publish it to the
        // shared result cache. (With it on, publication waits for the
        // lifecycle to settle — see `settle_lifecycle` — so a repaired or
        // invalidated plan is never served to later sessions.)
        if !self.config.enable_contracts {
            if let Some(plan) = &sess.engine.best {
                self.cache_finished_plan(sess.engine.round + 1, plan);
            }
        }
        self.completed.push(SessionReport {
            session: s,
            arrived: sess.arrived,
            started: sess.started,
            finished: ctx.now(),
            iterations: sess.engine.round + 1,
            plan: sess.engine.best,
            reawards: 0,
            rescoped_trades: 0,
            repaired: false,
        });
        self.settle_lifecycle(s);
        self.admit(ctx);
    }

    /// Route a lifecycle event to `s`'s controller (no-op once settled and
    /// removed), apply the actions it emits, and fold it into the report if
    /// it just settled.
    fn ctl_event(
        &mut self,
        ctx: &mut Ctx<ServeMsg>,
        s: SessionId,
        event: impl FnOnce(&mut ContractController) -> Vec<ContractAction>,
    ) {
        let Some(ctl) = self.lifecycles.get_mut(&s) else {
            return; // stale timer or straggler after settlement
        };
        let actions = event(ctl);
        self.apply_actions(ctx, s, actions);
        self.settle_lifecycle(s);
    }

    /// Turn controller actions into serve-protocol traffic and timers.
    fn apply_actions(
        &mut self,
        ctx: &mut Ctx<ServeMsg>,
        s: SessionId,
        actions: Vec<ContractAction>,
    ) {
        for action in actions {
            match action {
                ContractAction::SendAward {
                    seller,
                    contract,
                    offer,
                } => ctx.send(
                    seller,
                    ServeMsg::Award {
                        session: s,
                        contract,
                        offer,
                    },
                    self.config.offer_msg_bytes,
                    "award",
                ),
                ContractAction::ArmAwardTimer { contract, delay } => ctx.schedule(
                    delay,
                    ServeMsg::AwardTimeout {
                        session: s,
                        contract,
                    },
                    "award-timeout",
                ),
                ContractAction::SendLease { seller, contract } => ctx.send_lease(
                    seller,
                    ServeMsg::Lease {
                        session: s,
                        contract,
                    },
                    "lease",
                ),
                ContractAction::ArmLeaseTimer { contract, delay } => ctx.schedule(
                    delay,
                    ServeMsg::LeaseTick {
                        session: s,
                        contract,
                    },
                    "lease-tick",
                ),
                ContractAction::SendRelease { seller, contract } => ctx.send(
                    seller,
                    ServeMsg::Release {
                        session: s,
                        contract,
                    },
                    self.config.offer_msg_bytes,
                    "release",
                ),
                ContractAction::SendRetrade {
                    targets,
                    round,
                    items,
                } => {
                    let entry = SessionRfb {
                        session: s,
                        req: session_req(s, round),
                        round,
                        items: Arc::new(items),
                        hints: Arc::new(Vec::new()),
                    };
                    let bytes = entry.items.len() as f64 * self.config.query_msg_bytes;
                    for seller in targets {
                        ctx.send(
                            seller,
                            ServeMsg::Rfb {
                                entries: vec![entry.clone()],
                            },
                            bytes,
                            "rfb-repair",
                        );
                    }
                }
                ContractAction::ArmRetradeTimer { round, delay } => ctx.schedule(
                    delay,
                    ServeMsg::RetradeTimeout { session: s, round },
                    "retrade-timeout",
                ),
            }
        }
    }

    /// If `s`'s lifecycle has settled, retire it: accumulate its counters and
    /// patch the session's report with the (possibly repaired) plan.
    fn settle_lifecycle(&mut self, s: SessionId) {
        let settled = self.lifecycles.get(&s).map(|c| c.settled).unwrap_or(false);
        if !settled {
            return;
        }
        let ctl = self.lifecycles.remove(&s).expect("checked above");
        self.contract_stats.accumulate(&ctl.stats);
        let mut settled_plan = None;
        if let Some(report) = self.completed.iter_mut().find(|r| r.session == s) {
            report.plan = ctl.plan_valid().then(|| ctl.plan.clone());
            report.reawards = ctl.stats.reawards;
            report.rescoped_trades = ctl.stats.rescoped_trades;
            report.repaired = ctl.stats.contracts_repaired > 0;
            settled_plan = report.plan.clone().map(|p| (report.iterations, p));
        }
        // The (possibly repaired) plan is final only now.
        if let Some((iterations, plan)) = settled_plan {
            self.cache_finished_plan(iterations, &plan);
        }
    }
}

/// Aggregate result of one serving run.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-session reports, ascending session id.
    pub reports: Vec<SessionReport>,
    /// Raw simulator metrics.
    pub metrics: qt_net::Metrics,
    /// First arrival to last completion, virtual seconds.
    pub makespan: f64,
    /// Completed sessions per virtual second.
    pub qps: f64,
    /// Median session latency (arrival → finish), virtual seconds.
    pub p50_latency: f64,
    /// 95th-percentile session latency, virtual seconds.
    pub p95_latency: f64,
    /// 99th-percentile session latency, virtual seconds.
    pub p99_latency: f64,
    /// 99.9th-percentile tail latency, virtual seconds.
    pub p999_latency: f64,
    /// Protocol messages exchanged (arrival injections excluded).
    pub messages: u64,
    /// `messages / sessions`.
    pub messages_per_query: f64,
    /// Total seller optimization effort (sub-plans enumerated).
    pub seller_effort: u64,
    /// RFB items answered from seller offer caches.
    pub offer_cache_hits: u64,
    /// RFB items evaluated fresh.
    pub offer_cache_misses: u64,
    /// Sessions answered from the shared result cache (zero traffic).
    pub result_cache_hits: u64,
    /// Sessions that probed the result cache and traded from cold (zero
    /// when no cache is configured).
    pub result_cache_misses: u64,
    /// Aggregated contract-lifecycle counters (zeros with the lifecycle off).
    pub contracts: ContractStats,
}

/// Serve `arrivals` — `(virtual arrival time, query)` pairs, arrival times
/// non-decreasing — through one federation on the discrete-event simulator
/// with a uniform topology built from `config.link`.
///
/// Every query becomes a [`SessionId`] in arrival order. At most
/// `serve.concurrency` sessions trade at once; the rest queue FIFO. Returns
/// per-session reports plus the throughput aggregates.
pub fn run_qt_serve(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    arrivals: Vec<(f64, Query)>,
    sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
    serve: &ServeConfig,
) -> ServeOutcome {
    run_qt_serve_with_faults(buyer_node, dict, arrivals, sellers, config, serve, None)
}

/// [`run_qt_serve`] under an injected [`FaultPlan`] — message drops,
/// duplicates, jitter, crash windows, partitions. With
/// `config.enable_contracts` the per-session contract lifecycles detect
/// winner losses and repair the affected sessions' plans; a session whose
/// plan could not be repaired reports `plan: None` while every other session
/// completes untouched.
pub fn run_qt_serve_with_faults(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    arrivals: Vec<(f64, Query)>,
    mut sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
    serve: &ServeConfig,
    faults: Option<FaultPlan>,
) -> ServeOutcome {
    assert!(serve.concurrency >= 1, "concurrency must be at least 1");
    let n = arrivals.len();
    let cache_hits_before: u64 = sellers.values().map(|s| s.cache_hits).sum();
    let cache_misses_before: u64 = sellers.values().map(|s| s.cache_misses).sum();
    let local_seller = sellers.remove(&buyer_node);
    let remote: Vec<NodeId> = sellers.keys().copied().collect();
    let all_remote = remote.clone();
    let mut arrive_times = Vec::with_capacity(n);
    let mut queries = Vec::with_capacity(n);
    for (at, q) in arrivals {
        arrive_times.push(at);
        queries.push(Some(q));
    }
    let manager = SessionManager {
        node: buyer_node,
        dict,
        config: config.clone(),
        serve: serve.clone(),
        remote_sellers: remote,
        local_seller,
        queries,
        arrive_times: arrive_times.clone(),
        sessions: BTreeMap::new(),
        waiting: VecDeque::new(),
        stage: BTreeMap::new(),
        flush_pending: false,
        completed: Vec::new(),
        retries: 0,
        timeouts_fired: 0,
        degraded_rounds: 0,
        unreachable: BTreeSet::new(),
        lifecycles: BTreeMap::new(),
        contract_stats: ContractStats::default(),
        result_cache_hits: 0,
        result_cache_misses: 0,
    };
    let mut sim: Simulator<ServeMsg, ServeNode> = Simulator::new(Topology::Uniform(config.link));
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    sim.add_node(buyer_node, ServeNode::Buyer(Box::new(manager)));
    for (node, engine) in sellers {
        sim.add_node(node, ServeNode::Seller(Box::new(engine)));
    }
    for (i, &at) in arrive_times.iter().enumerate() {
        sim.inject(
            at,
            buyer_node,
            buyer_node,
            ServeMsg::Arrive {
                session: SessionId(i as u64),
            },
            "arrive",
        );
    }
    sim.run(100_000_000);

    let metrics = sim.metrics.clone();
    let mut seller_effort = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for node in &all_remote {
        if let Some(ServeNode::Seller(e)) = sim.handler(*node) {
            seller_effort += e.total_effort;
            cache_hits += e.cache_hits;
            cache_misses += e.cache_misses;
        }
    }
    let Some(ServeNode::Buyer(m)) = sim.handler_mut(buyer_node) else {
        panic!("buyer node is not a session manager");
    };
    finish_serve_outcome(
        m,
        n,
        seller_effort,
        cache_hits,
        cache_misses,
        cache_hits_before,
        cache_misses_before,
        metrics,
    )
}

/// Shared post-processing for the simulator and real-transport serving
/// drivers: fold the manager's state and seller counters into a
/// [`ServeOutcome`], patching the driver-filled fields of `metrics`.
#[allow(clippy::too_many_arguments)]
fn finish_serve_outcome(
    m: &mut SessionManager,
    n: usize,
    mut seller_effort: u64,
    mut cache_hits: u64,
    mut cache_misses: u64,
    cache_hits_before: u64,
    cache_misses_before: u64,
    mut metrics: qt_net::Metrics,
) -> ServeOutcome {
    assert_eq!(m.completed.len(), n, "run drained with sessions unfinished");
    assert!(
        m.lifecycles.is_empty(),
        "run drained with contract lifecycles unsettled"
    );
    if let Some(local) = &m.local_seller {
        seller_effort += local.total_effort;
        cache_hits += local.cache_hits;
        cache_misses += local.cache_misses;
    }
    metrics.offer_cache_hits = cache_hits - cache_hits_before;
    metrics.offer_cache_misses = cache_misses - cache_misses_before;
    metrics.retries = m.retries;
    metrics.timeouts = m.timeouts_fired;
    metrics.degraded_rounds = m.degraded_rounds;
    let contracts = m.contract_stats;
    metrics.awards_sent = contracts.awards_sent;
    metrics.award_retries = contracts.award_retries;
    metrics.lost_awards = contracts.lost_awards;
    metrics.lease_expiries = contracts.lease_expiries;
    metrics.reawards = contracts.reawards;
    let mut reports = std::mem::take(&mut m.completed);
    reports.sort_by_key(|r| r.session);

    let t0 = m.arrive_times.iter().copied().fold(f64::INFINITY, f64::min);
    let t_end = reports.iter().map(|r| r.finished).fold(0.0f64, f64::max);
    let makespan = if n == 0 { 0.0 } else { t_end - t0 };
    let mut latencies: Vec<f64> = reports.iter().map(|r| r.latency()).collect();
    latencies.sort_by(f64::total_cmp);
    // Per-mille indexing so p99.9 is expressible; `(len-1)*500/1000` floors
    // to the same index as the old `(len-1)*50/100`, keeping p50/p95
    // bit-identical to earlier releases.
    let pct = |p_milli: usize| -> f64 {
        if latencies.is_empty() {
            0.0
        } else {
            latencies[(latencies.len() - 1) * p_milli / 1000]
        }
    };
    let messages = metrics.messages - metrics.kind_count("arrive");
    ServeOutcome {
        qps: if makespan > 0.0 {
            n as f64 / makespan
        } else {
            0.0
        },
        p50_latency: pct(500),
        p95_latency: pct(950),
        p99_latency: pct(990),
        p999_latency: pct(999),
        messages,
        messages_per_query: if n > 0 {
            messages as f64 / n as f64
        } else {
            0.0
        },
        seller_effort,
        offer_cache_hits: metrics.offer_cache_hits,
        offer_cache_misses: metrics.offer_cache_misses,
        result_cache_hits: m.result_cache_hits,
        result_cache_misses: m.result_cache_misses,
        contracts,
        makespan,
        reports,
        metrics,
    }
}

/// [`run_qt_serve`] on the real thread-per-node transport (`qt_net::real`):
/// the session manager and every seller run on their own OS thread,
/// connected by bounded channels or loopback TCP per `real`. The handlers
/// are the exact ones the simulator runs, so per-session plans are
/// bit-identical to [`run_qt_serve`] under the same configuration. Latency
/// and makespan figures are **wall clock** — never compare them against the
/// simulator's virtual-time numbers.
pub fn run_qt_serve_real(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    arrivals: Vec<(f64, Query)>,
    mut sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
    serve: &ServeConfig,
    real: qt_net::RealConfig,
) -> ServeOutcome {
    assert!(serve.concurrency >= 1, "concurrency must be at least 1");
    let n = arrivals.len();
    let cache_hits_before: u64 = sellers.values().map(|s| s.cache_hits).sum();
    let cache_misses_before: u64 = sellers.values().map(|s| s.cache_misses).sum();
    let local_seller = sellers.remove(&buyer_node);
    let remote: Vec<NodeId> = sellers.keys().copied().collect();
    let mut arrive_times = Vec::with_capacity(n);
    let mut queries = Vec::with_capacity(n);
    for (at, q) in arrivals {
        arrive_times.push(at);
        queries.push(Some(q));
    }
    let manager = SessionManager {
        node: buyer_node,
        dict,
        config: config.clone(),
        serve: serve.clone(),
        remote_sellers: remote,
        local_seller,
        queries,
        arrive_times: arrive_times.clone(),
        sessions: BTreeMap::new(),
        waiting: VecDeque::new(),
        stage: BTreeMap::new(),
        flush_pending: false,
        completed: Vec::new(),
        retries: 0,
        timeouts_fired: 0,
        degraded_rounds: 0,
        unreachable: BTreeSet::new(),
        lifecycles: BTreeMap::new(),
        contract_stats: ContractStats::default(),
        result_cache_hits: 0,
        result_cache_misses: 0,
    };
    let mut rt: qt_net::RealRuntime<ServeMsg, ServeNode> = qt_net::RealRuntime::new(real);
    rt.add_node(buyer_node, ServeNode::Buyer(Box::new(manager)));
    for (node, engine) in sellers {
        rt.add_node(node, ServeNode::Seller(Box::new(engine)));
    }
    for (i, &at) in arrive_times.iter().enumerate() {
        rt.inject(
            at,
            buyer_node,
            buyer_node,
            ServeMsg::Arrive {
                session: SessionId(i as u64),
            },
            "arrive",
        );
    }
    // Serving is over when every session completed and (with the lifecycle
    // on) every contract settled; channel FIFO guarantees trailing awards
    // and releases are delivered before the shutdown marker.
    let out = rt.run(
        buyer_node,
        |h| matches!(h, ServeNode::Buyer(m) if m.completed.len() == n && m.lifecycles.is_empty()),
    );
    let metrics = out.metrics;
    let mut seller_effort = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut manager_back = None;
    for (_, handler) in out.handlers {
        match handler {
            ServeNode::Seller(e) => {
                seller_effort += e.total_effort;
                cache_hits += e.cache_hits;
                cache_misses += e.cache_misses;
            }
            ServeNode::Buyer(m) => manager_back = Some(m),
        }
    }
    let mut m = manager_back.expect("session manager returned");
    finish_serve_outcome(
        &mut m,
        n,
        seller_effort,
        cache_hits,
        cache_misses,
        cache_hits_before,
        cache_misses_before,
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_workload::{build_federation, FederationSpec};

    fn spec(nodes: u32, seed: u64) -> FederationSpec {
        FederationSpec {
            nodes,
            relations: 3,
            partitions_per_relation: 2,
            replication: 2,
            rows_per_partition: 20_000,
            scale: 1,
            seed,
            with_data: false,
            speed_spread: 1.0,
            data_skew: 0.0,
        }
    }

    fn engines(fed: &qt_workload::Federation, cfg: &QtConfig) -> BTreeMap<NodeId, SellerEngine> {
        fed.catalog
            .nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    SellerEngine::new(fed.catalog.holdings_of(n), cfg.clone()),
                )
            })
            .collect()
    }

    fn workload(fed: &qt_workload::Federation, n: usize) -> Vec<(f64, Query)> {
        use qt_workload::{gen_join_query, QueryShape};
        (0..n)
            .map(|i| {
                let shape = if i % 2 == 0 {
                    QueryShape::Chain
                } else {
                    QueryShape::Star
                };
                let q = gen_join_query(&fed.catalog.dict, shape, 2 + i % 2, i % 3 == 0, i as u64);
                (i as f64 * 0.05, q)
            })
            .collect()
    }

    fn run(fed: &qt_workload::Federation, n: usize, serve: &ServeConfig) -> ServeOutcome {
        let cfg = QtConfig::default();
        run_qt_serve(
            NodeId(0),
            fed.catalog.dict.clone(),
            workload(fed, n),
            engines(fed, &cfg),
            &cfg,
            serve,
        )
    }

    #[test]
    fn all_sessions_complete_with_plans() {
        let fed = build_federation(&spec(6, 3));
        let out = run(&fed, 8, &ServeConfig::default());
        assert_eq!(out.reports.len(), 8);
        for r in &out.reports {
            assert!(r.plan.is_some(), "session {} found no plan", r.session);
            assert!(r.finished >= r.started && r.started >= r.arrived);
        }
        assert!(out.qps > 0.0);
        assert!(out.p95_latency >= out.p50_latency);
        assert!(out.messages > 0);
    }

    #[test]
    fn concurrent_results_match_sequential() {
        let fed = build_federation(&spec(6, 7));
        let seq = run(&fed, 8, &ServeConfig::default());
        let conc = run(
            &fed,
            8,
            &ServeConfig {
                concurrency: 4,
                batch_rfbs: true,
                result_cache: None,
            },
        );
        for (a, b) in seq.reports.iter().zip(&conc.reports) {
            assert_eq!(a.session, b.session);
            assert_eq!(
                format!("{:?}", a.plan),
                format!("{:?}", b.plan),
                "plans diverge for {}",
                a.session
            );
        }
    }

    #[test]
    fn batching_reduces_messages() {
        let fed = build_federation(&spec(8, 11));
        let conc = ServeConfig {
            concurrency: 8,
            batch_rfbs: true,
            result_cache: None,
        };
        let unbatched = ServeConfig {
            concurrency: 8,
            batch_rfbs: false,
            result_cache: None,
        };
        let a = run(&fed, 12, &conc);
        let b = run(&fed, 12, &unbatched);
        assert!(
            a.messages < b.messages,
            "batched {} >= unbatched {}",
            a.messages,
            b.messages
        );
        // Batching changes the wire schedule, never the results.
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(format!("{:?}", x.plan), format!("{:?}", y.plan));
        }
    }

    #[test]
    fn concurrency_improves_virtual_throughput() {
        let fed = build_federation(&spec(6, 5));
        let seq = run(&fed, 10, &ServeConfig::default());
        let conc = run(
            &fed,
            10,
            &ServeConfig {
                concurrency: 8,
                batch_rfbs: true,
                result_cache: None,
            },
        );
        assert!(
            conc.qps >= seq.qps,
            "concurrency should not reduce throughput: {} vs {}",
            conc.qps,
            seq.qps
        );
    }

    #[test]
    fn admission_limits_live_sessions() {
        // Simultaneous arrivals at t=0 with concurrency 2: later sessions
        // must start strictly after earlier ones finish.
        let fed = build_federation(&spec(5, 9));
        let cfg = QtConfig::default();
        let arrivals: Vec<(f64, Query)> = workload(&fed, 6)
            .into_iter()
            .map(|(_, q)| (0.0, q))
            .collect();
        let out = run_qt_serve(
            NodeId(0),
            fed.catalog.dict.clone(),
            arrivals,
            engines(&fed, &cfg),
            &cfg,
            &ServeConfig {
                concurrency: 2,
                batch_rfbs: true,
                result_cache: None,
            },
        );
        assert_eq!(out.reports.len(), 6);
        let mut by_start: Vec<(f64, f64)> = out
            .reports
            .iter()
            .map(|r| (r.started, r.finished))
            .collect();
        by_start.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in by_start.windows(3) {
            // With 2 slots, the 3rd-later start waits for some finish.
            assert!(w[2].0 >= w[0].1.min(w[1].1) - 1e-12);
        }
    }
}
