//! Configuration of a QT optimization run.

use qt_cost::{CostParams, NetLink, Valuation};
use qt_optimizer::JoinEnumerator;
use qt_trade::{ProtocolKind, SellerStrategy};

/// Tunables of the QT algorithm and its surrounding simulation.
#[derive(Debug, Clone)]
pub struct QtConfig {
    /// Maximum trading iterations before the buyer settles (the algorithm
    /// usually converges earlier; see experiment E6).
    pub max_iterations: u32,
    /// Maximum size of k-way partial join results sellers include in offers
    /// (§3.4 modified DP). Ablated in E12.
    pub max_partial_k: usize,
    /// Nested winner-selection protocol (B3/S3). Compared in E7.
    pub protocol: ProtocolKind,
    /// The buyer's offer-ranking valuation (§3.1).
    pub valuation: Valuation,
    /// Default seller strategy (cooperative truthful vs. competitive markup;
    /// individual sellers may override). Compared in E8.
    pub seller_strategy: SellerStrategy,
    /// Join enumerator used by seller-local optimizers.
    pub enumerator: JoinEnumerator,
    /// Enable the buyer predicates analyser (B5/B6). Ablated in E11; with it
    /// off, QT degenerates to one-shot Contract-Net bidding.
    pub enable_buyer_analyser: bool,
    /// Let sellers offer *partial aggregates* (pre-aggregated fragments à la
    /// the Corfu/Myconos SUMs of the motivating example).
    pub enable_partial_agg: bool,
    /// Let sellers answer from materialized views (§3.5).
    pub enable_views: bool,
    /// Let sellers subcontract missing fragments from third nodes (§3.5's
    /// deferred extension; evaluated in E10). Off by default, as in the
    /// paper.
    pub enable_subcontracting: bool,
    /// Cap on new queries the buyer predicates analyser may add to the
    /// working set per iteration (keeps RFBs bounded on fragmented data).
    pub max_new_queries_per_round: usize,
    /// Simulator-driver RFB timeout: the buyer closes a round after this
    /// many virtual seconds even if some sellers never answered (autonomous
    /// nodes are free to ignore RFBs).
    pub seller_timeout: f64,
    /// Simulator-driver RFB retransmissions: when the response deadline
    /// fires with sellers still unheard-from, the buyer re-sends the RFB to
    /// just those sellers up to this many times before degrading the round
    /// to the offers that arrived. Sellers dedup retransmissions by request
    /// id, so retries are idempotent.
    pub max_rfb_retries: u32,
    /// Backoff multiplier between RFB retransmissions: retry `n` waits
    /// `seller_timeout * rfb_retry_backoff^n`, capped at 8× the base
    /// timeout.
    pub rfb_retry_backoff: f64,
    /// Simulated seconds charged per sub-plan an optimizer enumerates
    /// (drives the optimization-time figures deterministically).
    pub per_subplan_seconds: f64,
    /// Simulated seconds the buyer spends per offer considered during plan
    /// generation.
    pub per_offer_seconds: f64,
    /// Link model between any two distinct nodes.
    pub link: NetLink,
    /// Shared operator cost constants.
    pub cost_params: CostParams,
    /// Approximate bytes of one serialized query in protocol messages.
    pub query_msg_bytes: f64,
    /// Approximate bytes of one serialized offer in protocol messages.
    pub offer_msg_bytes: f64,
    /// Run the full contract lifecycle after trading converges: two-phase
    /// awards (ack/decline with retransmission), execution leases renewed by
    /// heartbeat, and deterministic failover to runner-up offers or scoped
    /// re-trades when a winner is lost. Off by default — with it off, awards
    /// stay the pre-lifecycle one-way notices and every run is bit-identical
    /// to earlier releases.
    pub enable_contracts: bool,
    /// Seconds the buyer waits for an `AwardAck` before retransmitting the
    /// award (capped exponential backoff, like RFB retries).
    pub award_timeout: f64,
    /// Award retransmissions before the winner is declared lost and the
    /// contract fails over.
    pub max_award_retries: u32,
    /// Seconds between lease heartbeats the buyer sends to an awarded
    /// seller. Heartbeats are zero-byte control traffic (counted in
    /// `lease_events`, not `messages`) but ride the faultable network, so a
    /// crashed or partitioned winner stops renewing.
    pub lease_interval: f64,
    /// Consecutive missed lease renewals before the lease expires and the
    /// contract fails over.
    pub max_lease_misses: u32,
    /// Successful lease renewals after which the contract is considered
    /// firmly held and completes (bounds the lifecycle phase in virtual
    /// time).
    pub lease_probes: u32,
    /// Scoped re-trade rounds (mini QT rounds restricted to the lost
    /// subqueries) the buyer may run per optimization when the bid book has
    /// no runner-up left, before abandoning the slot.
    pub max_retrade_rounds: u32,
    /// Fan seller offer generation out across OS threads: the direct driver
    /// evaluates sellers concurrently and each seller evaluates its RFB items
    /// concurrently. Deterministic — results merge in input order, so plans,
    /// costs, and offer ids are bit-identical to a serial run. The worker
    /// budget follows `QT_THREADS` / the host core count (see `qt-par`).
    pub parallel: bool,
    /// Let seller offer caches answer RFBs *semantically*: an exact-key miss
    /// falls back to the §3.5 view matcher over cached replies, so offers
    /// priced for a subsuming query `Q'` are re-issued (suitably rewritten)
    /// for any `Q ⊑ Q'` at zero offer-construction effort. Off by default —
    /// with it off the cache is the PR-1 exact-fingerprint cache and every
    /// run is bit-identical to earlier releases.
    pub enable_semantic_cache: bool,
    /// Max entries per seller offer cache (`0` = unbounded, the PR-1
    /// behaviour). When bounded, admission/eviction is weighted by the
    /// offer-construction effort each entry saves per hit.
    pub offer_cache_entries: usize,
}

impl Default for QtConfig {
    fn default() -> Self {
        QtConfig {
            max_iterations: 8,
            max_partial_k: 2,
            protocol: ProtocolKind::SealedBid,
            valuation: Valuation::response_time(),
            seller_strategy: SellerStrategy::Truthful,
            enumerator: JoinEnumerator::Exhaustive,
            enable_buyer_analyser: true,
            enable_partial_agg: true,
            enable_views: true,
            enable_subcontracting: false,
            max_new_queries_per_round: 16,
            seller_timeout: 30.0,
            max_rfb_retries: 2,
            rfb_retry_backoff: 2.0,
            per_subplan_seconds: 2e-5,
            per_offer_seconds: 1e-5,
            link: NetLink::wan(),
            cost_params: CostParams::reference(),
            query_msg_bytes: 256.0,
            offer_msg_bytes: 128.0,
            enable_contracts: false,
            award_timeout: 10.0,
            max_award_retries: 2,
            lease_interval: 15.0,
            max_lease_misses: 2,
            lease_probes: 2,
            max_retrade_rounds: 2,
            parallel: true,
            enable_semantic_cache: false,
            offer_cache_entries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = QtConfig::default();
        assert!(c.max_iterations >= 1);
        assert!(c.max_partial_k >= 1);
        assert!(c.enable_buyer_analyser);
        assert_eq!(c.protocol, ProtocolKind::SealedBid);
    }

    #[test]
    fn contracts_default_off_with_bounded_lifecycle() {
        let c = QtConfig::default();
        assert!(!c.enable_contracts, "lifecycle must be opt-in");
        assert!(c.award_timeout > 0.0);
        assert!(c.lease_interval > 0.0);
        assert!(c.lease_probes >= 1, "the lease phase must terminate");
        assert!(c.max_retrade_rounds >= 1);
    }

    #[test]
    fn semantic_cache_defaults_off_and_unbounded() {
        let c = QtConfig::default();
        assert!(!c.enable_semantic_cache, "subsumption hits must be opt-in");
        assert_eq!(c.offer_cache_entries, 0, "PR-1 cache was unbounded");
    }
}
