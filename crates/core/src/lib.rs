//! The query-trading (QT) distributed query optimizer.
//!
//! This crate is the paper's contribution: query optimization as an
//! iterative trading negotiation between a *buyer* (the node that received
//! the user query) and autonomous *seller* nodes (everyone else). Per
//! iteration (Fig. 2 of the paper):
//!
//! | Step | Module |
//! |------|--------|
//! | B1: strategic valuation of the working set Q | [`qt_trade::BuyerValueBook`] via [`buyer`] |
//! | B2: Request-For-Bids broadcast | [`driver`] |
//! | S2.1–2.2: partial query construction & cost estimation | [`seller`] |
//! | S2.3: seller predicates analyser (materialized views) | [`seller`] |
//! | B3/S3: nested winner-selection negotiation | [`qt_trade::ProtocolKind`] via [`buyer`] |
//! | B4: candidate plan generation (answering queries using offers) | [`plangen`] |
//! | B5/B6: buyer predicates analyser (new working set) | [`analyser`] |
//! | B7/B8: convergence check, best plan | [`buyer`] |
//!
//! The engines are transport-independent; [`driver`] runs them either
//! *directly* (a synchronous loop with analytic message accounting — fast,
//! used for plan-quality experiments and tests) or *on the simulator*
//! (`qt-net` handlers with virtual time — used for optimization-time and
//! message-count experiments). Both produce identical plans and message
//! counts by construction; a test asserts it. A third runtime,
//! `qt_net::real`, executes the same handlers thread-per-node on real cores
//! (in-process channels or TCP via [`wire`]); the conformance suite in
//! `tests/real_transport.rs` proves its plans bit-identical to the sim's.

pub mod analyser;
pub mod buyer;
pub mod compensate;
pub mod config;
pub mod contract;
pub mod dist_plan;
pub mod driver;
pub mod offer;
pub mod plangen;
pub mod relset;
pub mod seller;
pub mod session;
pub mod wire;

pub use buyer::{remote_awards, winner_set, BuyerEngine};
pub use compensate::{compensate_assembly, compensate_plan};
pub use config::QtConfig;
pub use contract::{
    is_repair_round, ContractAction, ContractController, ContractReport, ContractStats,
    LEGACY_CONTRACT, REPAIR_ROUND_BASE,
};
pub use dist_plan::{DistributedPlan, PlanEstimate, Purchase};
pub use driver::{
    run_qt_direct, run_qt_real, run_qt_sim, run_qt_sim_with_faults, run_qt_sim_with_topology,
    QtOutcome,
};
pub use offer::{Offer, OfferKind, RfbItem};
pub use relset::RelSet;
pub use seller::{session_req, SellerEngine, SessionRfb};
pub use session::{
    new_result_cache, run_qt_serve, run_qt_serve_real, run_qt_serve_with_faults, ServeConfig,
    ServeMsg, ServeNode, ServeOutcome, SessionManager, SessionReport, SharedResultCache,
};
