//! RFB items and offers — the protocol payloads of the trading loop.

use qt_catalog::NodeId;
use qt_cost::AnswerProperties;
use qt_query::Query;

/// One entry of a Request-For-Bids: a query the buyer wants valued, with the
/// buyer's current reference value for it (step B1's strategic estimate).
#[derive(Debug, Clone, PartialEq)]
pub struct RfbItem {
    /// The query being requested.
    pub query: Query,
    /// The buyer's reference value (its walk-away reserve derives from it).
    pub ref_value: f64,
}

/// How the offered rows relate to the offered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferKind {
    /// Plain rows of the offer's (SPJ) query.
    Rows,
    /// Pre-aggregated rows: one row per group *within the seller's
    /// fragment*; the buyer must re-aggregate partial groups.
    PartialAggregate,
    /// Rows served from a materialized view (possibly stale, hence the
    /// `freshness` property).
    FromView,
}

/// A seller's offer: "I will deliver the answer of `query` with properties
/// `props`". Offers are the commodity of QT (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Offer {
    /// Unique id within the optimization run.
    pub id: u64,
    /// The offering seller.
    pub seller: NodeId,
    /// The exact (rewritten) query whose answer is promised.
    pub query: Query,
    /// Asking properties (after the seller's strategy markup).
    pub props: AnswerProperties,
    /// The seller's true delivery cost in valuation units. Private in a real
    /// federation; carried here to drive auction dynamics and surplus
    /// accounting in the simulation.
    pub true_cost: f64,
    /// What the delivered rows are.
    pub kind: OfferKind,
    /// Which RFB round produced this offer.
    pub round: u32,
    /// Sub-purchases this offer depends on (§3.5 subcontracting): the seller
    /// will buy these fragments from third nodes to assemble its answer.
    /// Empty for ordinary offers.
    pub subcontracts: Vec<(NodeId, Query)>,
}

impl Offer {
    /// Stable fingerprint of the offered query (the buyer's value-book key
    /// and the seller's offer-cache key).
    pub fn query_key(query: &Query) -> u64 {
        query.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::{
        AttrType, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning, RelationSchema,
    };
    use qt_query::{parse_query, PartSet, SelectItem};

    #[test]
    fn query_key_is_stable_and_discriminating() {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int)]),
            Partitioning::Hash { attr: 0, parts: 2 },
        );
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(1, &[1]));
        b.set_stats(PartId::new(r, 1), PartitionStats::synthetic(1, &[1]));
        b.place(PartId::new(r, 0), NodeId(0));
        b.place(PartId::new(r, 1), NodeId(0));
        let cat = b.build();
        let q = parse_query(&cat.dict, "SELECT a FROM r").unwrap();
        assert_eq!(Offer::query_key(&q), Offer::query_key(&q.clone()));
        let restricted = q.clone().with_partset(r, PartSet::single(0));
        assert_ne!(Offer::query_key(&q), Offer::query_key(&restricted));
        let other = qt_query::Query::over_full(&cat.dict, [r])
            .with_select(vec![SelectItem::Col(qt_query::Col::new(r, 0))])
            .with_order_by(vec![qt_query::Col::new(r, 0)]);
        assert_ne!(Offer::query_key(&q), Offer::query_key(&other));
    }
}
