//! Drivers: run the trading loop directly (synchronous, analytic time) or on
//! the discrete-event simulator (virtual time). Both produce the same plans
//! and message counts; the simulator additionally yields realistic timing
//! under node/link contention.

use crate::buyer::{remote_awards, winner_set, BuyerEngine, IterationStats, RoundOutcome};
use crate::config::QtConfig;
use crate::contract::{
    is_repair_round, ContractAction, ContractController, ContractReport, LEGACY_CONTRACT,
};
use crate::dist_plan::DistributedPlan;
use crate::offer::{Offer, RfbItem};
use crate::seller::SellerEngine;
use qt_catalog::{NodeId, SchemaDict};
use qt_net::{Ctx, FaultPlan, Handler, Simulator, Topology};
use qt_query::Query;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The result of one QT optimization run.
#[derive(Debug)]
pub struct QtOutcome {
    /// The final plan (None = optimization failed / no coverage).
    pub plan: Option<DistributedPlan>,
    /// Trading iterations executed.
    pub iterations: u32,
    /// Protocol messages exchanged (RFBs, offers, negotiation, awards).
    pub messages: u64,
    /// Protocol bytes exchanged.
    pub bytes: f64,
    /// Optimization time in simulated seconds.
    pub optimization_time: f64,
    /// Total seller optimization effort (sub-plans enumerated).
    pub seller_effort: u64,
    /// Total buyer plan-generation effort.
    pub buyer_considered: u64,
    /// RFB items sellers answered from their offer caches during this run.
    pub offer_cache_hits: u64,
    /// RFB items sellers had to evaluate fresh during this run.
    pub offer_cache_misses: u64,
    /// RFB retransmissions sent after a response deadline expired
    /// (simulator driver; always 0 for the direct driver's perfect network).
    pub retries: u64,
    /// Response deadlines that fired while a round was still open.
    pub timeouts: u64,
    /// Rounds closed without offers from every live seller.
    pub degraded_rounds: u32,
    /// Sellers that never answered their last RFB (even after retries) and
    /// were traded around. A seller that answers a later round is removed.
    pub unreachable_sellers: Vec<NodeId>,
    /// Contracts created over the run's lifecycle phase (0 with
    /// `enable_contracts` off).
    pub contracts_awarded: u64,
    /// Distinct plan slots whose replacement contract completed after a
    /// winner loss.
    pub contracts_repaired: u64,
    /// Re-awards to runner-up offers from the persisted bid book.
    pub reawards: u64,
    /// Scoped re-trade rounds run to repair slots the book could not cover.
    pub rescoped_trades: u64,
    /// Per-contract final standing (empty with `enable_contracts` off).
    pub contracts: Vec<ContractReport>,
    /// Per-iteration statistics.
    pub history: Vec<IterationStats>,
}

/// Run QT synchronously. `sellers` maps every federation node (other than or
/// including the buyer) to its engine; the buyer's own engine (if present)
/// responds without network cost.
///
/// ```
/// use qt_catalog::NodeId;
/// use qt_core::{run_qt_direct, QtConfig, SellerEngine};
/// use qt_query::parse_query;
/// use qt_workload::{build_federation, FederationSpec};
/// use std::collections::BTreeMap;
///
/// let fed = build_federation(&FederationSpec {
///     with_data: true,
///     rows_per_partition: 50,
///     ..FederationSpec::default()
/// });
/// let query = parse_query(
///     &fed.catalog.dict,
///     "SELECT r0.b, SUM(r1.c) FROM r0, r1 WHERE r0.a = r1.a GROUP BY r0.b",
/// )
/// .unwrap();
///
/// // Each node is an autonomous seller seeing only its own holdings.
/// let mut sellers: BTreeMap<NodeId, SellerEngine> = fed
///     .catalog
///     .nodes
///     .iter()
///     .map(|&n| (n, SellerEngine::new(fed.catalog.holdings_of(n), QtConfig::default())))
///     .collect();
///
/// let outcome =
///     run_qt_direct(NodeId(0), fed.catalog.dict.clone(), &query, &mut sellers, &QtConfig::default());
/// let plan = outcome.plan.expect("the federation covers the query");
/// assert!(outcome.messages > 0);
/// // The distributed plan executes against the per-node stores.
/// let answer = plan.execute_on(&fed.catalog.dict, &fed.stores).unwrap();
/// assert!(!answer.is_empty());
/// ```
pub fn run_qt_direct(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    query: &Query,
    sellers: &mut BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
) -> QtOutcome {
    let mut buyer = BuyerEngine::new(buyer_node, dict, query.clone(), config.clone());
    let mut messages = 0u64;
    let mut bytes = 0.0f64;
    let mut time = 0.0f64;
    let mut seller_effort = 0u64;
    let mut prev_neg_msgs = 0u64;
    let mut prev_neg_rts = 0u64;
    let cache_hits_before: u64 = sellers.values().map(|s| s.cache_hits).sum();
    let cache_misses_before: u64 = sellers.values().map(|s| s.cache_misses).sum();

    let mut items = buyer.start();
    let mut hints: Vec<Offer> = Vec::new();
    loop {
        let rfb_bytes = (items.len() + hints.len()) as f64 * config.query_msg_bytes;
        let mut round_path = 0.0f64;
        // Fan the round out: sellers evaluate concurrently (each node is an
        // autonomous machine — this is exactly the real system's shape), then
        // merge in ascending NodeId order. The merge order, the per-seller
        // offer-id counters, and the per-item id stamping make the outcome
        // bit-identical to `config.parallel = false`.
        let round = buyer.round;
        let workers = if config.parallel {
            qt_par::max_threads()
        } else {
            1
        };
        let mut engines: Vec<(NodeId, &mut SellerEngine)> =
            sellers.iter_mut().map(|(&n, e)| (n, e)).collect();
        let responses = qt_par::par_map_mut(&mut engines, workers, |(_, engine)| {
            engine.respond_with_hints(round, &items, &hints)
        });
        for ((node, _), resp) in engines.iter().zip(responses) {
            seller_effort += resp.effort;
            let compute = resp.effort as f64 * config.per_subplan_seconds;
            if *node == buyer_node {
                round_path = round_path.max(compute);
            } else {
                let back = resp.offers.len() as f64 * config.offer_msg_bytes;
                let path = config.link.transfer_time(rfb_bytes)
                    + compute
                    + config.link.transfer_time(back);
                round_path = round_path.max(path);
                messages += 2; // RFB out + offers back (possibly empty)
                bytes += rfb_bytes + back;
            }
            buyer.receive_offers(resp.offers);
        }
        time += round_path;
        let outcome = buyer.close_round();
        let considered = buyer.history.last().map(|h| h.considered).unwrap_or(0);
        time += considered as f64 * config.per_offer_seconds;
        let neg_msgs = buyer.negotiation_messages - prev_neg_msgs;
        let neg_rts = buyer.negotiation_round_trips - prev_neg_rts;
        prev_neg_msgs = buyer.negotiation_messages;
        prev_neg_rts = buyer.negotiation_round_trips;
        messages += neg_msgs;
        bytes += neg_msgs as f64 * config.offer_msg_bytes;
        time += neg_rts as f64 * 2.0 * config.link.latency;
        match outcome {
            RoundOutcome::Continue(next) => {
                items = next;
                if config.enable_subcontracting {
                    hints = buyer.hints();
                }
            }
            RoundOutcome::Done => break,
        }
    }
    // Awards to the remote winning sellers. The direct driver's network is
    // perfect, so the lifecycle never repairs anything here; with
    // `enable_contracts` on it still pays the two-phase protocol (award,
    // ack, release per remote purchase — lease heartbeats are zero-byte
    // control traffic and never count as messages).
    let mut contracts_awarded = 0u64;
    if let Some(plan) = &buyer.best {
        let awards = remote_awards(plan, buyer_node);
        if config.enable_contracts {
            contracts_awarded = plan.purchases.len() as u64;
            messages += 3 * awards.len() as u64;
            bytes += 3.0 * awards.len() as f64 * config.offer_msg_bytes;
        } else {
            messages += awards.len() as u64;
            bytes += awards.len() as f64 * config.offer_msg_bytes;
        }
        let winners = winner_set(plan);
        // Scope the cache invalidation to the traded query's relations:
        // adaptive sellers move their markup on the outcome, which stales
        // only cached asks touching those relations.
        let rels = query.rel_ids().collect();
        for (&node, engine) in sellers.iter_mut() {
            engine.observe_award_scoped(winners.contains(&node), &rels);
        }
    }
    QtOutcome {
        iterations: buyer.round + 1,
        messages,
        bytes,
        optimization_time: time,
        seller_effort,
        buyer_considered: buyer.total_considered(),
        offer_cache_hits: sellers.values().map(|s| s.cache_hits).sum::<u64>() - cache_hits_before,
        offer_cache_misses: sellers.values().map(|s| s.cache_misses).sum::<u64>()
            - cache_misses_before,
        retries: 0,
        timeouts: 0,
        degraded_rounds: 0,
        unreachable_sellers: Vec::new(),
        contracts_awarded,
        contracts_repaired: 0,
        reawards: 0,
        rescoped_trades: 0,
        contracts: Vec::new(),
        history: buyer.history.clone(),
        plan: buyer.best,
    }
}

// ---------------------------------------------------------------------------
// Simulator driver
// ---------------------------------------------------------------------------

/// Protocol messages of the QT trading loop.
#[derive(Debug, Clone, PartialEq)]
pub enum QtMsg {
    /// Kick off the optimization at the buyer.
    Start,
    /// Request-For-Bids (B2). Payloads are shared — the buyer broadcasts one
    /// `Arc` to every seller instead of deep-copying the working set per
    /// recipient.
    Rfb {
        /// Request id: identical across retransmissions of the same RFB, so
        /// sellers can answer duplicates idempotently.
        req: u64,
        /// Round number.
        round: u32,
        /// The queries out for bid.
        items: Arc<Vec<RfbItem>>,
        /// Market hints for subcontracting sellers.
        hints: Arc<Vec<Offer>>,
    },
    /// A seller's offers for a round (possibly empty — also the
    /// round-completion signal).
    Offers {
        /// The round being answered.
        round: u32,
        /// The offers.
        offers: Vec<Offer>,
    },
    /// The buyer's own RFB timeout timer.
    Timeout {
        /// The round the timer guards.
        round: u32,
    },
    /// Synthetic nested-negotiation traffic (auction rounds, bargaining).
    Negotiate,
    /// Award notice to a winning seller. With the lifecycle off the contract
    /// id is [`LEGACY_CONTRACT`] and the seller sends nothing back (the
    /// pre-lifecycle one-way notice, bit-identical on the wire); otherwise
    /// the seller must answer with [`QtMsg::AwardAck`] or
    /// [`QtMsg::AwardDecline`].
    Award {
        /// Contract id (or [`LEGACY_CONTRACT`]).
        contract: u64,
        /// The awarded offer id.
        offer: u64,
    },
    /// Seller → buyer: award accepted, lease begins.
    AwardAck {
        /// Contract id.
        contract: u64,
    },
    /// Seller → buyer: award refused; the buyer fails the slot over.
    AwardDecline {
        /// Contract id.
        contract: u64,
    },
    /// Buyer → seller: zero-byte lease heartbeat (counted in
    /// `lease_events`, not `messages`).
    Lease {
        /// Contract id.
        contract: u64,
    },
    /// Seller → buyer: lease renewed (zero-byte, like the heartbeat).
    LeaseAck {
        /// Contract id.
        contract: u64,
    },
    /// Buyer → seller: the contract completed; release the lease.
    Release {
        /// Contract id.
        contract: u64,
    },
    /// Buyer-local timer: the award-ack deadline for a contract.
    AwardTimeout {
        /// Contract id.
        contract: u64,
    },
    /// Buyer-local timer: the periodic lease-renewal check for a contract.
    LeaseTick {
        /// Contract id.
        contract: u64,
    },
    /// Buyer-local timer: the response deadline of a scoped re-trade round.
    RetradeTimeout {
        /// Repair round number.
        round: u32,
    },
}

/// A federation node in the simulator: every node can sell; one also buys.
pub enum QtNode {
    /// A pure seller.
    Seller(Box<SellerEngine>),
    /// The buyer (with an optional local seller engine for its own data).
    Buyer(Box<BuyerSim>),
}

/// Simulator-side state of the buying node.
pub struct BuyerSim {
    /// The trading engine.
    pub engine: BuyerEngine,
    /// The buyer's own seller side (its local data also competes).
    pub local_seller: Option<SellerEngine>,
    remote_sellers: Vec<NodeId>,
    /// Current-round replies buffered until the round closes, keyed by
    /// seller. Feeding the engine at round close in ascending seller order
    /// (not arrival order) makes the trading outcome insensitive to message
    /// scheduling — the property that lets the real transport reproduce the
    /// simulator's plans bit-for-bit, and the same rule the serving layer
    /// and the direct driver already follow.
    pending: std::collections::BTreeMap<NodeId, Vec<Offer>>,
    /// Every `(round, seller)` reply already consumed — duplicated
    /// deliveries and dedup resends are discarded, so a seller's offers
    /// enter the pool exactly once per round.
    seen_replies: std::collections::BTreeSet<(u32, NodeId)>,
    /// Retransmission attempts made in the current round.
    attempt: u32,
    /// Current round's RFB payload, kept for retransmission.
    cur_items: Arc<Vec<RfbItem>>,
    cur_hints: Arc<Vec<Offer>>,
    round_open: bool,
    prev_neg_msgs: u64,
    prev_neg_rts: u64,
    /// RFB retransmissions sent.
    pub retries: u64,
    /// Response deadlines that fired while their round was open.
    pub timeouts_fired: u64,
    /// Rounds closed with sellers still missing.
    pub degraded_rounds: u32,
    /// Sellers that never answered their last RFB.
    pub unreachable: std::collections::BTreeSet<NodeId>,
    /// Set when trading finished.
    pub done: bool,
    /// Virtual time at which trading finished.
    pub finish_time: f64,
    /// Contract lifecycle driver (`enable_contracts` only); created when
    /// trading converges and settled before the simulation drains.
    pub controller: Option<ContractController>,
}

impl Handler<QtMsg> for QtNode {
    fn on_message(&mut self, ctx: &mut Ctx<QtMsg>, from: NodeId, msg: QtMsg) {
        match (self, msg) {
            (
                QtNode::Seller(engine),
                QtMsg::Rfb {
                    req,
                    round,
                    items,
                    hints,
                },
            ) => {
                if engine.offline_rounds.contains(&round) {
                    // Autonomy: the node simply does not answer.
                    return;
                }
                // Idempotent: a retransmitted or duplicated RFB with a known
                // request id is answered with the identical reply at zero
                // effort.
                let resp = engine.respond_request(req, round, &items, &hints);
                ctx.charge_compute(resp.effort as f64 * engine_cfg(engine).per_subplan_seconds);
                let bytes = resp.offers.len() as f64 * engine_cfg(engine).offer_msg_bytes;
                ctx.send(
                    from,
                    QtMsg::Offers {
                        round,
                        offers: resp.offers,
                    },
                    bytes,
                    "offers",
                );
            }
            (QtNode::Seller(engine), QtMsg::Award { contract, offer }) => {
                if contract == LEGACY_CONTRACT {
                    // Pre-lifecycle one-way notice: record the win, send
                    // nothing back. The awarded offer id resolves which
                    // relations the win touches, so unrelated cache entries
                    // survive the strategy update.
                    engine.observe_award_for_offer(true, offer);
                } else {
                    // Two-phase award: learn from the win exactly once, but
                    // re-ack every (possibly retransmitted) award so a lost
                    // ack does not strand the buyer.
                    if engine.accept_award(contract) {
                        engine.observe_award_for_offer(true, offer);
                    }
                    ctx.send(
                        from,
                        QtMsg::AwardAck { contract },
                        engine_cfg(engine).offer_msg_bytes,
                        "award-ack",
                    );
                }
            }
            (QtNode::Seller(engine), QtMsg::Lease { contract }) => {
                // Renew only leases actually held; the reply rides the
                // faultable network as zero-byte control traffic.
                if engine.has_contract(contract) {
                    ctx.send_lease(from, QtMsg::LeaseAck { contract }, "lease-ack");
                }
            }
            (QtNode::Seller(engine), QtMsg::Release { contract }) => {
                engine.release_contract(contract);
            }
            (QtNode::Seller(_), _) => {}
            (QtNode::Buyer(b), QtMsg::Start) => {
                let items = b.engine.start();
                b.broadcast(ctx, 0, items, Vec::new());
            }
            (QtNode::Buyer(b), QtMsg::Offers { round, offers }) => {
                // A duplicated delivery or a seller's dedup resend carries a
                // (round, seller) pair already consumed: discard it, so the
                // offer pool and the awaiting count never double-book.
                if !b.seen_replies.insert((round, from)) {
                    return;
                }
                // Scoped re-trade replies feed the contract controller, not
                // the (already converged) trading engine.
                if is_repair_round(round) {
                    b.ctl_event(ctx, |c| c.on_retrade_offers(from, round, offers));
                    return;
                }
                // A seller that answers — even late — is reachable.
                b.unreachable.remove(&from);
                if b.round_open && round == b.engine.round {
                    // Buffer current-round replies; they enter the pool in
                    // ascending seller order when the round closes.
                    b.pending.insert(from, offers);
                    if b.pending.len() == b.remote_sellers.len() {
                        b.finish_round(ctx);
                    }
                } else {
                    // A straggler from an already-closed round: all market
                    // information is welcome, it just can't advance a round.
                    b.engine.receive_offers(offers);
                }
            }
            (QtNode::Buyer(b), QtMsg::Timeout { round }) => {
                if !(b.round_open && round == b.engine.round) {
                    return; // stale timer from an already-closed round
                }
                b.timeouts_fired += 1;
                let missing: Vec<NodeId> = b
                    .remote_sellers
                    .iter()
                    .copied()
                    .filter(|s| !b.pending.contains_key(s))
                    .collect();
                if !missing.is_empty() && b.attempt < b.engine.config.max_rfb_retries {
                    // Retransmit only to the unanswered sellers, then re-arm
                    // the deadline with capped exponential backoff.
                    b.attempt += 1;
                    let bytes = (b.cur_items.len() + b.cur_hints.len()) as f64
                        * b.engine.config.query_msg_bytes;
                    for &s in &missing {
                        b.retries += 1;
                        ctx.send(
                            s,
                            QtMsg::Rfb {
                                req: round as u64,
                                round,
                                items: Arc::clone(&b.cur_items),
                                hints: Arc::clone(&b.cur_hints),
                            },
                            bytes,
                            "rfb-retry",
                        );
                    }
                    let base = b.engine.config.seller_timeout;
                    let delay = (base * b.engine.config.rfb_retry_backoff.powi(b.attempt as i32))
                        .min(8.0 * base);
                    ctx.schedule(delay, QtMsg::Timeout { round }, "timeout");
                } else {
                    // Graceful degradation: trade with the offers that
                    // arrived and remember who never answered.
                    if !missing.is_empty() {
                        b.degraded_rounds += 1;
                        b.unreachable.extend(missing);
                    }
                    b.finish_round(ctx);
                }
            }
            (QtNode::Buyer(b), QtMsg::AwardAck { contract }) => {
                b.ctl_event(ctx, |c| c.on_award_ack(contract));
            }
            (QtNode::Buyer(b), QtMsg::AwardDecline { contract }) => {
                b.ctl_event(ctx, |c| c.on_award_decline(contract));
            }
            (QtNode::Buyer(b), QtMsg::LeaseAck { contract }) => {
                b.ctl_event(ctx, |c| c.on_lease_ack(contract));
            }
            (QtNode::Buyer(b), QtMsg::AwardTimeout { contract }) => {
                b.ctl_event(ctx, |c| c.on_award_timeout(contract));
            }
            (QtNode::Buyer(b), QtMsg::LeaseTick { contract }) => {
                b.ctl_event(ctx, |c| c.on_lease_tick(contract));
            }
            (QtNode::Buyer(b), QtMsg::RetradeTimeout { round }) => {
                b.ctl_event(ctx, |c| c.on_retrade_timeout(round));
            }
            (QtNode::Buyer(_), _) => {}
        }
    }
}

fn engine_cfg(engine: &SellerEngine) -> &QtConfig {
    // SellerEngine keeps its config private; expose the two constants we
    // need through a tiny accessor.
    engine.config()
}

impl BuyerSim {
    fn broadcast(
        &mut self,
        ctx: &mut Ctx<QtMsg>,
        round: u32,
        items: Vec<RfbItem>,
        hints: Vec<Offer>,
    ) {
        // The buyer's own data competes without network messages.
        if let Some(local) = &mut self.local_seller {
            let resp = local.respond_with_hints(round, &items, &hints);
            ctx.charge_compute(resp.effort as f64 * self.engine.config.per_subplan_seconds);
            self.engine.receive_offers(resp.offers);
        }
        self.pending.clear();
        self.attempt = 0;
        self.round_open = true;
        let bytes = (items.len() + hints.len()) as f64 * self.engine.config.query_msg_bytes;
        self.cur_items = Arc::new(items);
        self.cur_hints = Arc::new(hints);
        for &s in &self.remote_sellers {
            ctx.send(
                s,
                QtMsg::Rfb {
                    req: round as u64,
                    round,
                    items: Arc::clone(&self.cur_items),
                    hints: Arc::clone(&self.cur_hints),
                },
                bytes,
                "rfb",
            );
        }
        if self.remote_sellers.is_empty() {
            self.finish_round(ctx);
        } else {
            ctx.schedule(
                self.engine.config.seller_timeout,
                QtMsg::Timeout { round },
                "timeout",
            );
        }
    }

    fn finish_round(&mut self, ctx: &mut Ctx<QtMsg>) {
        self.round_open = false;
        // Drain the round's replies in ascending seller order — the same
        // sequence the direct driver's merge produces — so the offer pool's
        // contents are independent of delivery timing.
        for (_, offers) in std::mem::take(&mut self.pending) {
            self.engine.receive_offers(offers);
        }
        let outcome = self.engine.close_round();
        let considered = self
            .engine
            .history
            .last()
            .map(|h| h.considered)
            .unwrap_or(0);
        ctx.charge_compute(considered as f64 * self.engine.config.per_offer_seconds);
        // Nested-negotiation traffic.
        let neg_msgs = self.engine.negotiation_messages - self.prev_neg_msgs;
        let neg_rts = self.engine.negotiation_round_trips - self.prev_neg_rts;
        self.prev_neg_msgs = self.engine.negotiation_messages;
        self.prev_neg_rts = self.engine.negotiation_round_trips;
        ctx.charge_compute(neg_rts as f64 * 2.0 * self.engine.config.link.latency);
        for i in 0..neg_msgs {
            let to = self.remote_sellers[i as usize % self.remote_sellers.len().max(1)];
            ctx.send(
                to,
                QtMsg::Negotiate,
                self.engine.config.offer_msg_bytes,
                "negotiate",
            );
        }
        match outcome {
            RoundOutcome::Continue(items) => {
                let round = self.engine.round;
                let hints = if self.engine.config.enable_subcontracting {
                    self.engine.hints()
                } else {
                    Vec::new()
                };
                self.broadcast(ctx, round, items, hints);
            }
            RoundOutcome::Done => {
                self.finish_time = ctx.now();
                if self.engine.config.enable_contracts {
                    if let Some(plan) = self.engine.best.clone() {
                        // Hand the plan to the contract controller: the
                        // trading phase is over (finish_time is set), the
                        // lifecycle runs after it.
                        let (ctl, actions) = ContractController::new(
                            self.engine.node,
                            self.engine.config.clone(),
                            plan,
                            &self.engine.offers,
                            self.remote_sellers.clone(),
                            0,
                        );
                        self.controller = Some(ctl);
                        self.apply_actions(ctx, actions);
                    }
                } else if let Some(plan) = &self.engine.best {
                    for (_, seller, offer) in remote_awards(plan, self.engine.node) {
                        ctx.send(
                            seller,
                            QtMsg::Award {
                                contract: LEGACY_CONTRACT,
                                offer,
                            },
                            self.engine.config.offer_msg_bytes,
                            "award",
                        );
                    }
                }
                self.done = true;
            }
        }
    }

    /// Route a contract event to the controller and put the resulting
    /// actions on the wire.
    fn ctl_event(
        &mut self,
        ctx: &mut Ctx<QtMsg>,
        event: impl FnOnce(&mut ContractController) -> Vec<ContractAction>,
    ) {
        let Some(ctl) = self.controller.as_mut() else {
            return;
        };
        let actions = event(ctl);
        self.apply_actions(ctx, actions);
    }

    /// Translate controller actions into simulator traffic and timers.
    fn apply_actions(&mut self, ctx: &mut Ctx<QtMsg>, actions: Vec<ContractAction>) {
        let cfg = &self.engine.config;
        for a in actions {
            match a {
                ContractAction::SendAward {
                    seller,
                    contract,
                    offer,
                } => ctx.send(
                    seller,
                    QtMsg::Award { contract, offer },
                    cfg.offer_msg_bytes,
                    "award",
                ),
                ContractAction::ArmAwardTimer { contract, delay } => {
                    ctx.schedule(delay, QtMsg::AwardTimeout { contract }, "award-timeout");
                }
                ContractAction::SendLease { seller, contract } => {
                    ctx.send_lease(seller, QtMsg::Lease { contract }, "lease");
                }
                ContractAction::ArmLeaseTimer { contract, delay } => {
                    ctx.schedule(delay, QtMsg::LeaseTick { contract }, "lease-tick");
                }
                ContractAction::SendRelease { seller, contract } => ctx.send(
                    seller,
                    QtMsg::Release { contract },
                    cfg.offer_msg_bytes,
                    "release",
                ),
                ContractAction::SendRetrade {
                    targets,
                    round,
                    items,
                } => {
                    let bytes = items.len() as f64 * cfg.query_msg_bytes;
                    let items = Arc::new(items);
                    let hints: Arc<Vec<Offer>> = Arc::new(Vec::new());
                    for t in targets {
                        ctx.send(
                            t,
                            QtMsg::Rfb {
                                req: round as u64,
                                round,
                                items: Arc::clone(&items),
                                hints: Arc::clone(&hints),
                            },
                            bytes,
                            "rfb-repair",
                        );
                    }
                }
                ContractAction::ArmRetradeTimer { round, delay } => {
                    ctx.schedule(delay, QtMsg::RetradeTimeout { round }, "retrade-timeout");
                }
            }
        }
    }
}

/// Run QT on the discrete-event simulator with a uniform topology built
/// from `config.link`. Returns the outcome and the simulator metrics
/// (virtual end time, per-kind message counts).
pub fn run_qt_sim(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    query: &Query,
    sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
) -> (QtOutcome, qt_net::Metrics) {
    run_qt_sim_with_topology(
        buyer_node,
        dict,
        query,
        sellers,
        config,
        Topology::Uniform(config.link),
    )
}

/// Run QT on the discrete-event simulator over an arbitrary [`Topology`]
/// (e.g. [`Topology::TwoTier`] regional offices). Sellers still *estimate*
/// delivery with `config.link` — autonomous nodes do not know where the
/// buyer sits — while actual message transport follows the topology.
pub fn run_qt_sim_with_topology(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    query: &Query,
    sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
    topology: Topology,
) -> (QtOutcome, qt_net::Metrics) {
    run_qt_sim_with_faults(buyer_node, dict, query, sellers, config, topology, None)
}

/// Run QT on the discrete-event simulator with an optional [`FaultPlan`]
/// injecting message loss, duplication, jitter, partitions, and crash
/// windows. With `None` (or an inert plan) this is bit-identical to
/// [`run_qt_sim_with_topology`]. Under faults the buyer retransmits
/// unanswered RFBs with capped exponential backoff and, past
/// `config.max_rfb_retries`, degrades the round to the offers that arrived;
/// the returned metrics carry drop/retry/timeout/degraded counters.
#[allow(clippy::too_many_arguments)]
pub fn run_qt_sim_with_faults(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    query: &Query,
    mut sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
    topology: Topology,
    faults: Option<FaultPlan>,
) -> (QtOutcome, qt_net::Metrics) {
    let mut sim: Simulator<QtMsg, QtNode> = Simulator::new(topology);
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    let cache_hits_before: u64 = sellers.values().map(|s| s.cache_hits).sum();
    let cache_misses_before: u64 = sellers.values().map(|s| s.cache_misses).sum();
    let local_seller = sellers.remove(&buyer_node);
    let remote: Vec<NodeId> = sellers.keys().copied().collect();
    let all_nodes: Vec<NodeId> = remote.clone();
    let buyer = BuyerSim {
        engine: BuyerEngine::new(buyer_node, dict, query.clone(), config.clone()),
        local_seller,
        remote_sellers: remote,
        pending: std::collections::BTreeMap::new(),
        seen_replies: std::collections::BTreeSet::new(),
        attempt: 0,
        cur_items: Arc::new(Vec::new()),
        cur_hints: Arc::new(Vec::new()),
        round_open: false,
        prev_neg_msgs: 0,
        prev_neg_rts: 0,
        retries: 0,
        timeouts_fired: 0,
        degraded_rounds: 0,
        unreachable: std::collections::BTreeSet::new(),
        done: false,
        finish_time: 0.0,
        controller: None,
    };
    sim.add_node(buyer_node, QtNode::Buyer(Box::new(buyer)));
    for (node, engine) in sellers {
        sim.add_node(node, QtNode::Seller(Box::new(engine)));
    }
    sim.inject(0.0, buyer_node, buyer_node, QtMsg::Start, "start");
    sim.run(10_000_000);
    let mut metrics = sim.metrics.clone();
    let mut seller_effort = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for node in &all_nodes {
        if let Some(QtNode::Seller(e)) = sim.handler(*node) {
            seller_effort += e.total_effort;
            cache_hits += e.cache_hits;
            cache_misses += e.cache_misses;
        }
    }
    let QtNode::Buyer(b) = sim.handler(buyer_node).expect("buyer registered") else {
        panic!("buyer node is not a buyer");
    };
    let outcome = finish_qt_outcome(
        b,
        seller_effort,
        cache_hits,
        cache_misses,
        cache_hits_before,
        cache_misses_before,
        &mut metrics,
    );
    (outcome, metrics)
}

/// Shared post-processing for the simulator and real-transport drivers:
/// fold the buyer's state and the sellers' effort/cache counters into a
/// [`QtOutcome`], patching the driver-filled fields of `metrics`.
fn finish_qt_outcome(
    b: &BuyerSim,
    mut seller_effort: u64,
    mut cache_hits: u64,
    mut cache_misses: u64,
    cache_hits_before: u64,
    cache_misses_before: u64,
    metrics: &mut qt_net::Metrics,
) -> QtOutcome {
    assert!(b.done, "run drained without finishing trading");
    // Trailing (stale) timers may run after trading completed; the
    // optimization finished when the buyer said so.
    let end_time = b.finish_time;
    if let Some(local) = &b.local_seller {
        seller_effort += local.total_effort;
        cache_hits += local.cache_hits;
        cache_misses += local.cache_misses;
    }
    let offer_cache_hits = cache_hits - cache_hits_before;
    let offer_cache_misses = cache_misses - cache_misses_before;
    metrics.offer_cache_hits = offer_cache_hits;
    metrics.offer_cache_misses = offer_cache_misses;
    metrics.retries = b.retries;
    metrics.timeouts = b.timeouts_fired;
    metrics.degraded_rounds = b.degraded_rounds as u64;
    let engine = &b.engine;
    // With the lifecycle on, the controller owns the (possibly repaired)
    // plan; a plan with abandoned slots references lost nodes and is not
    // returned.
    let mut plan = engine.best.clone();
    let mut contract_stats = crate::contract::ContractStats::default();
    let mut contracts = Vec::new();
    if let Some(ctl) = &b.controller {
        assert!(ctl.settled, "run drained with contracts still in flight");
        contract_stats = ctl.stats;
        contracts = ctl.reports();
        plan = ctl.plan_valid().then(|| ctl.plan.clone());
    }
    metrics.awards_sent = contract_stats.awards_sent;
    metrics.award_retries = contract_stats.award_retries;
    metrics.lost_awards = contract_stats.lost_awards;
    metrics.lease_expiries = contract_stats.lease_expiries;
    metrics.reawards = contract_stats.reawards;
    QtOutcome {
        plan,
        iterations: engine.round + 1,
        // Exclude the kick-off event from protocol message counts (timers
        // are tracked separately by the runtime and never land here).
        messages: metrics.messages - metrics.kind_count("start"),
        bytes: metrics.bytes,
        optimization_time: end_time,
        seller_effort,
        buyer_considered: engine.total_considered(),
        offer_cache_hits,
        offer_cache_misses,
        retries: b.retries,
        timeouts: b.timeouts_fired,
        degraded_rounds: b.degraded_rounds,
        unreachable_sellers: b.unreachable.iter().copied().collect(),
        contracts_awarded: contract_stats.contracts_awarded,
        contracts_repaired: contract_stats.contracts_repaired,
        reawards: contract_stats.reawards,
        rescoped_trades: contract_stats.rescoped_trades,
        contracts,
        history: engine.history.clone(),
    }
}

/// Run QT on the real thread-per-node transport (`qt_net::real`): buyer and
/// sellers execute on actual OS threads, connected by bounded channels or
/// loopback TCP per `real`. The protocol handlers are the exact ones the
/// simulator runs, so plans, cost bits, and offer ids are bit-identical to
/// [`run_qt_sim`] under the same configuration (the conformance suite
/// asserts this). The returned outcome's `optimization_time` is **wall
/// clock**, not virtual time — never compare it against simulator numbers.
pub fn run_qt_real(
    buyer_node: NodeId,
    dict: Arc<SchemaDict>,
    query: &Query,
    mut sellers: BTreeMap<NodeId, SellerEngine>,
    config: &QtConfig,
    real: qt_net::RealConfig,
) -> (QtOutcome, qt_net::Metrics) {
    let cache_hits_before: u64 = sellers.values().map(|s| s.cache_hits).sum();
    let cache_misses_before: u64 = sellers.values().map(|s| s.cache_misses).sum();
    let local_seller = sellers.remove(&buyer_node);
    let remote: Vec<NodeId> = sellers.keys().copied().collect();
    let buyer = BuyerSim {
        engine: BuyerEngine::new(buyer_node, dict, query.clone(), config.clone()),
        local_seller,
        remote_sellers: remote,
        pending: std::collections::BTreeMap::new(),
        seen_replies: std::collections::BTreeSet::new(),
        attempt: 0,
        cur_items: Arc::new(Vec::new()),
        cur_hints: Arc::new(Vec::new()),
        round_open: false,
        prev_neg_msgs: 0,
        prev_neg_rts: 0,
        retries: 0,
        timeouts_fired: 0,
        degraded_rounds: 0,
        unreachable: std::collections::BTreeSet::new(),
        done: false,
        finish_time: 0.0,
        controller: None,
    };
    let mut rt: qt_net::RealRuntime<QtMsg, QtNode> = qt_net::RealRuntime::new(real);
    rt.add_node(buyer_node, QtNode::Buyer(Box::new(buyer)));
    for (node, engine) in sellers {
        rt.add_node(node, QtNode::Seller(Box::new(engine)));
    }
    rt.inject(0.0, buyer_node, buyer_node, QtMsg::Start, "start");
    // Trading is over when the buyer converged and (with the lifecycle on)
    // every contract settled; channel FIFO guarantees trailing awards and
    // releases are delivered before the shutdown marker.
    let out = rt.run(buyer_node, |h| {
        matches!(h, QtNode::Buyer(b)
            if b.done && b.controller.as_ref().is_none_or(|c| c.settled))
    });
    let mut metrics = out.metrics;
    let mut seller_effort = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut buyer_back = None;
    for (_, handler) in out.handlers {
        match handler {
            QtNode::Seller(e) => {
                seller_effort += e.total_effort;
                cache_hits += e.cache_hits;
                cache_misses += e.cache_misses;
            }
            QtNode::Buyer(b) => buyer_back = Some(b),
        }
    }
    let b = buyer_back.expect("buyer handler returned");
    let outcome = finish_qt_outcome(
        &b,
        seller_effort,
        cache_hits,
        cache_misses,
        cache_hits_before,
        cache_misses_before,
        &mut metrics,
    );
    (outcome, metrics)
}
