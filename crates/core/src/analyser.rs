//! The buyer predicates analyser (B5/B6).
//!
//! After each round's candidate plans are built, the analyser derives *new*
//! queries worth putting out to bid in the next round. Two derivations are
//! implemented:
//!
//! 1. **Join-site extraction** — for every join the current best plan
//!    performs at the buyer, ask the market for the joined sub-query as a
//!    whole. Sellers rewrite and optimize *that* query directly, so nodes
//!    holding both sides offer the full join even when it exceeded the
//!    `max_partial_k` cap of the first round; this is what makes later
//!    iterations find plans the first round could not.
//! 2. **Coverage tightening** — the analogue of the paper's union-redundancy
//!    example ((1a)/(2a) → (1b)/(2b)): each join-site query is additionally
//!    emitted restricted to the partition coverage the plan actually unions,
//!    so sellers holding exactly a fragment can bid the *restricted* join
//!    cheaply instead of being unable to bid the full one.

use crate::offer::Offer;
use crate::plangen::GenOutput;
use qt_catalog::{RelId, SchemaDict};
use qt_query::{PartSet, Query};
use std::collections::{BTreeMap, BTreeSet};

/// Derive next-round queries from this round's generator output and offers.
///
/// `asked` is everything already requested (the returned list excludes it).
pub fn next_queries(
    dict: &SchemaDict,
    query: &Query,
    gen: &GenOutput,
    offers: &[Offer],
    asked: &BTreeSet<Query>,
) -> Vec<Query> {
    let q_core = query.strip_aggregation();
    let mut out: Vec<Query> = Vec::new();
    let mut push = |q: Query| {
        if q.validate(dict).is_ok() && !asked.contains(&q) && !out.contains(&q) {
            out.push(q);
        }
    };

    // Observed per-relation coverage fragments (from any offer), used for
    // tightened variants.
    let mut coverages: BTreeMap<RelId, BTreeSet<PartSet>> = BTreeMap::new();
    for o in offers {
        for (rel, parts) in &o.query.relations {
            if query.relations.contains_key(rel) {
                coverages.entry(*rel).or_default().insert(*parts);
            }
        }
    }

    for (left, right) in &gen.join_sites {
        let joined: BTreeSet<RelId> = left.union(right).copied().collect();
        let site = q_core.restrict_to_rels(&joined);
        // 1. The full-extent join sub-query (unless it is the original
        //    query's own core, which is already implied by round 0).
        if joined.len() < query.num_relations() {
            push(site.clone());
        }
        // 2. Tightened variants: restrict one relation to each observed
        //    fragment coverage. For the full relation set this yields e.g.
        //    "customer ⋈ invoiceline WHERE office = 'Myconos'" — the paper's
        //    (1b)/(2b) tightening — which a node holding exactly that
        //    fragment can answer wholesale.
        for (&rel, frags) in &coverages {
            if !joined.contains(&rel) {
                continue;
            }
            for parts in frags {
                if *parts != site.relations[&rel] {
                    let mut tightened = site.clone();
                    tightened.relations.insert(rel, *parts);
                    push(tightened);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QtConfig;
    use crate::offer::RfbItem;
    use crate::plangen::PlanGenerator;
    use crate::seller::SellerEngine;
    use qt_catalog::{
        AttrType, Catalog, CatalogBuilder, NodeId, PartId, PartitionStats, Partitioning,
        RelationSchema,
    };
    use qt_cost::NodeResources;
    use qt_query::parse_query;

    /// r hash-partitioned over nodes 0/1; s on node 2; t on node 3. No node
    /// holds more than one relation, so round 1 yields only single-relation
    /// fragments and all joins happen at the buyer.
    fn catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(
            RelationSchema::new("r", vec![("a", AttrType::Int), ("b", AttrType::Int)]),
            Partitioning::Hash { attr: 0, parts: 2 },
        );
        let s = b.add_relation(
            RelationSchema::new("s", vec![("a", AttrType::Int), ("c", AttrType::Int)]),
            Partitioning::Single,
        );
        let t = b.add_relation(
            RelationSchema::new("t", vec![("c", AttrType::Int), ("d", AttrType::Int)]),
            Partitioning::Single,
        );
        for i in 0..2u16 {
            b.set_stats(
                PartId::new(r, i),
                PartitionStats::synthetic(1_000, &[500, 100]),
            );
            b.place(PartId::new(r, i), NodeId(i as u32));
        }
        b.set_stats(
            PartId::new(s, 0),
            PartitionStats::synthetic(500, &[500, 50]),
        );
        b.place(PartId::new(s, 0), NodeId(2));
        b.set_stats(PartId::new(t, 0), PartitionStats::synthetic(50, &[50, 50]));
        b.place(PartId::new(t, 0), NodeId(3));
        b.build()
    }

    #[test]
    fn analyser_emits_join_sites_and_tightened_variants() {
        let cat = catalog();
        let q = parse_query(
            &cat.dict,
            "SELECT b, d FROM r, s, t WHERE r.a = s.a AND s.c = t.c",
        )
        .unwrap();
        let cfg = QtConfig::default();
        let items = vec![RfbItem {
            query: q.clone(),
            ref_value: f64::INFINITY,
        }];
        let mut offers = Vec::new();
        for node in 0..4 {
            let mut seller = SellerEngine::new(cat.holdings_of(NodeId(node)), cfg.clone());
            offers.extend(seller.respond(0, &items).offers);
        }
        let pg = PlanGenerator {
            dict: &cat.dict,
            query: &q,
            config: &cfg,
            buyer_resources: NodeResources::reference(),
        };
        let gen = pg.generate(&offers);
        assert!(gen.plan.is_some(), "coverage exists, a plan must exist");
        assert!(!gen.join_sites.is_empty(), "joins happen at the buyer");
        let asked = BTreeSet::from([q.clone()]);
        let new = next_queries(&cat.dict, &q, &gen, &offers, &asked);
        assert!(!new.is_empty());
        // Join-site queries are multi-relation and never the original query.
        for nq in &new {
            assert!(nq.num_relations() >= 2);
            assert_ne!(*nq, q);
            nq.validate(&cat.dict).unwrap();
        }
        // The proper sub-join (s ⋈ t) is requested at full extent.
        assert!(new.iter().any(|nq| nq.num_relations() == 2));
        // Tightened variants: some query restricted to a single r partition.
        assert!(
            new.iter().any(|nq| nq
                .relations
                .get(&qt_catalog::RelId(0))
                .is_some_and(|p| p.len() == 1)),
            "expected a partition-tightened join query: {:#?}",
            new.iter()
                .map(|n| n.display_with(&cat.dict).to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn analyser_excludes_already_asked() {
        let cat = catalog();
        let q = parse_query(&cat.dict, "SELECT b, c FROM r, s WHERE r.a = s.a").unwrap();
        let gen = GenOutput {
            plan: None,
            considered: 0,
            join_sites: vec![(
                BTreeSet::from([qt_catalog::RelId(0)]),
                BTreeSet::from([qt_catalog::RelId(1)]),
            )],
        };
        // Join site covers the whole query → implied, nothing new.
        let asked = BTreeSet::from([q.clone()]);
        let new = next_queries(&cat.dict, &q, &gen, &[], &asked);
        assert!(new.is_empty());
    }
}
