//! Wire encodings for the QT protocol messages.
//!
//! The [`Wire`] trait and the primitive/trading-type codecs live in
//! [`qt_trade::wire`]; this module supplies the query-algebra helpers (the
//! coherence rules keep `qt-core` from implementing a `qt-trade` trait for
//! `qt-query` types, so those go through free `put_*`/`get_*` functions)
//! and the [`Wire`] impls for the two protocol message enums, [`QtMsg`] and
//! [`ServeMsg`]. With these, the real transport can carry every protocol
//! message over TCP byte-identically to what the in-process channels move
//! by ownership.

use crate::driver::QtMsg;
use crate::offer::{Offer, OfferKind, RfbItem};
use crate::seller::SessionRfb;
use crate::session::ServeMsg;
use qt_catalog::{NodeId, RelId};
use qt_query::{AggFunc, Col, CompOp, Operand, PartSet, Predicate, Query, SelectItem};
use qt_trade::wire::{put_f64, put_len, put_u32, put_u64, put_u8, Reader, Wire, WireError};
use qt_trade::SessionId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Append a column reference.
pub fn put_col(out: &mut Vec<u8>, c: &Col) {
    put_u32(out, c.rel.0);
    put_u64(out, c.attr as u64);
}

/// Read a column reference.
pub fn get_col(r: &mut Reader<'_>) -> Result<Col, WireError> {
    let rel = RelId(r.u32()?);
    let attr = usize::try_from(r.u64()?).map_err(|_| WireError::BadLen)?;
    Ok(Col { rel, attr })
}

fn put_comp_op(out: &mut Vec<u8>, op: CompOp) {
    let tag = match op {
        CompOp::Eq => 0,
        CompOp::Ne => 1,
        CompOp::Lt => 2,
        CompOp::Le => 3,
        CompOp::Gt => 4,
        CompOp::Ge => 5,
    };
    put_u8(out, tag);
}

fn get_comp_op(r: &mut Reader<'_>) -> Result<CompOp, WireError> {
    Ok(match r.u8()? {
        0 => CompOp::Eq,
        1 => CompOp::Ne,
        2 => CompOp::Lt,
        3 => CompOp::Le,
        4 => CompOp::Gt,
        5 => CompOp::Ge,
        t => return Err(WireError::BadTag("CompOp", t)),
    })
}

fn put_operand(out: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Col(c) => {
            put_u8(out, 0);
            put_col(out, c);
        }
        Operand::Const(v) => {
            put_u8(out, 1);
            v.put(out);
        }
    }
}

fn get_operand(r: &mut Reader<'_>) -> Result<Operand, WireError> {
    Ok(match r.u8()? {
        0 => Operand::Col(get_col(r)?),
        1 => Operand::Const(Wire::get(r)?),
        t => return Err(WireError::BadTag("Operand", t)),
    })
}

/// Append one `WHERE` conjunct.
pub fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    put_col(out, &p.left);
    put_comp_op(out, p.op);
    put_operand(out, &p.right);
}

/// Read one `WHERE` conjunct.
pub fn get_predicate(r: &mut Reader<'_>) -> Result<Predicate, WireError> {
    Ok(Predicate {
        left: get_col(r)?,
        op: get_comp_op(r)?,
        right: get_operand(r)?,
    })
}

fn put_select_item(out: &mut Vec<u8>, s: &SelectItem) {
    match s {
        SelectItem::Col(c) => {
            put_u8(out, 0);
            put_col(out, c);
        }
        SelectItem::Agg { func, arg } => {
            put_u8(out, 1);
            let tag = match func {
                AggFunc::Count => 0,
                AggFunc::Sum => 1,
                AggFunc::Avg => 2,
                AggFunc::Min => 3,
                AggFunc::Max => 4,
            };
            put_u8(out, tag);
            match arg {
                None => put_u8(out, 0),
                Some(c) => {
                    put_u8(out, 1);
                    put_col(out, c);
                }
            }
        }
    }
}

fn get_select_item(r: &mut Reader<'_>) -> Result<SelectItem, WireError> {
    Ok(match r.u8()? {
        0 => SelectItem::Col(get_col(r)?),
        1 => {
            let func = match r.u8()? {
                0 => AggFunc::Count,
                1 => AggFunc::Sum,
                2 => AggFunc::Avg,
                3 => AggFunc::Min,
                4 => AggFunc::Max,
                t => return Err(WireError::BadTag("AggFunc", t)),
            };
            let arg = match r.u8()? {
                0 => None,
                1 => Some(get_col(r)?),
                t => return Err(WireError::BadTag("Option<Col>", t)),
            };
            SelectItem::Agg { func, arg }
        }
        t => return Err(WireError::BadTag("SelectItem", t)),
    })
}

fn put_cols(out: &mut Vec<u8>, cols: &[Col]) {
    put_len(out, cols.len());
    for c in cols {
        put_col(out, c);
    }
}

fn get_cols(r: &mut Reader<'_>) -> Result<Vec<Col>, WireError> {
    let n = r.len(12)?;
    (0..n).map(|_| get_col(r)).collect()
}

/// Append a full query: relations with their partition masks, then the
/// predicate, select, group-by, and order-by lists.
pub fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_len(out, q.relations.len());
    for (rel, parts) in &q.relations {
        put_u32(out, rel.0);
        put_u64(out, parts.bits());
    }
    put_len(out, q.predicates.len());
    for p in &q.predicates {
        put_predicate(out, p);
    }
    put_len(out, q.select.len());
    for s in &q.select {
        put_select_item(out, s);
    }
    put_cols(out, &q.group_by);
    put_cols(out, &q.order_by);
}

/// Read a full query.
pub fn get_query(r: &mut Reader<'_>) -> Result<Query, WireError> {
    let n_rel = r.len(12)?;
    let mut relations = BTreeMap::new();
    for _ in 0..n_rel {
        let rel = RelId(r.u32()?);
        let bits = r.u64()?;
        let parts = PartSet::from_indices((0..64u16).filter(|i| bits & (1u64 << i) != 0));
        relations.insert(rel, parts);
    }
    let n_pred = r.len(1)?;
    let predicates = (0..n_pred)
        .map(|_| get_predicate(r))
        .collect::<Result<Vec<_>, _>>()?;
    let n_sel = r.len(1)?;
    let select = (0..n_sel)
        .map(|_| get_select_item(r))
        .collect::<Result<Vec<_>, _>>()?;
    let group_by = get_cols(r)?;
    let order_by = get_cols(r)?;
    Ok(Query {
        relations,
        predicates,
        select,
        group_by,
        order_by,
    })
}

impl Wire for OfferKind {
    fn put(&self, out: &mut Vec<u8>) {
        let tag = match self {
            OfferKind::Rows => 0,
            OfferKind::PartialAggregate => 1,
            OfferKind::FromView => 2,
        };
        put_u8(out, tag);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => OfferKind::Rows,
            1 => OfferKind::PartialAggregate,
            2 => OfferKind::FromView,
            t => return Err(WireError::BadTag("OfferKind", t)),
        })
    }
}

impl Wire for Offer {
    fn put(&self, out: &mut Vec<u8>) {
        put_u64(out, self.id);
        self.seller.put(out);
        put_query(out, &self.query);
        self.props.put(out);
        put_f64(out, self.true_cost);
        self.kind.put(out);
        put_u32(out, self.round);
        put_len(out, self.subcontracts.len());
        for (node, q) in &self.subcontracts {
            node.put(out);
            put_query(out, q);
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = r.u64()?;
        let seller = NodeId::get(r)?;
        let query = get_query(r)?;
        let props = Wire::get(r)?;
        let true_cost = r.f64()?;
        let kind = OfferKind::get(r)?;
        let round = r.u32()?;
        let n_sub = r.len(1)?;
        let mut subcontracts = Vec::with_capacity(n_sub);
        for _ in 0..n_sub {
            let node = NodeId::get(r)?;
            let q = get_query(r)?;
            subcontracts.push((node, q));
        }
        Ok(Offer {
            id,
            seller,
            query,
            props,
            true_cost,
            kind,
            round,
            subcontracts,
        })
    }
}

impl Wire for RfbItem {
    fn put(&self, out: &mut Vec<u8>) {
        put_query(out, &self.query);
        put_f64(out, self.ref_value);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RfbItem {
            query: get_query(r)?,
            ref_value: r.f64()?,
        })
    }
}

impl Wire for SessionRfb {
    fn put(&self, out: &mut Vec<u8>) {
        self.session.put(out);
        put_u64(out, self.req);
        put_u32(out, self.round);
        self.items.put(out);
        self.hints.put(out);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SessionRfb {
            session: SessionId::get(r)?,
            req: r.u64()?,
            round: r.u32()?,
            items: Arc::<Vec<RfbItem>>::get(r)?,
            hints: Arc::<Vec<Offer>>::get(r)?,
        })
    }
}

impl Wire for QtMsg {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            QtMsg::Start => put_u8(out, 0),
            QtMsg::Rfb {
                req,
                round,
                items,
                hints,
            } => {
                put_u8(out, 1);
                put_u64(out, *req);
                put_u32(out, *round);
                items.put(out);
                hints.put(out);
            }
            QtMsg::Offers { round, offers } => {
                put_u8(out, 2);
                put_u32(out, *round);
                offers.put(out);
            }
            QtMsg::Timeout { round } => {
                put_u8(out, 3);
                put_u32(out, *round);
            }
            QtMsg::Negotiate => put_u8(out, 4),
            QtMsg::Award { contract, offer } => {
                put_u8(out, 5);
                put_u64(out, *contract);
                put_u64(out, *offer);
            }
            QtMsg::AwardAck { contract } => {
                put_u8(out, 6);
                put_u64(out, *contract);
            }
            QtMsg::AwardDecline { contract } => {
                put_u8(out, 7);
                put_u64(out, *contract);
            }
            QtMsg::Lease { contract } => {
                put_u8(out, 8);
                put_u64(out, *contract);
            }
            QtMsg::LeaseAck { contract } => {
                put_u8(out, 9);
                put_u64(out, *contract);
            }
            QtMsg::Release { contract } => {
                put_u8(out, 10);
                put_u64(out, *contract);
            }
            QtMsg::AwardTimeout { contract } => {
                put_u8(out, 11);
                put_u64(out, *contract);
            }
            QtMsg::LeaseTick { contract } => {
                put_u8(out, 12);
                put_u64(out, *contract);
            }
            QtMsg::RetradeTimeout { round } => {
                put_u8(out, 13);
                put_u32(out, *round);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => QtMsg::Start,
            1 => QtMsg::Rfb {
                req: r.u64()?,
                round: r.u32()?,
                items: Arc::<Vec<RfbItem>>::get(r)?,
                hints: Arc::<Vec<Offer>>::get(r)?,
            },
            2 => QtMsg::Offers {
                round: r.u32()?,
                offers: Vec::<Offer>::get(r)?,
            },
            3 => QtMsg::Timeout { round: r.u32()? },
            4 => QtMsg::Negotiate,
            5 => QtMsg::Award {
                contract: r.u64()?,
                offer: r.u64()?,
            },
            6 => QtMsg::AwardAck { contract: r.u64()? },
            7 => QtMsg::AwardDecline { contract: r.u64()? },
            8 => QtMsg::Lease { contract: r.u64()? },
            9 => QtMsg::LeaseAck { contract: r.u64()? },
            10 => QtMsg::Release { contract: r.u64()? },
            11 => QtMsg::AwardTimeout { contract: r.u64()? },
            12 => QtMsg::LeaseTick { contract: r.u64()? },
            13 => QtMsg::RetradeTimeout { round: r.u32()? },
            t => return Err(WireError::BadTag("QtMsg", t)),
        })
    }
}

impl Wire for ServeMsg {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            ServeMsg::Arrive { session } => {
                put_u8(out, 0);
                session.put(out);
            }
            ServeMsg::Rfb { entries } => {
                put_u8(out, 1);
                entries.put(out);
            }
            ServeMsg::Offers { replies } => {
                put_u8(out, 2);
                replies.put(out);
            }
            ServeMsg::Flush => put_u8(out, 3),
            ServeMsg::Timeout { session, round } => {
                put_u8(out, 4);
                session.put(out);
                put_u32(out, *round);
            }
            ServeMsg::Award {
                session,
                contract,
                offer,
            } => {
                put_u8(out, 5);
                session.put(out);
                put_u64(out, *contract);
                put_u64(out, *offer);
            }
            ServeMsg::AwardAck { session, contract } => {
                put_u8(out, 6);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::AwardDecline { session, contract } => {
                put_u8(out, 7);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::Lease { session, contract } => {
                put_u8(out, 8);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::LeaseAck { session, contract } => {
                put_u8(out, 9);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::Release { session, contract } => {
                put_u8(out, 10);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::AwardTimeout { session, contract } => {
                put_u8(out, 11);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::LeaseTick { session, contract } => {
                put_u8(out, 12);
                session.put(out);
                put_u64(out, *contract);
            }
            ServeMsg::RetradeTimeout { session, round } => {
                put_u8(out, 13);
                session.put(out);
                put_u32(out, *round);
            }
            ServeMsg::Negotiate => put_u8(out, 14),
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => ServeMsg::Arrive {
                session: SessionId::get(r)?,
            },
            1 => ServeMsg::Rfb {
                entries: Vec::<SessionRfb>::get(r)?,
            },
            2 => ServeMsg::Offers {
                replies: Vec::<(SessionId, u32, Vec<Offer>)>::get(r)?,
            },
            3 => ServeMsg::Flush,
            4 => ServeMsg::Timeout {
                session: SessionId::get(r)?,
                round: r.u32()?,
            },
            5 => ServeMsg::Award {
                session: SessionId::get(r)?,
                contract: r.u64()?,
                offer: r.u64()?,
            },
            6 => ServeMsg::AwardAck {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            7 => ServeMsg::AwardDecline {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            8 => ServeMsg::Lease {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            9 => ServeMsg::LeaseAck {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            10 => ServeMsg::Release {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            11 => ServeMsg::AwardTimeout {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            12 => ServeMsg::LeaseTick {
                session: SessionId::get(r)?,
                contract: r.u64()?,
            },
            13 => ServeMsg::RetradeTimeout {
                session: SessionId::get(r)?,
                round: r.u32()?,
            },
            14 => ServeMsg::Negotiate,
            t => return Err(WireError::BadTag("ServeMsg", t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_catalog::Value;
    use qt_cost::AnswerProperties;

    fn sample_query() -> Query {
        Query {
            relations: BTreeMap::from([
                (RelId(0), PartSet::from_indices([0, 1, 3])),
                (RelId(2), PartSet::from_indices([1])),
            ]),
            predicates: vec![
                Predicate {
                    left: Col {
                        rel: RelId(0),
                        attr: 0,
                    },
                    op: CompOp::Eq,
                    right: Operand::Col(Col {
                        rel: RelId(2),
                        attr: 1,
                    }),
                },
                Predicate {
                    left: Col {
                        rel: RelId(2),
                        attr: 3,
                    },
                    op: CompOp::Gt,
                    right: Operand::Const(Value::Float(5.0)),
                },
            ],
            select: vec![
                SelectItem::Col(Col {
                    rel: RelId(0),
                    attr: 2,
                }),
                SelectItem::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Col {
                        rel: RelId(2),
                        attr: 3,
                    }),
                },
                SelectItem::Agg {
                    func: AggFunc::Count,
                    arg: None,
                },
            ],
            group_by: vec![Col {
                rel: RelId(0),
                attr: 2,
            }],
            order_by: vec![],
        }
    }

    fn sample_offer(id: u64) -> Offer {
        Offer {
            id,
            seller: NodeId(3),
            query: sample_query(),
            props: AnswerProperties {
                total_time: 1.5,
                first_row_time: 0.25,
                rows_per_sec: 1000.0,
                rows: 1500.0,
                bytes: 96_000.0,
                freshness: 1.0,
                completeness: 0.75,
                price: 0.0,
            },
            true_cost: 1.2,
            kind: OfferKind::PartialAggregate,
            round: 2,
            subcontracts: vec![(NodeId(5), sample_query())],
        }
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode();
        assert_eq!(&T::decode(&bytes).expect("decode(encode(v))"), v);
        for cut in 0..bytes.len() {
            assert!(T::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn queries_roundtrip_bit_exactly() {
        let q = sample_query();
        let mut out = Vec::new();
        put_query(&mut out, &q);
        let mut r = Reader::new(&out);
        let back = get_query(&mut r).expect("query decodes");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, q);
        assert_eq!(back.fingerprint(), q.fingerprint());
    }

    #[test]
    fn offers_and_rfb_items_roundtrip() {
        roundtrip(&sample_offer(42));
        roundtrip(&RfbItem {
            query: sample_query(),
            ref_value: 3.25,
        });
        roundtrip(&SessionRfb {
            session: SessionId(7),
            req: (8u64 << 32) | 3,
            round: 3,
            items: Arc::new(vec![RfbItem {
                query: sample_query(),
                ref_value: 1.0,
            }]),
            hints: Arc::new(vec![sample_offer(9)]),
        });
    }

    #[test]
    fn every_qt_msg_variant_roundtrips() {
        let variants = vec![
            QtMsg::Start,
            QtMsg::Rfb {
                req: 3,
                round: 3,
                items: Arc::new(vec![RfbItem {
                    query: sample_query(),
                    ref_value: 2.0,
                }]),
                hints: Arc::new(vec![sample_offer(1)]),
            },
            QtMsg::Offers {
                round: 1,
                offers: vec![sample_offer(2), sample_offer(3)],
            },
            QtMsg::Timeout { round: 4 },
            QtMsg::Negotiate,
            QtMsg::Award {
                contract: 12,
                offer: 99,
            },
            QtMsg::AwardAck { contract: 12 },
            QtMsg::AwardDecline { contract: 12 },
            QtMsg::Lease { contract: 12 },
            QtMsg::LeaseAck { contract: 12 },
            QtMsg::Release { contract: 12 },
            QtMsg::AwardTimeout { contract: 12 },
            QtMsg::LeaseTick { contract: 12 },
            QtMsg::RetradeTimeout { round: 5 },
        ];
        for v in &variants {
            roundtrip(v);
        }
        assert!(matches!(
            QtMsg::decode(&[200]),
            Err(WireError::BadTag("QtMsg", 200))
        ));
    }

    #[test]
    fn every_serve_msg_variant_roundtrips() {
        let s = SessionId(6);
        let entry = SessionRfb {
            session: s,
            req: (7u64 << 32) | 1,
            round: 1,
            items: Arc::new(vec![RfbItem {
                query: sample_query(),
                ref_value: 1.5,
            }]),
            hints: Arc::new(vec![]),
        };
        let variants = vec![
            ServeMsg::Arrive { session: s },
            ServeMsg::Rfb {
                entries: vec![entry],
            },
            ServeMsg::Offers {
                replies: vec![(s, 1, vec![sample_offer(11)]), (SessionId(9), 2, vec![])],
            },
            ServeMsg::Flush,
            ServeMsg::Timeout {
                session: s,
                round: 2,
            },
            ServeMsg::Award {
                session: s,
                contract: 1,
                offer: 2,
            },
            ServeMsg::AwardAck {
                session: s,
                contract: 1,
            },
            ServeMsg::AwardDecline {
                session: s,
                contract: 1,
            },
            ServeMsg::Lease {
                session: s,
                contract: 1,
            },
            ServeMsg::LeaseAck {
                session: s,
                contract: 1,
            },
            ServeMsg::Release {
                session: s,
                contract: 1,
            },
            ServeMsg::AwardTimeout {
                session: s,
                contract: 1,
            },
            ServeMsg::LeaseTick {
                session: s,
                contract: 1,
            },
            ServeMsg::RetradeTimeout {
                session: s,
                round: 3,
            },
            ServeMsg::Negotiate,
        ];
        for v in &variants {
            roundtrip(v);
        }
        assert!(matches!(
            ServeMsg::decode(&[200]),
            Err(WireError::BadTag("ServeMsg", 200))
        ));
    }

    #[test]
    fn garbage_inputs_error_without_panicking() {
        // Deterministic pseudo-random garbage: an LCG over byte buffers.
        let mut x = 0x2545F4914F6CDD1Du64;
        for len in 0..96usize {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 56) as u8
                })
                .collect();
            let _ = QtMsg::decode(&bytes);
            let _ = ServeMsg::decode(&bytes);
            let _ = Offer::decode(&bytes);
            let mut r = Reader::new(&bytes);
            let _ = get_query(&mut r);
        }
    }
}
