//! Deterministic fork-join helpers for the QT hot paths.
//!
//! The trading loop's dominant cost is per-seller offer generation: every
//! seller runs its local (modified) DP independently per round, so the
//! round fans out embarrassingly. This crate provides the small primitives
//! the drivers use — order-preserving parallel maps built on
//! `std::thread::scope` (the build container carries no external crates, so
//! no rayon). Results are merged in input order, which is what makes the
//! parallel drivers bit-identical to the serial ones.
//!
//! Thread budget resolution, in priority order:
//! 1. the `QT_THREADS` environment variable (useful to force >1 worker in
//!    tests on single-core CI hosts, or `1` to pin everything serial);
//! 2. `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Set while this thread is a qt-par worker: nested parallel sections
    /// collapse to serial instead of oversubscribing the machine.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Is the current thread already inside a qt-par worker?
pub fn in_parallel_section() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Host core count, computed once. `available_parallelism` re-reads cgroup
/// limits on every call (~10µs on some kernels), which is far too slow for a
/// per-round budget check on the trading hot path.
fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The worker budget for parallel sections (≥ 1). Nested sections (a parallel
/// map called from inside another parallel map's worker) get a budget of 1.
/// `QT_THREADS` is re-read on every call (it is cheap, and tests set it after
/// process start); the host core count is cached.
pub fn max_threads() -> usize {
    if in_parallel_section() {
        return 1;
    }
    if let Ok(v) = std::env::var("QT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    host_parallelism()
}

/// Order-preserving parallel map over exclusive references.
///
/// Splits `items` into one contiguous chunk per worker and applies `f` to
/// every element; the result vector keeps input order regardless of how
/// the chunks interleave in time. Falls back to a plain serial map when the
/// budget or the input is too small to win anything.
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return items.iter_mut().map(f).collect();
    }
    // Ceil-divided contiguous chunks keep results trivially ordered.
    let chunk = n.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for piece in items.chunks_mut(chunk) {
            let f = &f;
            handles.push(scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                piece.iter_mut().map(f).collect::<Vec<R>>()
            }));
        }
        for h in handles {
            out.extend(h.join().expect("qt-par worker panicked"));
        }
    });
    out
}

/// Order-preserving parallel map over shared references.
///
/// Work-steals single items off an atomic cursor — better balance than
/// chunking when per-item cost varies wildly (e.g. RFB items whose local
/// DPs differ by orders of magnitude) — then reassembles results in input
/// order.
pub fn par_map_ref<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                local
            }));
        }
        for h in handles {
            tagged.extend(h.join().expect("qt-par worker panicked"));
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_mut_preserves_order_and_mutates() {
        let mut items: Vec<u64> = (0..37).collect();
        let out = par_map_mut(&mut items, 4, |x| {
            *x += 1;
            *x * 10
        });
        assert_eq!(items, (1..38).collect::<Vec<u64>>());
        assert_eq!(out, (1..38).map(|x| x * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_ref_matches_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..101).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_ref(&items, threads, |x| x * x), serial);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let mut empty: Vec<u32> = vec![];
        assert!(par_map_mut(&mut empty, 8, |x| *x).is_empty());
        assert_eq!(par_map_ref(&[42u32], 8, |x| x + 1), vec![43]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn nested_sections_run_serial() {
        let items: Vec<u32> = (0..8).collect();
        let out = par_map_ref(&items, 4, |&x| {
            assert!(in_parallel_section());
            assert_eq!(max_threads(), 1);
            // A nested parallel map still works — it just stays serial.
            par_map_ref(&[x, x + 1], 4, |y| y * 2)
        });
        assert_eq!(out[3], vec![6, 8]);
        assert!(!in_parallel_section());
    }
}
