//! Strongly-typed identifiers used across the whole workspace.

use std::fmt;

/// Identifier of an autonomous node (a regional-office DBMS in the paper's
/// motivating example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a base relation in the federation-wide schema.
///
/// The schema itself (relation names and attributes) is assumed to be common
/// knowledge — the paper's nodes all agree on `customer` / `invoiceline` —
/// while the *extent* (which partitions exist where, and their statistics)
/// is private per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// Identifier of one horizontal partition of a relation.
///
/// Partition indices are dense: relation `rel` with `n` partitions has
/// partitions `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartId {
    /// The relation this partition belongs to.
    pub rel: RelId,
    /// Index of the partition within the relation's partitioning scheme.
    pub idx: u16,
}

impl PartId {
    /// Convenience constructor.
    pub fn new(rel: RelId, idx: u16) -> Self {
        PartId { rel, idx }
    }
}

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.rel, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(RelId(1).to_string(), "rel1");
        assert_eq!(PartId::new(RelId(1), 4).to_string(), "rel1.p4");
    }

    #[test]
    fn part_id_ordering_groups_by_relation() {
        let a = PartId::new(RelId(0), 9);
        let b = PartId::new(RelId(1), 0);
        assert!(a < b);
    }
}
