//! Imperative builder for [`Catalog`]s.

use crate::error::CatalogError;
use crate::ident::{NodeId, PartId, RelId};
use crate::partition::Partitioning;
use crate::placement::{Catalog, Placement, RelationMeta, SchemaDict};
use crate::schema::RelationSchema;
use crate::stats::PartitionStats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builds a [`Catalog`] step by step: relations, statistics, placement.
///
/// The builder validates partitioning schemes eagerly and the whole catalog
/// on [`build`](CatalogBuilder::build) (via [`try_build`](CatalogBuilder::try_build)).
///
/// ```
/// use qt_catalog::{AttrType, CatalogBuilder, NodeId, PartId, Partitioning,
///                  PartitionStats, RelationSchema};
///
/// let mut b = CatalogBuilder::new();
/// let rel = b.add_relation(
///     RelationSchema::new("r", vec![("k", AttrType::Int), ("v", AttrType::Int)]),
///     Partitioning::Hash { attr: 0, parts: 2 },
/// );
/// for p in 0..2 {
///     b.set_stats(PartId::new(rel, p), PartitionStats::synthetic(1_000, &[500, 100]));
///     b.place(PartId::new(rel, p), NodeId(p as u32));
/// }
/// let catalog = b.build();
/// assert_eq!(catalog.relation_stats(rel).rows, 2_000);
/// // Node 0's autonomous local view sees only its own partition.
/// assert_eq!(catalog.holdings_of(NodeId(0)).parts_of(rel).len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    dict: SchemaDict,
    stats: BTreeMap<PartId, PartitionStats>,
    placement: Placement,
    nodes: Vec<NodeId>,
}

impl CatalogBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a relation and its partitioning scheme, returning its id.
    ///
    /// # Panics
    /// Panics on an invalid partitioning scheme or a partitioning attribute
    /// out of the schema's range — these are setup-time programming errors.
    pub fn add_relation(&mut self, schema: RelationSchema, partitioning: Partitioning) -> RelId {
        partitioning.validate().expect("invalid partitioning");
        if let Partitioning::List { attr, .. }
        | Partitioning::Range { attr, .. }
        | Partitioning::Hash { attr, .. } = &partitioning
        {
            assert!(
                *attr < schema.arity(),
                "partitioning attribute out of range"
            );
        }
        let id = RelId(self.dict.relations.len() as u32);
        self.dict.relations.push(RelationMeta {
            schema,
            partitioning,
        });
        id
    }

    /// Set the statistics of one partition.
    pub fn set_stats(&mut self, part: PartId, stats: PartitionStats) {
        self.stats.insert(part, stats);
    }

    /// Declare a node (also done implicitly by [`place`](Self::place)).
    pub fn add_node(&mut self, node: NodeId) {
        if !self.nodes.contains(&node) {
            self.nodes.push(node);
        }
    }

    /// Declare `count` nodes with ids `0..count`.
    pub fn add_nodes(&mut self, count: u32) {
        for i in 0..count {
            self.add_node(NodeId(i));
        }
    }

    /// Place a replica of `part` on `node`.
    pub fn place(&mut self, part: PartId, node: NodeId) {
        self.add_node(node);
        self.placement.place(part, node);
    }

    /// Validate and build the catalog.
    pub fn try_build(self) -> Result<Catalog, CatalogError> {
        // Every partition of every relation must have stats and at least one
        // replica — otherwise queries over it are unanswerable and every
        // experiment would silently degenerate.
        for rel in self.dict.rel_ids() {
            for part in self.dict.parts_of(rel) {
                if !self.stats.contains_key(&part) {
                    return Err(CatalogError::MissingStats(part));
                }
                if self.placement.holders(part).is_empty() {
                    return Err(CatalogError::UnplacedPartition(part));
                }
                let arity = self.dict.rel(rel).schema.arity();
                if self.stats[&part].cols.len() != arity {
                    return Err(CatalogError::ArityMismatch {
                        part,
                        expected: arity,
                    });
                }
            }
        }
        let mut nodes = self.nodes;
        nodes.sort_unstable();
        nodes.dedup();
        Ok(Catalog {
            dict: Arc::new(self.dict),
            stats: self.stats,
            placement: self.placement,
            nodes,
        })
    }

    /// Validate and build, panicking with the error message on failure.
    ///
    /// # Panics
    /// Panics if [`try_build`](Self::try_build) fails.
    pub fn build(self) -> Catalog {
        self.try_build().expect("invalid catalog")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> RelationSchema {
        RelationSchema::new("r", vec![("a", AttrType::Int)])
    }

    #[test]
    fn build_requires_stats() {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(schema(), Partitioning::Single);
        b.place(PartId::new(r, 0), NodeId(0));
        assert!(matches!(b.try_build(), Err(CatalogError::MissingStats(_))));
    }

    #[test]
    fn build_requires_placement() {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(schema(), Partitioning::Single);
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(10, &[10]));
        assert!(matches!(
            b.try_build(),
            Err(CatalogError::UnplacedPartition(_))
        ));
    }

    #[test]
    fn build_checks_arity() {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(schema(), Partitioning::Single);
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(10, &[10, 10]));
        b.place(PartId::new(r, 0), NodeId(0));
        assert!(matches!(
            b.try_build(),
            Err(CatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn nodes_are_deduped_and_sorted() {
        let mut b = CatalogBuilder::new();
        let r = b.add_relation(schema(), Partitioning::Single);
        b.set_stats(PartId::new(r, 0), PartitionStats::synthetic(10, &[10]));
        b.place(PartId::new(r, 0), NodeId(2));
        b.place(PartId::new(r, 0), NodeId(0));
        b.add_node(NodeId(2));
        let c = b.build();
        assert_eq!(c.nodes, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "partitioning attribute out of range")]
    fn partition_attr_bounds_checked() {
        let mut b = CatalogBuilder::new();
        b.add_relation(schema(), Partitioning::Hash { attr: 5, parts: 2 });
    }
}
