//! Catalog construction errors.

use crate::ident::PartId;
use std::fmt;

/// Errors produced when validating a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A partition has no recorded statistics.
    MissingStats(PartId),
    /// A partition was never placed on any node.
    UnplacedPartition(PartId),
    /// A partition's statistics disagree with its schema arity.
    ArityMismatch {
        /// The offending partition.
        part: PartId,
        /// The schema arity that the statistics must match.
        expected: usize,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::MissingStats(p) => write!(f, "partition {p} has no statistics"),
            CatalogError::UnplacedPartition(p) => {
                write!(f, "partition {p} is placed on no node")
            }
            CatalogError::ArityMismatch { part, expected } => write!(
                f,
                "statistics for {part} have wrong arity (schema has {expected} columns)"
            ),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::RelId;

    #[test]
    fn messages_are_descriptive() {
        let p = PartId::new(RelId(1), 2);
        assert!(CatalogError::MissingStats(p)
            .to_string()
            .contains("rel1.p2"));
        assert!(CatalogError::UnplacedPartition(p)
            .to_string()
            .contains("no node"));
        assert!(CatalogError::ArityMismatch {
            part: p,
            expected: 3
        }
        .to_string()
        .contains("3 columns"));
    }
}
