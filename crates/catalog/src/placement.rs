//! The global catalog, replica placement, and per-node local views.
//!
//! Knowledge boundaries follow the paper's autonomy model:
//!
//! * **Common knowledge** (the federation's shared data dictionary): relation
//!   schemas and partitioning schemes — nodes must agree on these for SQL
//!   trading messages like `... WHERE office = 'Myconos'` to be meaningful.
//! * **Private per node**: which partitions the node holds, their statistics,
//!   its resources and cost model. This is a [`NodeHoldings`].
//! * **Global truth** ([`Catalog`]): everything, including placement. Handed
//!   only to (a) the simulator harness and (b) the *baseline* optimizers,
//!   which model classical full-knowledge distributed optimization — exactly
//!   the knowledge the paper argues real federations cannot have.

use crate::ident::{NodeId, PartId, RelId};
use crate::partition::Partitioning;
use crate::schema::RelationSchema;
use crate::stats::PartitionStats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Schema plus partitioning scheme of one relation — one entry of the shared
/// data dictionary.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationMeta {
    /// The relation schema.
    pub schema: RelationSchema,
    /// How the extent is horizontally partitioned.
    pub partitioning: Partitioning,
}

/// The federation-wide shared data dictionary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemaDict {
    /// Relations indexed by [`RelId`] value.
    pub relations: Vec<RelationMeta>,
}

impl SchemaDict {
    /// Metadata for `rel`.
    ///
    /// # Panics
    /// Panics if `rel` is unknown — ids are only minted by the builder.
    pub fn rel(&self, rel: RelId) -> &RelationMeta {
        &self.relations[rel.0 as usize]
    }

    /// Look a relation up by name.
    pub fn rel_by_name(&self, name: &str) -> Option<RelId> {
        self.relations
            .iter()
            .position(|r| r.schema.name == name)
            .map(|i| RelId(i as u32))
    }

    /// All relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// All partitions of `rel`.
    pub fn parts_of(&self, rel: RelId) -> impl Iterator<Item = PartId> + '_ {
        (0..self.rel(rel).partitioning.num_partitions()).map(move |i| PartId::new(rel, i))
    }
}

/// Which nodes hold a replica of which partition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Placement {
    replicas: BTreeMap<PartId, Vec<NodeId>>,
}

impl Placement {
    /// Record that `node` holds a replica of `part`. Idempotent.
    pub fn place(&mut self, part: PartId, node: NodeId) {
        let holders = self.replicas.entry(part).or_default();
        if !holders.contains(&node) {
            holders.push(node);
        }
    }

    /// Nodes holding `part` (empty slice if unplaced).
    pub fn holders(&self, part: PartId) -> &[NodeId] {
        self.replicas.get(&part).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(partition, holders)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (PartId, &[NodeId])> {
        self.replicas.iter().map(|(p, n)| (*p, n.as_slice()))
    }

    /// Partitions held by `node`.
    pub fn parts_on(&self, node: NodeId) -> Vec<PartId> {
        self.replicas
            .iter()
            .filter(|(_, holders)| holders.contains(&node))
            .map(|(p, _)| *p)
            .collect()
    }

    /// Total number of replicas placed.
    pub fn replica_count(&self) -> usize {
        self.replicas.values().map(Vec::len).sum()
    }
}

/// Global truth about the federation: dictionary, statistics, placement.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// The shared data dictionary.
    pub dict: Arc<SchemaDict>,
    /// Statistics for every partition (global — see module docs).
    pub stats: BTreeMap<PartId, PartitionStats>,
    /// Replica placement.
    pub placement: Placement,
    /// All node ids in the federation (nodes may hold no data yet still
    /// participate, e.g. as pure buyers).
    pub nodes: Vec<NodeId>,
}

impl Catalog {
    /// Statistics of one partition.
    ///
    /// # Panics
    /// Panics if `part` has no recorded statistics.
    pub fn stats(&self, part: PartId) -> &PartitionStats {
        self.stats
            .get(&part)
            .unwrap_or_else(|| panic!("no stats for {part}"))
    }

    /// Statistics of a whole relation (all partitions merged).
    pub fn relation_stats(&self, rel: RelId) -> PartitionStats {
        let arity = self.dict.rel(rel).schema.arity();
        self.dict
            .parts_of(rel)
            .filter_map(|p| self.stats.get(&p))
            .fold(PartitionStats::empty(arity), |acc, s| {
                if acc.rows == 0 {
                    s.clone()
                } else {
                    acc.merge(s)
                }
            })
    }

    /// The *local view* of `node`: shared dictionary plus the statistics of
    /// exactly the partitions that node holds.
    pub fn holdings_of(&self, node: NodeId) -> NodeHoldings {
        let mut held = BTreeMap::new();
        for part in self.placement.parts_on(node) {
            held.insert(part, self.stats(part).clone());
        }
        NodeHoldings {
            node,
            dict: Arc::clone(&self.dict),
            held,
        }
    }
}

/// A node's private, autonomous view of the federation.
#[derive(Debug, Clone)]
pub struct NodeHoldings {
    /// Which node this view belongs to.
    pub node: NodeId,
    /// The shared data dictionary.
    pub dict: Arc<SchemaDict>,
    /// The partitions this node holds, with their statistics.
    pub held: BTreeMap<PartId, PartitionStats>,
}

impl NodeHoldings {
    /// Does this node hold any partition of `rel`?
    pub fn has_relation(&self, rel: RelId) -> bool {
        self.held.keys().any(|p| p.rel == rel)
    }

    /// The partitions of `rel` this node holds.
    pub fn parts_of(&self, rel: RelId) -> Vec<PartId> {
        self.held.keys().filter(|p| p.rel == rel).copied().collect()
    }

    /// Does this node hold *every* partition of `rel`?
    pub fn has_full_relation(&self, rel: RelId) -> bool {
        let total = self.dict.rel(rel).partitioning.num_partitions() as usize;
        self.parts_of(rel).len() == total
    }

    /// Statistics of a held partition.
    pub fn stats(&self, part: PartId) -> Option<&PartitionStats> {
        self.held.get(&part)
    }

    /// Merged statistics of all held partitions of `rel`.
    pub fn local_relation_stats(&self, rel: RelId) -> PartitionStats {
        let arity = self.dict.rel(rel).schema.arity();
        self.parts_of(rel)
            .into_iter()
            .filter_map(|p| self.held.get(&p))
            .fold(PartitionStats::empty(arity), |acc, s| {
                if acc.rows == 0 {
                    s.clone()
                } else {
                    acc.merge(s)
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CatalogBuilder;
    use crate::partition::Partitioning;
    use crate::schema::AttrType;
    use crate::value::Value;

    fn two_node_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let cust = b.add_relation(
            RelationSchema::new(
                "customer",
                vec![("custid", AttrType::Int), ("office", AttrType::Str)],
            ),
            Partitioning::List {
                attr: 1,
                groups: vec![vec![Value::str("Athens")], vec![Value::str("Myconos")]],
            },
        );
        b.set_stats(
            PartId::new(cust, 0),
            PartitionStats::synthetic(1000, &[1000, 1]),
        );
        b.set_stats(
            PartId::new(cust, 1),
            PartitionStats::synthetic(500, &[500, 1]),
        );
        b.place(PartId::new(cust, 0), NodeId(0));
        b.place(PartId::new(cust, 1), NodeId(1));
        b.place(PartId::new(cust, 1), NodeId(0)); // replica
        b.build()
    }

    #[test]
    fn holders_and_parts_on() {
        let c = two_node_catalog();
        let p0 = PartId::new(RelId(0), 0);
        let p1 = PartId::new(RelId(0), 1);
        assert_eq!(c.placement.holders(p0), &[NodeId(0)]);
        assert_eq!(c.placement.holders(p1), &[NodeId(1), NodeId(0)]);
        assert_eq!(c.placement.parts_on(NodeId(0)), vec![p0, p1]);
        assert_eq!(c.placement.replica_count(), 3);
    }

    #[test]
    fn place_is_idempotent() {
        let mut p = Placement::default();
        let part = PartId::new(RelId(0), 0);
        p.place(part, NodeId(1));
        p.place(part, NodeId(1));
        assert_eq!(p.holders(part), &[NodeId(1)]);
    }

    #[test]
    fn holdings_respect_placement() {
        let c = two_node_catalog();
        let h0 = c.holdings_of(NodeId(0));
        let h1 = c.holdings_of(NodeId(1));
        assert!(h0.has_full_relation(RelId(0)));
        assert!(!h1.has_full_relation(RelId(0)));
        assert!(h1.has_relation(RelId(0)));
        assert_eq!(h1.parts_of(RelId(0)), vec![PartId::new(RelId(0), 1)]);
    }

    #[test]
    fn relation_stats_merges_partitions() {
        let c = two_node_catalog();
        let s = c.relation_stats(RelId(0));
        assert_eq!(s.rows, 1500);
    }

    #[test]
    fn local_relation_stats_only_counts_held() {
        let c = two_node_catalog();
        let h1 = c.holdings_of(NodeId(1));
        assert_eq!(h1.local_relation_stats(RelId(0)).rows, 500);
    }

    #[test]
    fn dict_lookup_by_name() {
        let c = two_node_catalog();
        assert_eq!(c.dict.rel_by_name("customer"), Some(RelId(0)));
        assert_eq!(c.dict.rel_by_name("nope"), None);
        assert_eq!(c.dict.parts_of(RelId(0)).count(), 2);
    }
}
