//! Per-partition statistics and the cardinality-estimation primitives built
//! on them.
//!
//! Every node's local optimizer estimates offer properties "taking into
//! account the available network resources and the current workload of
//! sellers" (§3.1); the data-dependent part of that estimate comes from these
//! statistics. Statistics are *private per node*: a node has stats only for
//! partitions it holds.

use crate::value::Value;

/// An equi-depth histogram over a numeric column: `bounds` has `buckets+1`
/// entries; bucket `i` covers `[bounds[i], bounds[i+1])` (the last bucket is
/// closed) and holds `counts[i]` rows. Boundaries sit on value quantiles, so
/// skewed data gets fine buckets where it is dense.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket boundaries, non-decreasing, `counts.len() + 1` entries.
    pub bounds: Vec<f64>,
    /// Rows per bucket.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build an equi-depth histogram from raw numeric values.
    /// Returns `None` for empty input.
    pub fn equi_depth(mut values: Vec<f64>, buckets: usize) -> Option<Histogram> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut counts = Vec::with_capacity(buckets);
        let mut start = 0usize;
        bounds.push(values[0]);
        for b in 1..=buckets {
            let end = (n * b) / buckets;
            if end <= start {
                continue;
            }
            counts.push((end - start) as u64);
            bounds.push(if b == buckets {
                values[n - 1]
            } else {
                values[end]
            });
            start = end;
        }
        Some(Histogram { bounds, counts })
    }

    /// Total rows covered.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of rows with value in `[lo, hi)` (open bounds allowed),
    /// interpolating linearly within partially-covered buckets.
    pub fn range_fraction(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let lo = lo.unwrap_or(f64::NEG_INFINITY);
        let hi = hi.unwrap_or(f64::INFINITY);
        if hi <= lo {
            return 0.0;
        }
        let mut hit = 0.0f64;
        for (i, &count) in self.counts.iter().enumerate() {
            let (b_lo, b_hi) = (self.bounds[i], self.bounds[i + 1]);
            let width = (b_hi - b_lo).max(f64::MIN_POSITIVE);
            let overlap_lo = lo.max(b_lo);
            let overlap_hi = hi.min(b_hi);
            if overlap_hi > overlap_lo {
                hit += count as f64 * ((overlap_hi - overlap_lo) / width).min(1.0);
            } else if (b_lo - b_hi).abs() < f64::MIN_POSITIVE && lo <= b_lo && b_lo < hi {
                // Degenerate single-value bucket inside the range.
                hit += count as f64;
            }
        }
        // The last bucket is closed on the right: count its upper boundary.
        if let (Some(&last_hi), Some(&last_count)) = (self.bounds.last(), self.counts.last()) {
            let b_lo = self.bounds[self.bounds.len() - 2];
            if (last_hi - b_lo).abs() < f64::MIN_POSITIVE && lo <= last_hi && last_hi < hi {
                // Already handled by the degenerate case above.
                let _ = last_count;
            }
        }
        (hit / total as f64).clamp(0.0, 1.0)
    }
}

/// Statistics for one column of one partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Minimum value observed, if the partition is nonempty.
    pub min: Option<Value>,
    /// Maximum value observed, if the partition is nonempty.
    pub max: Option<Value>,
    /// Average width of this column in bytes.
    pub avg_width: u64,
    /// Optional equi-depth histogram (numeric columns computed from real
    /// rows); improves range selectivity on skewed data.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Stats for an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            ndv: 0,
            min: None,
            max: None,
            avg_width: 8,
            histogram: None,
        }
    }

    /// Selectivity of `col = v` under the uniform-distribution assumption.
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if self.ndv == 0 {
            return 0.0;
        }
        // Out-of-range constants select nothing.
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            if v < min || v > max {
                return 0.0;
            }
        }
        1.0 / self.ndv as f64
    }

    /// Selectivity of `lo <= col < hi` (open bounds allowed) by linear
    /// interpolation over `[min, max]` for numeric columns; `1/3` fallback
    /// for strings, mirroring System R's magic constants.
    pub fn range_selectivity(&self, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return 0.0;
        };
        // Prefer the histogram when we have one and the bounds are numeric.
        if let Some(h) = &self.histogram {
            let lo_ok = lo.map(|v| v.as_f64());
            let hi_ok = hi.map(|v| v.as_f64());
            if !matches!(lo_ok, Some(None)) && !matches!(hi_ok, Some(None)) {
                return h.range_fraction(lo_ok.flatten(), hi_ok.flatten());
            }
        }
        let (Some(minf), Some(maxf)) = (min.as_f64(), max.as_f64()) else {
            // Non-numeric column: System R style fallback.
            return match (lo, hi) {
                (None, None) => 1.0,
                (Some(_), Some(_)) => 1.0 / 4.0,
                _ => 1.0 / 3.0,
            };
        };
        let width = (maxf - minf).max(f64::MIN_POSITIVE);
        // Treat the column domain as [min, max + one value-slot) and clip the
        // query interval against it; an interval entirely outside the domain
        // then selects nothing.
        let domain_hi = maxf + width / self.ndv.max(1) as f64;
        let lof = lo.and_then(|v| v.as_f64()).unwrap_or(minf).max(minf);
        let hif = hi
            .and_then(|v| v.as_f64())
            .unwrap_or(domain_hi)
            .min(domain_hi);
        ((hif - lof) / width).clamp(0.0, 1.0)
    }

    /// Merge statistics of the same column across two partitions (used when
    /// estimating unions of partitions).
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        let min = match (&self.min, &other.min) {
            (Some(a), Some(b)) => Some(a.min(b).clone()),
            (a, b) => a.as_ref().or(b.as_ref()).cloned(),
        };
        let max = match (&self.max, &other.max) {
            (Some(a), Some(b)) => Some(a.max(b).clone()),
            (a, b) => a.as_ref().or(b.as_ref()).cloned(),
        };
        ColumnStats {
            // Disjoint-partition assumption: distinct sets are near-disjoint
            // for the partitioning attribute and overlapping for others; the
            // max() lower bound is the standard conservative choice.
            ndv: self.ndv.max(other.ndv).max((self.ndv + other.ndv) / 2),
            min,
            max,
            avg_width: if self.ndv == 0 {
                other.avg_width
            } else if other.ndv == 0 {
                self.avg_width
            } else {
                (self.avg_width + other.avg_width) / 2
            },
            // Merging histograms of disjoint partitions exactly would need
            // re-bucketing; fall back to interpolation (conservative).
            histogram: None,
        }
    }

    /// Compute exact stats from a column of values.
    pub fn from_values<'a>(values: impl Iterator<Item = &'a Value>) -> ColumnStats {
        let mut distinct = std::collections::BTreeSet::new();
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut total_width = 0u64;
        let mut n = 0u64;
        let mut numeric: Vec<f64> = Vec::new();
        for v in values {
            if let Some(f) = v.as_f64() {
                numeric.push(f);
            }
            distinct.insert(v.clone());
            if min.as_ref().is_none_or(|m| v < m) {
                min = Some(v.clone());
            }
            if max.as_ref().is_none_or(|m| v > m) {
                max = Some(v.clone());
            }
            total_width += v.byte_width();
            n += 1;
        }
        ColumnStats {
            ndv: distinct.len() as u64,
            min,
            max,
            avg_width: total_width
                .checked_div(n)
                .unwrap_or(8)
                .max(if n == 0 { 8 } else { 1 }),
            histogram: Histogram::equi_depth(numeric, 16),
        }
    }
}

/// Statistics for one partition of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Number of rows in the partition.
    pub rows: u64,
    /// Per-column statistics, aligned with the relation schema.
    pub cols: Vec<ColumnStats>,
}

impl PartitionStats {
    /// Stats for an empty partition of arity `arity`.
    pub fn empty(arity: usize) -> Self {
        PartitionStats {
            rows: 0,
            cols: vec![ColumnStats::empty(); arity],
        }
    }

    /// Uniformly synthesized stats: `rows` rows, each column with `ndv`
    /// distinct integer values in `[0, ndv)`. Useful for tests and synthetic
    /// workloads where exact data is not materialized.
    pub fn synthetic(rows: u64, ndvs: &[u64]) -> Self {
        PartitionStats {
            rows,
            cols: ndvs
                .iter()
                .map(|&ndv| ColumnStats {
                    ndv: ndv.min(rows),
                    min: Some(Value::Int(0)),
                    max: Some(Value::Int(ndv.max(1) as i64 - 1)),
                    avg_width: 8,
                    histogram: None,
                })
                .collect(),
        }
    }

    /// Compute exact stats from materialized rows.
    pub fn from_rows(arity: usize, rows: &[Vec<Value>]) -> Self {
        PartitionStats {
            rows: rows.len() as u64,
            cols: (0..arity)
                .map(|c| ColumnStats::from_values(rows.iter().map(|r| &r[c])))
                .collect(),
        }
    }

    /// Average row width in bytes.
    pub fn row_width(&self) -> u64 {
        self.cols.iter().map(|c| c.avg_width).sum::<u64>().max(1)
    }

    /// Total partition size in bytes.
    pub fn bytes(&self) -> u64 {
        self.rows * self.row_width()
    }

    /// Merge with stats of a disjoint partition of the same relation.
    pub fn merge(&self, other: &PartitionStats) -> PartitionStats {
        assert_eq!(self.cols.len(), other.cols.len(), "arity mismatch in merge");
        PartitionStats {
            rows: self.rows + other.rows,
            cols: self
                .cols
                .iter()
                .zip(&other.cols)
                .map(|(a, b)| a.merge(b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_uniform() {
        let c = ColumnStats {
            ndv: 100,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(99)),
            avg_width: 8,
            histogram: None,
        };
        assert!((c.eq_selectivity(&Value::Int(5)) - 0.01).abs() < 1e-12);
        assert_eq!(c.eq_selectivity(&Value::Int(500)), 0.0);
    }

    #[test]
    fn eq_selectivity_empty() {
        assert_eq!(ColumnStats::empty().eq_selectivity(&Value::Int(1)), 0.0);
    }

    #[test]
    fn range_selectivity_interpolates() {
        let c = ColumnStats {
            ndv: 100,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(100)),
            avg_width: 8,
            histogram: None,
        };
        let half = c.range_selectivity(Some(&Value::Int(0)), Some(&Value::Int(50)));
        assert!((half - 0.5).abs() < 1e-9, "{half}");
        let all = c.range_selectivity(None, None);
        assert!(all > 0.99);
        let none = c.range_selectivity(Some(&Value::Int(200)), Some(&Value::Int(300)));
        assert_eq!(none, 0.0);
    }

    #[test]
    fn range_selectivity_string_fallback() {
        let c = ColumnStats {
            ndv: 10,
            min: Some(Value::str("a")),
            max: Some(Value::str("z")),
            avg_width: 1,
            histogram: None,
        };
        assert!((c.range_selectivity(Some(&Value::str("b")), None) - 1.0 / 3.0).abs() < 1e-12);
        assert!(
            (c.range_selectivity(Some(&Value::str("b")), Some(&Value::str("c"))) - 0.25).abs()
                < 1e-12
        );
    }

    #[test]
    fn from_values_exact() {
        let vals = [Value::Int(3), Value::Int(1), Value::Int(3)];
        let c = ColumnStats::from_values(vals.iter());
        assert_eq!(c.ndv, 2);
        assert_eq!(c.min, Some(Value::Int(1)));
        assert_eq!(c.max, Some(Value::Int(3)));
        assert_eq!(c.avg_width, 8);
    }

    #[test]
    fn merge_widens_bounds_and_adds_rows() {
        let a = PartitionStats::synthetic(100, &[50, 10]);
        let mut b = PartitionStats::synthetic(200, &[80, 10]);
        b.cols[0].min = Some(Value::Int(-5));
        let m = a.merge(&b);
        assert_eq!(m.rows, 300);
        assert_eq!(m.cols[0].min, Some(Value::Int(-5)));
        assert!(m.cols[0].ndv >= 80);
    }

    #[test]
    fn from_rows_matches_columns() {
        let rows = vec![
            vec![Value::Int(1), Value::str("ab")],
            vec![Value::Int(2), Value::str("cd")],
        ];
        let s = PartitionStats::from_rows(2, &rows);
        assert_eq!(s.rows, 2);
        assert_eq!(s.cols[0].ndv, 2);
        assert_eq!(s.cols[1].avg_width, 2);
        assert_eq!(s.row_width(), 10);
        assert_eq!(s.bytes(), 20);
    }

    #[test]
    fn synthetic_caps_ndv_at_rows() {
        let s = PartitionStats::synthetic(5, &[100]);
        assert_eq!(s.cols[0].ndv, 5);
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn equi_depth_buckets_balance_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::equi_depth(values, 4).unwrap();
        assert_eq!(h.counts, vec![25, 25, 25, 25]);
        assert_eq!(h.total(), 100);
        assert_eq!(h.bounds.len(), 5);
    }

    #[test]
    fn empty_and_zero_bucket_inputs() {
        assert!(Histogram::equi_depth(vec![], 4).is_none());
        assert!(Histogram::equi_depth(vec![1.0], 0).is_none());
        let h = Histogram::equi_depth(vec![1.0], 8).unwrap();
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn range_fraction_on_uniform_data() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::equi_depth(values, 16).unwrap();
        let half = h.range_fraction(Some(0.0), Some(500.0));
        assert!((half - 0.5).abs() < 0.05, "{half}");
        assert_eq!(h.range_fraction(Some(2000.0), Some(3000.0)), 0.0);
        assert_eq!(h.range_fraction(None, None), 1.0);
        assert_eq!(h.range_fraction(Some(5.0), Some(5.0)), 0.0);
    }

    #[test]
    fn histogram_beats_interpolation_on_skew() {
        // 90% of the mass at small values, a long thin tail to 10_000.
        let mut values: Vec<Value> = (0..900).map(|i| Value::Int(i % 100)).collect();
        values.extend((0..100).map(|i| Value::Int(100 + i * 99)));
        let stats = ColumnStats::from_values(values.iter());
        assert!(stats.histogram.is_some());
        // True selectivity of `col < 100` is 0.9.
        let with_hist = stats.range_selectivity(None, Some(&Value::Int(100)));
        assert!(
            (with_hist - 0.9).abs() < 0.1,
            "histogram estimate {with_hist}"
        );
        // Linear interpolation would claim ~100/10000 = 1%.
        let mut no_hist = stats.clone();
        no_hist.histogram = None;
        let plain = no_hist.range_selectivity(None, Some(&Value::Int(100)));
        assert!(plain < 0.05, "interpolation estimate {plain}");
    }

    #[test]
    fn from_rows_attaches_histograms_to_numeric_columns_only() {
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Int(i), Value::str(format!("s{i}"))])
            .collect();
        let s = PartitionStats::from_rows(2, &rows);
        assert!(s.cols[0].histogram.is_some());
        assert!(s.cols[1].histogram.is_none());
    }

    #[test]
    fn merge_drops_histograms_conservatively() {
        let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i)]).collect();
        let a = PartitionStats::from_rows(1, &rows);
        let m = a.merge(&a);
        assert!(m.cols[0].histogram.is_none());
        assert_eq!(m.rows, 100);
    }
}
